#include "tsp/construct.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <optional>
#include <queue>

#include "geom/aabb.h"
#include "geom/removal_grid.h"
#include "geom/spatial_grid.h"
#include "graph/mst.h"
#include "util/assert.h"

namespace mdg::tsp {
namespace {

// Size cutoffs for the grid-accelerated construction kernels (see
// ALGORITHMS.md §cutoffs): below these the full-scan references win on
// setup cost; above them the accelerated kernels produce byte-identical
// tours asymptotically faster.
constexpr std::size_t kGridNearestBelow = 128;
constexpr std::size_t kLazyGreedyEdgeBelow = 128;

/// Cell size giving ~1 point per cell, or 0 when the bounding box is
/// degenerate (collinear/coincident input — grids buy nothing there).
double uniform_cell_size(std::span<const geom::Point> points) {
  const geom::Aabb bounds = geom::Aabb::bounding(points);
  const double area = bounds.width() * bounds.height();
  if (area <= 0.0) {
    return 0.0;
  }
  return std::sqrt(area / static_cast<double>(points.size()));
}

/// Shared greedy-edge acceptance state: union-find over path fragments,
/// degree bounds, and the accepted adjacency. Both the reference and the
/// lazy kernel feed edges through try_accept in the same global order,
/// which is what makes their outputs byte-identical.
class GreedyEdgeState {
 public:
  explicit GreedyEdgeState(std::size_t n)
      : parent_(n), degree_(n, 0), adj_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  [[nodiscard]] std::size_t accepted() const { return accepted_; }
  [[nodiscard]] std::size_t degree(std::size_t v) const { return degree_[v]; }

  /// Accepts (u, v) iff both degrees < 2 and no premature cycle forms.
  void try_accept(std::size_t u, std::size_t v) {
    if (degree_[u] >= 2 || degree_[v] >= 2) {
      return;
    }
    const std::size_t ru = find(u);
    const std::size_t rv = find(v);
    if (ru == rv) {
      return;  // would close a sub-cycle early
    }
    parent_[ru] = rv;
    ++degree_[u];
    ++degree_[v];
    adj_[u].push_back(v);
    adj_[v].push_back(u);
    ++accepted_;
  }

  /// Walks the completed Hamilton path from its lowest-index endpoint.
  [[nodiscard]] Tour walk_path() const {
    const std::size_t n = parent_.size();
    MDG_ASSERT(accepted_ == n - 1,
               "greedy edge failed to build a Hamilton path");
    std::size_t start = 0;
    for (std::size_t v = 0; v < n; ++v) {
      if (degree_[v] == 1) {
        start = v;
        break;
      }
    }
    std::vector<std::size_t> order;
    order.reserve(n);
    std::vector<bool> visited(n, false);
    std::size_t current = start;
    for (;;) {
      visited[current] = true;
      order.push_back(current);
      std::size_t next = n;
      for (std::size_t nb : adj_[current]) {
        if (!visited[nb]) {
          next = nb;
          break;
        }
      }
      if (next == n) {
        break;
      }
      current = next;
    }
    MDG_ASSERT(order.size() == n, "greedy edge path does not span all points");
    Tour tour(std::move(order));
    tour.rotate_to_front(0);
    return tour;
  }

 private:
  [[nodiscard]] std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  std::vector<std::size_t> parent_;
  std::vector<std::size_t> degree_;
  std::vector<std::vector<std::size_t>> adj_;
  std::size_t accepted_ = 0;
};

/// Lazily enumerates a vertex's neighbours in exact (distance, index)
/// order via expanding-ring grid queries. Confirmed entries — those
/// within the scanned radius — are stable across refills, so the stream
/// never re-orders what it already yielded.
class DistanceStream {
 public:
  /// Next confirmed (d2, neighbour), or nullopt when the whole indexed
  /// set has been yielded.
  std::optional<std::pair<double, std::size_t>> next(
      std::size_t self, std::span<const geom::Point> points,
      const geom::SpatialGrid& grid, double cell, double reach) {
    for (;;) {
      if (cursor_ < hits_.size() &&
          (hits_[cursor_].first <= radius_ * radius_ || radius_ >= reach)) {
        return hits_[cursor_++];
      }
      if (radius_ >= reach) {
        return std::nullopt;  // exhausted
      }
      radius_ = radius_ == 0.0 ? cell : radius_ * 2.0;
      hits_.clear();
      grid.for_each_in_radius(points[self], radius_, [&](std::size_t v) {
        if (v != self) {
          hits_.push_back({geom::distance_sq(points[self], points[v]), v});
        }
      });
      // (d2, index) pair order: exact ties break toward the lower index,
      // keeping the confirmed prefix identical after every refill.
      std::sort(hits_.begin(), hits_.end());
    }
  }

 private:
  std::vector<std::pair<double, std::size_t>> hits_;
  std::size_t cursor_ = 0;
  double radius_ = 0.0;
};

Tour greedy_edge_lazy(std::span<const geom::Point> points, double cell) {
  const std::size_t n = points.size();
  const geom::SpatialGrid grid(points, cell);
  const geom::Aabb bounds = geom::Aabb::bounding(points);
  const double reach = std::hypot(bounds.width(), bounds.height());

  GreedyEdgeState state(n);
  std::vector<DistanceStream> streams(n);

  // k-way merge of the per-vertex streams: the heap holds at most one
  // pending edge per live stream; popping the minimum and refilling from
  // the owner reproduces the full (d2, u, v)-sorted edge order.
  struct HeapEdge {
    double d2;
    std::size_t a, b;  ///< normalized endpoints, a < b
    std::size_t owner;
  };
  struct HeapEdgeWorse {
    bool operator()(const HeapEdge& x, const HeapEdge& y) const {
      if (x.d2 != y.d2) {
        return x.d2 > y.d2;
      }
      if (x.a != y.a) {
        return x.a > y.a;
      }
      return x.b > y.b;
    }
  };
  std::priority_queue<HeapEdge, std::vector<HeapEdge>, HeapEdgeWorse> heap;

  const auto advance = [&](std::size_t u) {
    if (state.degree(u) >= 2) {
      return;  // every remaining edge of u would be rejected anyway
    }
    while (auto hit = streams[u].next(u, points, grid, cell, reach)) {
      const std::size_t v = hit->second;
      if (state.degree(v) >= 2) {
        continue;  // dead on arrival, skip without disturbing the order
      }
      heap.push({hit->first, std::min(u, v), std::max(u, v), u});
      return;
    }
  };
  for (std::size_t u = 0; u < n; ++u) {
    advance(u);
  }

  // Each surviving edge arrives once or twice (once per live endpoint
  // stream); the two copies carry identical keys, so they pop
  // back-to-back and the duplicate is dropped by comparing with the
  // previously processed pair.
  std::size_t prev_a = n;
  std::size_t prev_b = n;
  while (state.accepted() < n - 1) {
    MDG_ASSERT(!heap.empty(), "greedy edge stalled before spanning");
    const HeapEdge top = heap.top();
    heap.pop();
    advance(top.owner);
    if (top.a == prev_a && top.b == prev_b) {
      continue;
    }
    prev_a = top.a;
    prev_b = top.b;
    state.try_accept(top.a, top.b);
  }
  return state.walk_path();
}

}  // namespace

Tour nearest_neighbor_reference(std::span<const geom::Point> points,
                                std::size_t start) {
  const std::size_t n = points.size();
  if (n == 0) {
    return Tour{};
  }
  MDG_REQUIRE(start < n, "start index out of range");
  std::vector<bool> visited(n, false);
  std::vector<std::size_t> order;
  order.reserve(n);
  std::size_t current = start;
  visited[current] = true;
  order.push_back(current);
  for (std::size_t step = 1; step < n; ++step) {
    std::size_t best = n;
    double best_d2 = std::numeric_limits<double>::infinity();
    for (std::size_t v = 0; v < n; ++v) {
      if (visited[v]) {
        continue;
      }
      const double d2 = geom::distance_sq(points[current], points[v]);
      if (d2 < best_d2) {
        best_d2 = d2;
        best = v;
      }
    }
    MDG_ASSERT(best != n, "nearest-neighbour stalled");
    visited[best] = true;
    order.push_back(best);
    current = best;
  }
  Tour tour(std::move(order));
  tour.rotate_to_front(start);
  return tour;
}

Tour nearest_neighbor(std::span<const geom::Point> points, std::size_t start) {
  const std::size_t n = points.size();
  const double cell = n >= kGridNearestBelow ? uniform_cell_size(points) : 0.0;
  if (cell <= 0.0) {
    return nearest_neighbor_reference(points, start);
  }
  MDG_REQUIRE(start < n, "start index out of range");
  geom::RemovalGrid grid(points, cell);
  std::vector<std::size_t> order;
  order.reserve(n);
  std::size_t current = start;
  grid.remove(current);
  order.push_back(current);
  for (std::size_t step = 1; step < n; ++step) {
    // RemovalGrid::nearest breaks distance ties toward the lower index —
    // exactly the choice the reference's ascending strict-< scan makes.
    const std::size_t best = grid.nearest(points[current]);
    MDG_ASSERT(best != geom::RemovalGrid::npos, "nearest-neighbour stalled");
    grid.remove(best);
    order.push_back(best);
    current = best;
  }
  Tour tour(std::move(order));
  tour.rotate_to_front(start);
  return tour;
}

Tour greedy_edge_reference(std::span<const geom::Point> points) {
  const std::size_t n = points.size();
  if (n == 0) {
    return Tour{};
  }
  if (n == 1) {
    return Tour::identity(1);
  }
  struct Candidate {
    double d2;
    std::size_t u;
    std::size_t v;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(n * (n - 1) / 2);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      candidates.push_back({geom::distance_sq(points[u], points[v]), u, v});
    }
  }
  // Full (d2, u, v) order so exact distance ties are deterministic — the
  // same order the lazy kernel's merge reproduces.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.d2 != b.d2) {
                return a.d2 < b.d2;
              }
              if (a.u != b.u) {
                return a.u < b.u;
              }
              return a.v < b.v;
            });

  GreedyEdgeState state(n);
  for (const Candidate& c : candidates) {
    if (state.accepted() == n - 1) {
      break;
    }
    state.try_accept(c.u, c.v);
  }
  return state.walk_path();
}

Tour greedy_edge(std::span<const geom::Point> points) {
  const std::size_t n = points.size();
  const double cell =
      n >= kLazyGreedyEdgeBelow ? uniform_cell_size(points) : 0.0;
  if (cell <= 0.0) {
    return greedy_edge_reference(points);
  }
  return greedy_edge_lazy(points, cell);
}

Tour cheapest_insertion(std::span<const geom::Point> points) {
  const std::size_t n = points.size();
  if (n == 0) {
    return Tour{};
  }
  if (n <= 2) {
    return Tour::identity(n);
  }
  // Seed with the closest pair.
  std::size_t seed_a = 0;
  std::size_t seed_b = 1;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      const double d2 = geom::distance_sq(points[u], points[v]);
      if (d2 < best_d2) {
        best_d2 = d2;
        seed_a = u;
        seed_b = v;
      }
    }
  }
  std::vector<std::size_t> order{seed_a, seed_b};
  std::vector<bool> on_tour(n, false);
  on_tour[seed_a] = true;
  on_tour[seed_b] = true;

  while (order.size() < n) {
    double best_cost = std::numeric_limits<double>::infinity();
    std::size_t best_vertex = n;
    std::size_t best_slot = 0;  // insert before order[best_slot+1]
    for (std::size_t v = 0; v < n; ++v) {
      if (on_tour[v]) {
        continue;
      }
      for (std::size_t pos = 0; pos < order.size(); ++pos) {
        const std::size_t a = order[pos];
        const std::size_t b = order[(pos + 1) % order.size()];
        const double cost = geom::distance(points[a], points[v]) +
                            geom::distance(points[v], points[b]) -
                            geom::distance(points[a], points[b]);
        if (cost < best_cost) {
          best_cost = cost;
          best_vertex = v;
          best_slot = pos;
        }
      }
    }
    MDG_ASSERT(best_vertex != n, "cheapest insertion stalled");
    order.insert(order.begin() + static_cast<std::ptrdiff_t>(best_slot) + 1,
                 best_vertex);
    on_tour[best_vertex] = true;
  }
  Tour tour(std::move(order));
  tour.rotate_to_front(0);
  return tour;
}

Tour mst_preorder(std::span<const geom::Point> points) {
  const std::size_t n = points.size();
  if (n == 0) {
    return Tour{};
  }
  const graph::MstResult mst = graph::euclidean_mst(points);
  const auto adj = graph::tree_adjacency(n, mst.edges);
  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<bool> visited(n, false);
  // Iterative DFS preorder from the depot.
  std::vector<std::size_t> stack{0};
  while (!stack.empty()) {
    const std::size_t v = stack.back();
    stack.pop_back();
    if (visited[v]) {
      continue;
    }
    visited[v] = true;
    order.push_back(v);
    // Push children in reverse so closer-indexed children pop first
    // (deterministic output).
    for (auto it = adj[v].rbegin(); it != adj[v].rend(); ++it) {
      if (!visited[*it]) {
        stack.push_back(*it);
      }
    }
  }
  MDG_ASSERT(order.size() == n, "MST preorder missed vertices");
  return Tour(std::move(order));
}

Tour christofides_greedy(std::span<const geom::Point> points) {
  const std::size_t n = points.size();
  if (n <= 3) {
    return Tour::identity(n);
  }
  const graph::MstResult mst = graph::euclidean_mst(points);

  // Degree parity over the MST.
  std::vector<std::size_t> degree(n, 0);
  for (const graph::Edge& e : mst.edges) {
    ++degree[e.u];
    ++degree[e.v];
  }
  std::vector<std::size_t> odd;
  for (std::size_t v = 0; v < n; ++v) {
    if (degree[v] % 2 == 1) {
      odd.push_back(v);
    }
  }
  MDG_ASSERT(odd.size() % 2 == 0, "odd-degree vertices come in pairs");

  // Greedy perfect matching on the odd set: repeatedly match the
  // globally closest unmatched pair.
  std::vector<graph::Edge> matching;
  {
    struct Pair {
      double d2;
      std::size_t u;
      std::size_t v;
    };
    std::vector<Pair> pairs;
    pairs.reserve(odd.size() * (odd.size() - 1) / 2);
    for (std::size_t i = 0; i < odd.size(); ++i) {
      for (std::size_t j = i + 1; j < odd.size(); ++j) {
        pairs.push_back({geom::distance_sq(points[odd[i]], points[odd[j]]),
                         odd[i], odd[j]});
      }
    }
    std::sort(pairs.begin(), pairs.end(),
              [](const Pair& a, const Pair& b) { return a.d2 < b.d2; });
    std::vector<bool> matched(n, false);
    for (const Pair& p : pairs) {
      if (!matched[p.u] && !matched[p.v]) {
        matched[p.u] = true;
        matched[p.v] = true;
        matching.push_back({p.u, p.v, std::sqrt(p.d2)});
      }
    }
  }

  // Multigraph MST + matching has all-even degrees: walk an Eulerian
  // circuit (Hierholzer) and shortcut repeated vertices.
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> adj(n);
  std::size_t edge_id = 0;
  const auto add_edge = [&](std::size_t u, std::size_t v) {
    adj[u].push_back({v, edge_id});
    adj[v].push_back({u, edge_id});
    ++edge_id;
  };
  for (const graph::Edge& e : mst.edges) {
    add_edge(e.u, e.v);
  }
  for (const graph::Edge& e : matching) {
    add_edge(e.u, e.v);
  }
  std::vector<bool> used(edge_id, false);
  std::vector<std::size_t> cursor(n, 0);
  std::vector<std::size_t> stack{0};
  std::vector<std::size_t> circuit;
  while (!stack.empty()) {
    const std::size_t v = stack.back();
    bool advanced = false;
    while (cursor[v] < adj[v].size()) {
      const auto [to, id] = adj[v][cursor[v]++];
      if (!used[id]) {
        used[id] = true;
        stack.push_back(to);
        advanced = true;
        break;
      }
    }
    if (!advanced) {
      circuit.push_back(v);
      stack.pop_back();
    }
  }

  // Shortcut: keep the first occurrence of each vertex.
  std::vector<bool> seen(n, false);
  std::vector<std::size_t> order;
  order.reserve(n);
  for (std::size_t v : circuit) {
    if (!seen[v]) {
      seen[v] = true;
      order.push_back(v);
    }
  }
  MDG_ASSERT(order.size() == n, "Euler shortcut missed vertices");
  Tour tour(std::move(order));
  tour.rotate_to_front(0);
  return tour;
}

Tour random_tour(std::size_t n, Rng& rng) {
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  Tour tour(std::move(order));
  if (n > 0) {
    tour.rotate_to_front(0);
  }
  return tour;
}

}  // namespace mdg::tsp

#include "tsp/partition.h"

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/assert.h"
#include "util/thread_pool.h"

namespace mdg::tsp {
namespace {

constexpr double kGainEps = 1e-12;

double dist(std::span<const geom::Point> pts, std::size_t a, std::size_t b) {
  return geom::distance(pts[a], pts[b]);
}

/// Open-path local search over one shard's slice of the tour.
///
/// The slice's first and last cities are frozen (they carry the seam
/// edges to the neighbouring shards), every move keeps its writes
/// inside local positions [1, m-2], and candidate cities outside this
/// shard are skipped — the three properties that make concurrent shard
/// runs independent. Bookkeeping (position, queued flag) lives in
/// global per-city arrays shared across shards: each city belongs to
/// exactly one shard per round, so the writes are slot-exclusive.
class ShardEngine {
 public:
  ShardEngine(std::span<std::size_t> order, std::span<const geom::Point> pts,
              const NeighborLists& nbrs, const ImproveOptions& opt,
              std::span<std::size_t> local_pos,
              std::span<std::uint8_t> in_queue,
              std::span<const std::uint32_t> shard_of, std::uint32_t me)
      : pts_(pts),
        nbrs_(nbrs),
        opt_(opt),
        m_(order.size()),
        ord_(order),
        lp_(local_pos),
        inq_(in_queue),
        shard_of_(shard_of),
        me_(me) {
    queue_.resize(m_);
    for (std::size_t p = 0; p < m_; ++p) {
      lp_[ord_[p]] = p;
      inq_[ord_[p]] = 0;
    }
    // Seed the movable interior in slice order (the FIFO doubles as the
    // don't-look bits, exactly as in the sequential engine).
    for (std::size_t p = 1; p + 1 < m_; ++p) {
      inq_[ord_[p]] = 1;
      queue_[count_++] = ord_[p];
    }
    tail_ = count_;  // < m_ always: only the interior is seeded
    seg_scratch_.reserve(opt_.or_opt_max_segment);
  }

  /// Returns stats with `passes` holding the raw processed-city count
  /// (the caller aggregates across shards and rounds).
  ImproveStats run() {
    ImproveStats stats;
    const std::size_t cap = opt_.max_passes * m_;
    std::size_t processed = 0;
    while (count_ > 0 && processed < cap) {
      const std::size_t a = pop();
      ++processed;
      bool moved = try_two_opt(a);
      if (moved) {
        ++stats.two_opt_moves;
      } else if (opt_.use_or_opt) {
        moved = try_or_opt(a);
        if (moved) {
          ++stats.or_opt_moves;
        }
      }
      if (moved) {
        ++stats.moves;
        push(a);
      }
    }
    stats.passes = processed;
    return stats;
  }

 private:
  void push(std::size_t city) {
    // Frozen slice endpoints never enter the queue.
    if (lp_[city] == 0 || lp_[city] + 1 == m_ || inq_[city]) {
      return;
    }
    inq_[city] = 1;
    queue_[tail_] = city;
    tail_ = tail_ + 1 == m_ ? 0 : tail_ + 1;
    ++count_;
  }

  std::size_t pop() {
    const std::size_t city = queue_[head_];
    head_ = head_ + 1 == m_ ? 0 : head_ + 1;
    --count_;
    inq_[city] = 0;
    return city;
  }

  void reverse_range(std::size_t i, std::size_t j) {
    while (i < j) {
      std::swap(ord_[i], ord_[j]);
      lp_[ord_[i]] = i;
      lp_[ord_[j]] = j;
      ++i;
      --j;
    }
  }

  bool try_two_opt(std::size_t a) {
    const std::size_t pa = lp_[a];
    const auto cand = nbrs_.of(a);
    const auto cand_d = nbrs_.dist_of(a);
    for (int dir = 0; dir < 2; ++dir) {
      // dir 0 pairs successor edges (pa, pa+1) and (qc, qc+1); dir 1
      // pairs predecessor edges. The popped city is interior, so both
      // of its edges exist.
      const std::size_t pb = dir == 0 ? pa + 1 : pa - 1;
      const std::size_t b = ord_[pb];
      const double d_ab = dist(pts_, a, b);
      for (std::size_t t = 0; t < cand.size(); ++t) {
        const std::size_t c = cand[t];
        const double d_ac = cand_d[t];
        if (d_ac >= d_ab) {
          break;  // sorted list: no closer candidate remains
        }
        if (shard_of_[c] != me_) {
          continue;  // cross-shard move: out of bounds this round
        }
        const std::size_t qc = lp_[c];
        if (dir == 0 ? qc + 1 >= m_ : qc == 0) {
          continue;  // the matching edge would leave the slice
        }
        const std::size_t qd = dir == 0 ? qc + 1 : qc - 1;
        const std::size_t d_city = ord_[qd];
        if (d_city == a) {
          continue;  // (c, d) is the edge (c, a) itself
        }
        const double gain =
            d_ab + dist(pts_, c, d_city) - d_ac - dist(pts_, b, d_city);
        if (gain > kGainEps) {
          // Replace (a,b) + (c,d) with (a,c) + (b,d) by reversing the
          // stretch between the two cut edges; the frozen endpoints
          // (positions 0 and m-1) are never inside it.
          if (dir == 0) {
            reverse_range(std::min(pa, qc) + 1, std::max(pa, qc));
          } else {
            reverse_range(std::min(pa, qc), std::max(pa, qc) - 1);
          }
          push(a);
          push(b);
          push(c);
          push(d_city);
          return true;
        }
      }
    }
    return false;
  }

  /// Relocates the segment of `len` cities at local positions
  /// [pa, pa+len-1] to sit between positions q and q+1 (both outside
  /// the segment), optionally reversed. Everything shifted stays in
  /// [1, m-2].
  void apply_or_opt(std::size_t pa, std::size_t len, std::size_t q,
                    bool flip) {
    seg_scratch_.assign(ord_.begin() + static_cast<std::ptrdiff_t>(pa),
                        ord_.begin() + static_cast<std::ptrdiff_t>(pa + len));
    if (flip) {
      std::reverse(seg_scratch_.begin(), seg_scratch_.end());
    }
    const std::size_t pe = pa + len - 1;
    if (q > pe) {
      // Block (pe+1 .. q) slides left by len; segment lands at its end.
      std::size_t dst = pa;
      for (std::size_t src = pe + 1; src <= q; ++src, ++dst) {
        ord_[dst] = ord_[src];
        lp_[ord_[dst]] = dst;
      }
      for (std::size_t city : seg_scratch_) {
        ord_[dst] = city;
        lp_[city] = dst;
        ++dst;
      }
    } else {
      // Block (q+1 .. pa-1) slides right by len; segment lands at its
      // start.
      std::size_t dst = pe;
      for (std::size_t src = pa; src-- > q + 1;) {
        ord_[dst] = ord_[src];
        lp_[ord_[dst]] = dst;
        --dst;
      }
      for (std::size_t i = seg_scratch_.size(); i-- > 0;) {
        ord_[dst] = seg_scratch_[i];
        lp_[seg_scratch_[i]] = dst;
        --dst;
      }
    }
  }

  bool try_or_opt(std::size_t a) {
    const std::size_t pa = lp_[a];
    for (std::size_t len = 1; len <= opt_.or_opt_max_segment; ++len) {
      const std::size_t pe = pa + len - 1;
      if (pe + 1 >= m_) {
        break;  // segment would swallow the frozen tail
      }
      const std::size_t e = ord_[pe];
      const std::size_t p = ord_[pa - 1];
      const std::size_t nx = ord_[pe + 1];
      const double removal_gain =
          dist(pts_, p, a) + dist(pts_, e, nx) - dist(pts_, p, nx);
      if (removal_gain <= kGainEps) {
        continue;
      }
      const auto in_segment = [&](std::size_t qpos) {
        return qpos >= pa && qpos <= pe;
      };
      const auto try_slots = [&](std::size_t anchor, std::size_t other,
                                 std::size_t c, double d_c_anchor) -> bool {
        if (shard_of_[c] != me_) {
          return false;
        }
        const std::size_t qc = lp_[c];
        if (in_segment(qc)) {
          return false;
        }
        if (qc + 1 < m_ && !in_segment(qc + 1)) {
          // Slot (c, succ(c)): segment enters with `anchor` after c.
          const std::size_t f = ord_[qc + 1];
          const double delta = d_c_anchor + dist(pts_, other, f) -
                               dist(pts_, c, f) - removal_gain;
          if (delta < -kGainEps) {
            apply_or_opt(pa, len, qc, /*flip=*/anchor != a);
            push(p);
            push(nx);
            push(a);
            push(e);
            push(c);
            push(f);
            return true;
          }
        }
        if (qc > 0 && !in_segment(qc - 1)) {
          // Slot (pred(c), c): segment enters with `anchor` before c.
          const std::size_t bb = ord_[qc - 1];
          const double delta = dist(pts_, bb, other) + d_c_anchor -
                               dist(pts_, bb, c) - removal_gain;
          if (delta < -kGainEps) {
            apply_or_opt(pa, len, qc - 1, /*flip=*/anchor == a);
            push(p);
            push(nx);
            push(a);
            push(e);
            push(c);
            push(bb);
            return true;
          }
        }
        return false;
      };
      const auto cand_a = nbrs_.of(a);
      const auto cand_a_d = nbrs_.dist_of(a);
      for (std::size_t t = 0; t < cand_a.size(); ++t) {
        if (cand_a_d[t] >= removal_gain) {
          break;  // the new edge (c, a) alone cancels the gain
        }
        if (try_slots(a, e, cand_a[t], cand_a_d[t])) {
          return true;
        }
      }
      if (len > 1) {
        const auto cand_e = nbrs_.of(e);
        const auto cand_e_d = nbrs_.dist_of(e);
        for (std::size_t t = 0; t < cand_e.size(); ++t) {
          if (cand_e_d[t] >= removal_gain) {
            break;
          }
          if (try_slots(e, a, cand_e[t], cand_e_d[t])) {
            return true;
          }
        }
      }
    }
    return false;
  }

  std::span<const geom::Point> pts_;
  const NeighborLists& nbrs_;
  const ImproveOptions& opt_;
  std::size_t m_;
  std::span<std::size_t> ord_;           // this shard's slice (local order)
  std::span<std::size_t> lp_;            // global: city -> local position
  std::span<std::uint8_t> inq_;          // global: city -> queued flag
  std::span<const std::uint32_t> shard_of_;  // global: city -> owning shard
  std::uint32_t me_;
  std::vector<std::size_t> queue_;  // FIFO ring over this shard's cities
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  std::size_t count_ = 0;
  std::vector<std::size_t> seg_scratch_;
};

}  // namespace

ImproveStats partitioned_improve(Tour& tour,
                                 std::span<const geom::Point> points,
                                 const NeighborLists& nbrs,
                                 const ImproveOptions& options) {
  ImproveStats total;
  total.initial_length = tour.length(points);
  total.final_length = total.initial_length;
  const std::size_t n = tour.size();
  const std::size_t target = std::max<std::size_t>(options.partition_shard_target, 8);
  const std::size_t shards = n / target;
  MDG_REQUIRE(shards >= 2, "partitioned improve needs at least two shards");
  total.shards = shards;

  const std::size_t front = tour.at(0);
  std::vector<std::size_t> order = tour.order();
  // Per-city bookkeeping shared by all shards; each city belongs to
  // exactly one shard per round, so every write is slot-exclusive.
  std::vector<std::uint32_t> shard_of(n);
  std::vector<std::size_t> local_pos(n);
  std::vector<std::uint8_t> in_queue(n, 0);
  std::vector<std::size_t> starts(shards + 1);
  for (std::size_t k = 0; k <= shards; ++k) {
    starts[k] = k * n / shards;
  }

  std::size_t processed = 0;
  std::size_t quiet_rounds = 0;
  for (std::size_t round = 0;
       round < options.partition_max_rounds && quiet_rounds < 2; ++round) {
    // Odd rounds shift the cut points by half a shard so the seam edges
    // frozen in even rounds become interior and improvable.
    const std::size_t offset = round % 2 == 0 ? 0 : (n / shards) / 2;
    for (std::size_t k = 0; k < shards; ++k) {
      for (std::size_t p = starts[k]; p < starts[k + 1]; ++p) {
        shard_of[order[(p + offset) % n]] = static_cast<std::uint32_t>(k);
      }
    }
    std::vector<ImproveStats> shard_stats(shards);
    parallel_for(shards, [&](std::size_t k) {
      const std::size_t len = starts[k + 1] - starts[k];
      std::vector<std::size_t> local(len);
      for (std::size_t t = 0; t < len; ++t) {
        local[t] = order[(starts[k] + offset + t) % n];
      }
      ShardEngine engine(local, points, nbrs, options, local_pos, in_queue,
                         shard_of, static_cast<std::uint32_t>(k));
      shard_stats[k] = engine.run();
      for (std::size_t t = 0; t < len; ++t) {
        order[(starts[k] + offset + t) % n] = local[t];
      }
    });
    // Canonical merge: fold shard results in shard index order, however
    // the round was scheduled.
    std::size_t round_moves = 0;
    for (std::size_t k = 0; k < shards; ++k) {
      processed += shard_stats[k].passes;
      total.moves += shard_stats[k].moves;
      total.two_opt_moves += shard_stats[k].two_opt_moves;
      total.or_opt_moves += shard_stats[k].or_opt_moves;
      round_moves += shard_stats[k].moves;
    }
    ++total.rounds;
    quiet_rounds = round_moves == 0 ? quiet_rounds + 1 : 0;
  }

  Tour out{std::move(order)};
  out.rotate_to_front(front);
  tour = std::move(out);
  total.passes = n == 0 ? 0 : (processed + n - 1) / n;
  total.final_length = tour.length(points);
  MDG_ASSERT(total.final_length <= total.initial_length + 1e-9,
             "partitioned improve must never lengthen the tour");
  return total;
}

}  // namespace mdg::tsp

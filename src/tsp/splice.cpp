#include "tsp/splice.h"

#include <limits>

#include "util/assert.h"

namespace mdg::tsp {

std::size_t splice_cheapest_position(std::span<const std::size_t> order,
                                     std::span<const geom::Point> points,
                                     std::size_t city) {
  MDG_REQUIRE(city < points.size(), "city outside the point set");
  const std::size_t m = order.size();
  if (m == 0) {
    return 0;
  }
  const geom::Point p = points[city];
  if (m == 1) {
    return 1;
  }
  std::size_t best = 1;
  double best_delta = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < m; ++i) {
    const geom::Point u = points[order[i]];
    const geom::Point v = points[order[i + 1 == m ? 0 : i + 1]];
    const double delta = geom::distance(u, p) + geom::distance(p, v) -
                         geom::distance(u, v);
    if (delta < best_delta) {
      best_delta = delta;
      best = i + 1;
    }
  }
  return best;
}

std::size_t splice_insert(std::vector<std::size_t>& order,
                          std::span<const geom::Point> points,
                          std::size_t city) {
  const std::size_t at = splice_cheapest_position(order, points, city);
  order.insert(order.begin() + static_cast<std::ptrdiff_t>(at), city);
  return at;
}

std::size_t splice_remove(std::vector<std::size_t>& order, std::size_t city) {
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] == city) {
      order.erase(order.begin() + static_cast<std::ptrdiff_t>(i));
      return i;
    }
  }
  return splice_npos;
}

}  // namespace mdg::tsp

#include "tsp/neighbor_lists.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "geom/aabb.h"
#include "geom/spatial_grid.h"
#include "obs/names.h"
#include "obs/span.h"

namespace mdg::tsp {
namespace {

/// Below this size the brute-force partial_sort build beats grid setup.
constexpr std::size_t kBruteForceBelow = 64;

void emit_sorted_prefix(std::vector<std::pair<double, std::size_t>>& scratch,
                        std::size_t kk, std::vector<std::size_t>& flat) {
  std::partial_sort(scratch.begin(),
                    scratch.begin() + static_cast<std::ptrdiff_t>(kk),
                    scratch.end());
  for (std::size_t i = 0; i < kk; ++i) {
    flat.push_back(scratch[i].second);
  }
}

}  // namespace

NeighborLists::NeighborLists(std::span<const geom::Point> points,
                             std::size_t k) {
  OBS_SPAN(obs::metric::kTspNeighborsBuild);
  const std::size_t n = points.size();
  k_ = n == 0 ? 0 : std::min(k, n - 1);
  offsets_.resize(n + 1);
  for (std::size_t a = 0; a <= n; ++a) {
    offsets_[a] = a * k_;
  }
  if (k_ == 0) {
    return;
  }
  flat_.reserve(n * k_);

  std::vector<std::pair<double, std::size_t>> scratch;

  bool brute = n < kBruteForceBelow;
  double cell = 0.0;
  geom::Aabb bounds;
  if (!brute) {
    bounds = geom::Aabb::bounding(points);
    const double area = bounds.width() * bounds.height();
    if (area <= 0.0) {
      brute = true;  // collinear or coincident: the grid degenerates
    } else {
      // ~1 point per cell in expectation.
      cell = std::sqrt(area / static_cast<double>(n));
    }
  }

  if (brute) {
    for (std::size_t a = 0; a < n; ++a) {
      scratch.clear();
      for (std::size_t b = 0; b < n; ++b) {
        if (b != a) {
          scratch.push_back({geom::distance_sq(points[a], points[b]), b});
        }
      }
      emit_sorted_prefix(scratch, k_, flat_);
    }
    return;
  }

  const geom::SpatialGrid grid(points, cell);
  // Once the scan radius reaches the bounding-box diagonal every point
  // has been seen, whatever the query centre.
  const double reach = std::hypot(bounds.width(), bounds.height());
  for (std::size_t a = 0; a < n; ++a) {
    // Expanding ring: a point can only be missed while the scan radius is
    // below its distance, so the k-th hit is confirmed once it lies
    // within the scanned radius.
    double radius = cell;
    for (;;) {
      scratch.clear();
      grid.for_each_in_radius(points[a], radius, [&](std::size_t idx) {
        if (idx != a) {
          scratch.push_back({geom::distance_sq(points[a], points[idx]), idx});
        }
      });
      if (scratch.size() >= k_) {
        std::nth_element(scratch.begin(),
                         scratch.begin() + static_cast<std::ptrdiff_t>(k_ - 1),
                         scratch.end());
        if (std::sqrt(scratch[k_ - 1].first) <= radius) {
          break;
        }
      }
      if (radius >= reach) {
        break;  // the whole indexed set was scanned
      }
      radius *= 2.0;
    }
    emit_sorted_prefix(scratch, k_, flat_);
  }
}

}  // namespace mdg::tsp

#include "tsp/neighbor_lists.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "geom/aabb.h"
#include "geom/spatial_grid.h"
#include "obs/names.h"
#include "obs/span.h"
#include "util/assert.h"
#include "util/thread_pool.h"

namespace mdg::tsp {
namespace {

/// Below this size the brute-force partial_sort build beats grid setup.
constexpr std::size_t kBruteForceBelow = 64;

/// Below this many points the per-city grid queries are too cheap for
/// fan-out to pay; at or above, cities are built in fixed blocks across
/// the pool (writes are slot-exclusive, so the lists are byte-identical
/// at any thread count).
constexpr std::size_t kParallelBuildBelow = 4096;

/// Cities per parallel work unit. Fixed (never derived from the thread
/// count) so the block boundaries — and thus the work decomposition —
/// are a pure function of n.
constexpr std::size_t kBuildBlock = 1024;

/// Sorts the k nearest entries of `scratch` to the front and writes the
/// ids and distances into the slots [base, base + kk) — each city owns
/// its slice, which is what makes the parallel build deterministic.
void emit_sorted_prefix(std::vector<std::pair<double, std::size_t>>& scratch,
                        std::size_t kk, std::size_t base,
                        std::vector<std::size_t>& flat,
                        std::vector<double>& dists) {
  std::partial_sort(scratch.begin(),
                    scratch.begin() + static_cast<std::ptrdiff_t>(kk),
                    scratch.end());
  for (std::size_t i = 0; i < kk; ++i) {
    flat[base + i] = scratch[i].second;
    dists[base + i] = std::sqrt(scratch[i].first);
  }
}

}  // namespace

NeighborLists::NeighborLists(std::span<const geom::Point> points,
                             std::size_t k) {
  OBS_SPAN(obs::metric::kTspNeighborsBuild);
  const std::size_t n = points.size();
  k_ = n == 0 ? 0 : std::min(k, n - 1);
  offsets_.resize(n + 1);
  for (std::size_t a = 0; a <= n; ++a) {
    offsets_[a] = a * k_;
  }
  if (k_ == 0) {
    return;
  }
  flat_.resize(n * k_);
  dists_.resize(n * k_);

  bool brute = n < kBruteForceBelow;
  double cell = 0.0;
  geom::Aabb bounds;
  if (!brute) {
    bounds = geom::Aabb::bounding(points);
    const double area = bounds.width() * bounds.height();
    if (area <= 0.0) {
      brute = true;  // collinear or coincident: the grid degenerates
    } else {
      // ~1 point per cell in expectation.
      cell = std::sqrt(area / static_cast<double>(n));
    }
  }

  if (brute) {
    std::vector<std::pair<double, std::size_t>> scratch;
    for (std::size_t a = 0; a < n; ++a) {
      scratch.clear();
      for (std::size_t b = 0; b < n; ++b) {
        if (b != a) {
          scratch.push_back({geom::distance_sq(points[a], points[b]), b});
        }
      }
      emit_sorted_prefix(scratch, k_, offsets_[a], flat_, dists_);
    }
    return;
  }

  const geom::SpatialGrid grid(points, cell);
  // Once the scan radius reaches the bounding-box diagonal every point
  // has been seen, whatever the query centre.
  const double reach = std::hypot(bounds.width(), bounds.height());
  const auto build_city =
      [&](std::size_t a,
          std::vector<std::pair<double, std::size_t>>& scratch) {
        // Expanding ring: a point can only be missed while the scan
        // radius is below its distance, so the k-th hit is confirmed
        // once it lies within the scanned radius.
        double radius = cell;
        for (;;) {
          scratch.clear();
          grid.collect_in_radius_sq(points[a], radius, a, scratch);
          if (scratch.size() >= k_) {
            std::nth_element(
                scratch.begin(),
                scratch.begin() + static_cast<std::ptrdiff_t>(k_ - 1),
                scratch.end());
            if (std::sqrt(scratch[k_ - 1].first) <= radius) {
              break;
            }
          }
          if (radius >= reach) {
            break;  // the whole indexed set was scanned
          }
          radius *= 2.0;
        }
        emit_sorted_prefix(scratch, k_, offsets_[a], flat_, dists_);
      };

  if (n < kParallelBuildBelow || planning_threads() <= 1) {
    std::vector<std::pair<double, std::size_t>> scratch;
    for (std::size_t a = 0; a < n; ++a) {
      build_city(a, scratch);
    }
    return;
  }
  const std::size_t blocks = (n + kBuildBlock - 1) / kBuildBlock;
  parallel_for(blocks, [&](std::size_t blk) {
    std::vector<std::pair<double, std::size_t>> scratch;
    const std::size_t lo = blk * kBuildBlock;
    const std::size_t hi = std::min(lo + kBuildBlock, n);
    for (std::size_t a = lo; a < hi; ++a) {
      build_city(a, scratch);
    }
  });
}

NeighborLists::NeighborLists(std::span<const geom::Point> points,
                             std::size_t k,
                             std::span<const std::size_t> members) {
  OBS_SPAN(obs::metric::kTspNeighborsBuild);
  const std::size_t n = points.size();
  const std::size_t m = members.size();
  k_ = m == 0 ? 0 : std::min(k, m - 1);
  offsets_.assign(n + 1, 0);
  if (k_ == 0) {
    return;
  }
  // Ragged CSR: members own k_ slots, everyone else an empty list.
  for (std::size_t i = 0; i < m; ++i) {
    MDG_ASSERT(members[i] < n && (i == 0 || members[i - 1] < members[i]),
               "window members must be sorted unique city ids");
    offsets_[members[i] + 1] = k_;
  }
  for (std::size_t a = 0; a < n; ++a) {
    offsets_[a + 1] += offsets_[a];
  }
  flat_.resize(m * k_);
  dists_.resize(m * k_);
  std::vector<std::pair<double, std::size_t>> scratch;
  for (std::size_t a : members) {
    scratch.clear();
    for (std::size_t b : members) {
      if (b != a) {
        scratch.push_back({geom::distance_sq(points[a], points[b]), b});
      }
    }
    emit_sorted_prefix(scratch, k_, offsets_[a], flat_, dists_);
  }
}

}  // namespace mdg::tsp

// Localized tour splicing: cheapest insertion and removal of single
// cities on a cyclic visiting order.
//
// Incremental replanning (core::apply_delta) edits an existing tour a
// few cities at a time: a polling point that lost its sensors leaves
// the tour, a freshly selected one enters at the cheapest edge. These
// primitives operate on a raw order vector — a cyclic sequence of city
// indices into an external point set, depot at position 0 by convention
// — rather than tsp::Tour, because mid-repair the sequence is not yet a
// permutation of [0, n) (cities are being added and dropped). The
// caller materialises a Tour once the city set is final and then runs
// tsp::improve_window over the splice neighbourhood.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geom/point.h"

namespace mdg::tsp {

/// Position at which inserting `city` into the cyclic `order` lengthens
/// it least: evaluates every edge (order[i], order[i+1 mod m]) and
/// returns i + 1 for the best, so the caller inserts before that index.
/// Exact ties break toward the earliest edge. Returns 0 only for an
/// empty order. O(m) with three distance evaluations per edge.
[[nodiscard]] std::size_t splice_cheapest_position(
    std::span<const std::size_t> order, std::span<const geom::Point> points,
    std::size_t city);

/// Inserts `city` at its cheapest position and returns that position.
std::size_t splice_insert(std::vector<std::size_t>& order,
                          std::span<const geom::Point> points,
                          std::size_t city);

/// Removes the entry holding `city` (closing the gap) and returns the
/// position it occupied, or npos when the city is not on the order.
std::size_t splice_remove(std::vector<std::size_t>& order, std::size_t city);

inline constexpr std::size_t splice_npos = static_cast<std::size_t>(-1);

}  // namespace mdg::tsp

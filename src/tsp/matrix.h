// TSP over an explicit (symmetric, non-negative) distance matrix.
//
// The Euclidean solvers in solve.h assume straight-line legs; obstacle-
// aware collector routing needs tours under the *detour* metric, which is
// only available as pairwise distances from the ObstacleRouter. This
// variant provides the same construction + 2-opt pipeline on a matrix.
#pragma once

#include <cstddef>
#include <vector>

#include "tsp/tour.h"
#include "util/assert.h"

namespace mdg::tsp {

/// Dense symmetric distance matrix with +inf allowed for unroutable
/// pairs.
class DistanceMatrix {
 public:
  explicit DistanceMatrix(std::size_t n);

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] double at(std::size_t i, std::size_t j) const;
  /// Unchecked access for hot loops (bounds asserted in debug builds
  /// only — the per-access precondition check in at() is measurable
  /// inside the O(n²)-per-pass solvers).
  [[nodiscard]] double operator()(std::size_t i, std::size_t j) const {
#ifndef NDEBUG
    MDG_ASSERT(i < n_ && j < n_, "matrix index out of range");
#endif
    return data_[i * n_ + j];
  }
  /// Sets d(i, j) = d(j, i) = value (value >= 0 or +inf).
  void set(std::size_t i, std::size_t j, double value);

  /// Tour length under this metric.
  [[nodiscard]] double tour_length(const Tour& tour) const;

 private:
  std::size_t n_;
  std::vector<double> data_;
};

/// Nearest-neighbour construction from index 0.
[[nodiscard]] Tour nearest_neighbor_matrix(const DistanceMatrix& d);

/// First-improvement 2-opt under the matrix metric (depot pinned at
/// position 0). Returns the number of improving moves applied.
std::size_t two_opt_matrix(Tour& tour, const DistanceMatrix& d,
                           std::size_t max_passes = 64);

/// NN + 2-opt pipeline.
[[nodiscard]] Tour solve_tsp_matrix(const DistanceMatrix& d);

}  // namespace mdg::tsp

#include "tsp/exact.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/assert.h"

namespace mdg::tsp {
namespace {

struct HeldKarpTable {
  // dp[mask][last]: shortest path visiting exactly the vertices of mask
  // (subset of 1..n-1), starting at 0 and ending at `last`.
  std::vector<double> dp;
  std::vector<std::uint8_t> parent;
  std::size_t n = 0;

  double& at(std::size_t mask, std::size_t last) {
    return dp[mask * n + last];
  }
  std::uint8_t& parent_at(std::size_t mask, std::size_t last) {
    return parent[mask * n + last];
  }
};

HeldKarpTable solve_table(std::span<const geom::Point> points) {
  const std::size_t n = points.size();
  MDG_REQUIRE(n >= 1 && n <= kMaxExactTsp,
              "held_karp handles 1..kMaxExactTsp points");
  HeldKarpTable table;
  table.n = n;
  const std::size_t masks = std::size_t{1} << (n - 1);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  table.dp.assign(masks * n, kInf);
  table.parent.assign(masks * n, 0);

  std::vector<double> d(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      d[i * n + j] = geom::distance(points[i], points[j]);
    }
  }

  // Vertex v (1-based within the mask) corresponds to bit v-1.
  for (std::size_t v = 1; v < n; ++v) {
    table.at(std::size_t{1} << (v - 1), v) = d[v];  // 0 -> v
  }
  for (std::size_t mask = 1; mask < masks; ++mask) {
    for (std::size_t last = 1; last < n; ++last) {
      if (!(mask & (std::size_t{1} << (last - 1)))) {
        continue;
      }
      const double cur = table.at(mask, last);
      if (cur == kInf) {
        continue;
      }
      for (std::size_t next = 1; next < n; ++next) {
        const std::size_t bit = std::size_t{1} << (next - 1);
        if (mask & bit) {
          continue;
        }
        const std::size_t nmask = mask | bit;
        const double cand = cur + d[last * n + next];
        if (cand < table.at(nmask, next)) {
          table.at(nmask, next) = cand;
          table.parent_at(nmask, next) = static_cast<std::uint8_t>(last);
        }
      }
    }
  }
  return table;
}

}  // namespace

double held_karp_length(std::span<const geom::Point> points) {
  const std::size_t n = points.size();
  if (n <= 1) {
    return 0.0;
  }
  if (n == 2) {
    return 2.0 * geom::distance(points[0], points[1]);
  }
  HeldKarpTable table = solve_table(points);
  const std::size_t full = (std::size_t{1} << (n - 1)) - 1;
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t last = 1; last < n; ++last) {
    best = std::min(best, table.at(full, last) +
                              geom::distance(points[last], points[0]));
  }
  return best;
}

Tour held_karp(std::span<const geom::Point> points) {
  const std::size_t n = points.size();
  if (n == 0) {
    return Tour{};
  }
  if (n <= 3) {
    return Tour::identity(n);  // any order is optimal for n <= 3
  }
  HeldKarpTable table = solve_table(points);
  const std::size_t full = (std::size_t{1} << (n - 1)) - 1;
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_last = 1;
  for (std::size_t last = 1; last < n; ++last) {
    const double cand =
        table.at(full, last) + geom::distance(points[last], points[0]);
    if (cand < best) {
      best = cand;
      best_last = last;
    }
  }
  // Backtrack.
  std::vector<std::size_t> reversed;
  std::size_t mask = full;
  std::size_t last = best_last;
  while (last != 0) {
    reversed.push_back(last);
    const std::size_t prev = table.parent_at(mask, last);
    mask &= ~(std::size_t{1} << (last - 1));
    last = prev;
  }
  std::vector<std::size_t> order{0};
  order.insert(order.end(), reversed.rbegin(), reversed.rend());
  Tour tour(std::move(order));
  MDG_ASSERT(std::abs(tour.length(points) - best) <= 1e-6 * (1.0 + best),
             "held_karp backtrack disagrees with DP value");
  return tour;
}

}  // namespace mdg::tsp

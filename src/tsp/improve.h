// Local-search tour improvement: 2-opt and Or-opt.
//
// Both run to a local optimum with first-improvement sweeps. For the
// instance sizes of this paper (tours over at most a few hundred polling
// points) the plain O(n^2) sweep per pass is faster in practice than
// neighbour-list machinery.
#pragma once

#include <span>

#include "geom/point.h"
#include "tsp/tour.h"

namespace mdg::tsp {

struct ImproveStats {
  std::size_t passes = 0;         ///< full sweeps executed
  std::size_t moves = 0;          ///< improving moves applied
  double initial_length = 0.0;
  double final_length = 0.0;
};

/// 2-opt: repeatedly reverse a segment when it shortens the tour; position
/// 0 (the depot) never moves. Stops at a local optimum or after
/// `max_passes` sweeps.
ImproveStats two_opt(Tour& tour, std::span<const geom::Point> points,
                     std::size_t max_passes = 64);

/// Neighbour-list 2-opt: only considers reconnections between each city
/// and its `k` nearest neighbours — O(n·k) per pass instead of O(n^2).
/// The workhorse for big direct-visit tours (hundreds of stops), where
/// full 2-opt sweeps dominate planning time. Still never lengthens the
/// tour; the local optimum is weaker than full 2-opt's.
ImproveStats two_opt_neighbors(Tour& tour, std::span<const geom::Point> points,
                               std::size_t k = 10,
                               std::size_t max_passes = 64);

/// Or-opt: relocate segments of 1..3 consecutive stops to a better place.
ImproveStats or_opt(Tour& tour, std::span<const geom::Point> points,
                    std::size_t max_passes = 64);

/// 2-opt followed by Or-opt, iterated until neither improves.
ImproveStats improve(Tour& tour, std::span<const geom::Point> points,
                     std::size_t max_rounds = 8);

}  // namespace mdg::tsp

// Local-search tour improvement: 2-opt and Or-opt.
//
// Two regimes share one entry point. Small tours (under
// ImproveOptions::full_scan_below cities) run the classic full-sweep
// kernels — the O(n²) scan per pass is faster than neighbour-list setup
// there, and the trajectory matches the original reproduction exactly.
// Larger tours run a neighbour-list engine: k-nearest candidate moves,
// don't-look bits so converged cities are skipped, shorter-side segment
// reversal, and Or-opt relocation composed into a single work queue.
#pragma once

#include <chrono>
#include <span>

#include "geom/point.h"
#include "tsp/tour.h"

namespace mdg::tsp {

struct ImproveStats {
  std::size_t passes = 0;         ///< full sweeps (or queue-drain equivalents)
  std::size_t moves = 0;          ///< improving moves applied (2-opt + Or-opt)
  std::size_t two_opt_moves = 0;  ///< segment reversals among `moves`
  std::size_t or_opt_moves = 0;   ///< segment relocations among `moves`
  std::size_t shards = 0;         ///< partitions used (0 = unpartitioned)
  std::size_t rounds = 0;         ///< partitioned rounds run (0 = unpartitioned)
  double initial_length = 0.0;
  double final_length = 0.0;
};

/// Tuning knobs for the composed improvement kernel.
struct ImproveOptions {
  /// Neighbour-list width for the engine (clamped to n-1).
  std::size_t neighbors = 12;
  /// Upper bound on work: the engine processes at most max_passes·n
  /// cities; the sweep kernels run at most max_passes sweeps.
  std::size_t max_passes = 64;
  /// Compose Or-opt (segment relocation) with 2-opt.
  bool use_or_opt = true;
  /// Longest segment Or-opt relocates.
  std::size_t or_opt_max_segment = 3;
  /// Below this many cities the classic full-sweep kernels run instead
  /// of the neighbour-list engine — measured faster there (the engine
  /// pays neighbour-list setup before its first move; see ALGORITHMS.md
  /// §cutoffs). Set to 0 to force the engine.
  std::size_t full_scan_below = 128;
  /// At or above this many cities the neighbour-list engine runs as the
  /// deterministic partitioned parallel search (see DESIGN.md
  /// §determinism-under-parallelism): the tour is cut into contiguous
  /// shards improved concurrently, byte-identical at any thread count.
  /// Set to 0 (or anything > n) to always run the sequential engine.
  std::size_t partition_above = 32768;
  /// Cities per shard the partitioned search aims for. The shard count
  /// is derived from n and this target only — never from the thread
  /// count — so the work decomposition is a pure function of the input.
  std::size_t partition_shard_target = 4096;
  /// Upper bound on partitioned rounds (each round re-cuts the tour
  /// with alternating shard offsets so seams can heal; the search stops
  /// early after two consecutive rounds without a move). A sequential
  /// engine pass always polishes after the shard rounds, so a few
  /// rounds suffice.
  std::size_t partition_max_rounds = 3;
};

/// 2-opt: repeatedly reverse a segment when it shortens the tour; position
/// 0 (the depot) never moves. Stops at a local optimum or after
/// `max_passes` sweeps.
ImproveStats two_opt(Tour& tour, std::span<const geom::Point> points,
                     std::size_t max_passes = 64);

/// Neighbour-list 2-opt with don't-look bits: only considers
/// reconnections between each city and its `k` nearest neighbours and
/// skips cities whose neighbourhood has not changed since they last
/// failed to improve — O(n·k) per pass with a near-O(active) inner loop.
/// The workhorse for big direct-visit tours (hundreds of stops). Still
/// never lengthens the tour; the local optimum is weaker than full
/// 2-opt's.
ImproveStats two_opt_neighbors(Tour& tour, std::span<const geom::Point> points,
                               std::size_t k = 10,
                               std::size_t max_passes = 64);

/// Or-opt: relocate segments of 1..3 consecutive stops to a better place.
ImproveStats or_opt(Tour& tour, std::span<const geom::Point> points,
                    std::size_t max_passes = 64);

/// The shared improvement kernel behind every planner: 2-opt + Or-opt to
/// a joint local optimum. Dispatches between the classic sweep kernels
/// and the neighbour-list engine on tour size (see ImproveOptions).
ImproveStats improve(Tour& tour, std::span<const geom::Point> points,
                     const ImproveOptions& options = {});

/// Windowed local search for incremental replanning (core::apply_delta):
/// runs the neighbour-list engine with only the `window` cities active
/// and with candidate reconnections drawn from the window itself, so the
/// cost scales with the splice neighbourhood instead of the tour. Cities
/// outside the window move only when a window move drags them along.
/// `window` holds city indices (any order, duplicates fine, each <
/// tour.size()); the depot convention (tour position 0) is preserved and
/// the tour never lengthens. Deterministic — single-threaded and
/// seed-order independent (seeds are activated in sorted order).
ImproveStats improve_window(Tour& tour, std::span<const geom::Point> points,
                            std::span<const std::size_t> window,
                            const ImproveOptions& options = {});

/// Anytime early-exit for serving (docs/SERVE.md §deadlines). While a
/// ScopedImproveDeadline is active on the calling thread, every
/// improvement kernel in this module polls the deadline at move-safe
/// checkpoints — between sweep passes, every few hundred engine
/// activations — and returns its current (always valid, never lengthened)
/// tour as soon as the deadline has passed. With no scope active — the
/// default everywhere outside `src/serve` — behaviour is bit-for-bit
/// unchanged, so the determinism contract (DESIGN.md) is untouched.
///
/// The deadline is thread-local: kernels that fan out to pool workers
/// (multi-start portfolio chains, partitioned shards) do not observe the
/// caller's deadline; the sequential engine and the polish pass — the
/// dominant improvement cost at serving sizes — do. Deadline-truncated
/// runs trade quality for latency and are therefore *not* byte-
/// reproducible across machines; serve never caches them as exact
/// replies of a slower request (the deadline is part of the cache key).
class ScopedImproveDeadline {
 public:
  explicit ScopedImproveDeadline(std::chrono::steady_clock::time_point deadline);
  ~ScopedImproveDeadline();
  ScopedImproveDeadline(const ScopedImproveDeadline&) = delete;
  ScopedImproveDeadline& operator=(const ScopedImproveDeadline&) = delete;

 private:
  std::chrono::steady_clock::time_point saved_;
};

/// True when a deadline scope is active on this thread and the clock has
/// passed it. Cheap enough for per-pass polling (one thread-local read;
/// the clock is only consulted while a scope is active).
[[nodiscard]] bool improve_deadline_expired();

/// True while a ScopedImproveDeadline is active on the calling thread
/// (whether or not it has expired yet).
[[nodiscard]] bool improve_deadline_active();

}  // namespace mdg::tsp

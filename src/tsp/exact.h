// Exact TSP by Held–Karp dynamic programming.
//
// Used by the ExactPlanner (the CPLEX substitute) to optimally route the
// mobile collector over a candidate polling-point set. Exponential memory
// (O(2^n * n)) limits it to kMaxExactTsp stops — exactly the regime the
// paper's optimal-solution comparison runs in.
#pragma once

#include <cstddef>
#include <span>

#include "geom/point.h"
#include "tsp/tour.h"

namespace mdg::tsp {

/// Largest instance held_karp accepts.
inline constexpr std::size_t kMaxExactTsp = 20;

/// Optimal closed tour over `points` starting/ending at index 0.
/// Requires points.size() <= kMaxExactTsp.
[[nodiscard]] Tour held_karp(std::span<const geom::Point> points);

/// Length of the optimal tour without materialising it (same limits).
[[nodiscard]] double held_karp_length(std::span<const geom::Point> points);

}  // namespace mdg::tsp

#include "tsp/matrix.h"

#include <algorithm>
#include <limits>

#include "util/assert.h"

namespace mdg::tsp {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

DistanceMatrix::DistanceMatrix(std::size_t n) : n_(n), data_(n * n, 0.0) {}

double DistanceMatrix::at(std::size_t i, std::size_t j) const {
  MDG_REQUIRE(i < n_ && j < n_, "matrix index out of range");
  return data_[i * n_ + j];
}

void DistanceMatrix::set(std::size_t i, std::size_t j, double value) {
  MDG_REQUIRE(i < n_ && j < n_, "matrix index out of range");
  MDG_REQUIRE(value >= 0.0, "distances must be non-negative");
  data_[i * n_ + j] = value;
  data_[j * n_ + i] = value;
}

double DistanceMatrix::tour_length(const Tour& tour) const {
  if (tour.size() < 2) {
    return 0.0;
  }
  double total = 0.0;
  const auto& order = tour.order();
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    total += (*this)(order[pos], order[tour.next_pos(pos)]);
  }
  return total;
}

Tour nearest_neighbor_matrix(const DistanceMatrix& d) {
  const std::size_t n = d.size();
  if (n == 0) {
    return Tour{};
  }
  std::vector<bool> visited(n, false);
  std::vector<std::size_t> order{0};
  visited[0] = true;
  std::size_t current = 0;
  for (std::size_t step = 1; step < n; ++step) {
    std::size_t best = n;
    double best_d = kInf;
    for (std::size_t v = 0; v < n; ++v) {
      if (!visited[v] && d(current, v) < best_d) {
        best_d = d(current, v);
        best = v;
      }
    }
    // An unroutable frontier still needs to pick someone: take the first
    // unvisited (its legs are +inf; the caller sees the inf tour length).
    if (best == n) {
      for (std::size_t v = 0; v < n; ++v) {
        if (!visited[v]) {
          best = v;
          break;
        }
      }
    }
    visited[best] = true;
    order.push_back(best);
    current = best;
  }
  return Tour(std::move(order));
}

std::size_t two_opt_matrix(Tour& tour, const DistanceMatrix& d,
                           std::size_t max_passes) {
  const std::size_t n = tour.size();
  std::size_t moves = 0;
  if (n < 4) {
    return moves;
  }
  std::vector<std::size_t> order = tour.order();
  bool improved = true;
  std::size_t passes = 0;
  while (improved && passes < max_passes) {
    improved = false;
    ++passes;
    for (std::size_t i = 1; i + 1 < n; ++i) {
      const std::size_t prev = order[i - 1];
      for (std::size_t j = i + 1; j < n; ++j) {
        const std::size_t next = order[(j + 1) % n];
        const double before = d(prev, order[i]) + d(order[j], next);
        const double after = d(prev, order[j]) + d(order[i], next);
        if (after + 1e-12 < before) {
          std::reverse(order.begin() + static_cast<std::ptrdiff_t>(i),
                       order.begin() + static_cast<std::ptrdiff_t>(j) + 1);
          ++moves;
          improved = true;
        }
      }
    }
  }
  tour = Tour(std::move(order));
  return moves;
}

Tour solve_tsp_matrix(const DistanceMatrix& d) {
  Tour tour = nearest_neighbor_matrix(d);
  two_opt_matrix(tour, d);
  return tour;
}

}  // namespace mdg::tsp

// Tour construction heuristics.
//
// The paper's harness uses nearest-neighbour (the tour heuristic the
// follow-up literature reports for these systems); greedy-edge, cheapest
// insertion and the MST 2-approximation are provided for the TSP ablation
// experiment (A1) and as better starting tours for local search.
#pragma once

#include <span>

#include "geom/point.h"
#include "tsp/tour.h"
#include "util/rng.h"

namespace mdg::tsp {

/// Nearest-neighbour from `start` (default 0 = the depot).
[[nodiscard]] Tour nearest_neighbor(std::span<const geom::Point> points,
                                    std::size_t start = 0);

/// Greedy edge matching: repeatedly add the globally shortest edge that
/// keeps degree <= 2 and forms no premature cycle. O(n^2 log n).
[[nodiscard]] Tour greedy_edge(std::span<const geom::Point> points);

/// Cheapest insertion starting from the two closest points.
[[nodiscard]] Tour cheapest_insertion(std::span<const geom::Point> points);

/// Classic 2-approximation: preorder walk of the Euclidean MST.
[[nodiscard]] Tour mst_preorder(std::span<const geom::Point> points);

/// Christofides-style construction with a greedy (not minimum) matching:
/// MST + greedy perfect matching of the odd-degree vertices + Eulerian
/// circuit + shortcutting. No 1.5-approximation guarantee (the matching
/// is greedy), but in practice clearly better than the plain MST walk.
[[nodiscard]] Tour christofides_greedy(std::span<const geom::Point> points);

/// Uniformly random permutation (for tests and as a worst-case baseline).
[[nodiscard]] Tour random_tour(std::size_t n, Rng& rng);

}  // namespace mdg::tsp

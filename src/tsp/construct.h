// Tour construction heuristics.
//
// The paper's harness uses nearest-neighbour (the tour heuristic the
// follow-up literature reports for these systems); greedy-edge, cheapest
// insertion and the MST 2-approximation are provided for the TSP ablation
// experiment (A1) and as better starting tours for local search.
//
// nearest_neighbor and greedy_edge dispatch on size: below the cutoffs
// recorded in ALGORITHMS.md they run the classic full-scan kernels
// (kept as *_reference), above them grid-accelerated kernels that
// produce byte-identical tours — the references are the parity oracles,
// the accelerated paths the production code.
#pragma once

#include <span>

#include "geom/point.h"
#include "tsp/tour.h"
#include "util/rng.h"

namespace mdg::tsp {

/// Nearest-neighbour from `start` (default 0 = the depot). Large inputs
/// run an expanding-ring search over a geom::RemovalGrid; output is
/// byte-identical to nearest_neighbor_reference at every size.
[[nodiscard]] Tour nearest_neighbor(std::span<const geom::Point> points,
                                    std::size_t start = 0);

/// The seed O(n^2) full-scan nearest-neighbour. Parity oracle for
/// nearest_neighbor and the baseline kernel in bench_p1_hotpaths.
[[nodiscard]] Tour nearest_neighbor_reference(
    std::span<const geom::Point> points, std::size_t start = 0);

/// Greedy edge matching: repeatedly add the globally shortest edge that
/// keeps degree <= 2 and forms no premature cycle. Large inputs
/// enumerate edges lazily in globally sorted order by k-way-merging
/// per-vertex expanding-ring distance streams — byte-identical to
/// greedy_edge_reference (both order edges by (d2, u, v)) without ever
/// materialising the O(n^2) edge list.
[[nodiscard]] Tour greedy_edge(std::span<const geom::Point> points);

/// The seed O(n^2 log n) sort-all-edges greedy. Parity oracle for
/// greedy_edge.
[[nodiscard]] Tour greedy_edge_reference(std::span<const geom::Point> points);

/// Cheapest insertion starting from the two closest points.
[[nodiscard]] Tour cheapest_insertion(std::span<const geom::Point> points);

/// Classic 2-approximation: preorder walk of the Euclidean MST.
[[nodiscard]] Tour mst_preorder(std::span<const geom::Point> points);

/// Christofides-style construction with a greedy (not minimum) matching:
/// MST + greedy perfect matching of the odd-degree vertices + Eulerian
/// circuit + shortcutting. No 1.5-approximation guarantee (the matching
/// is greedy), but in practice clearly better than the plain MST walk.
[[nodiscard]] Tour christofides_greedy(std::span<const geom::Point> points);

/// Uniformly random permutation (for tests and as a worst-case baseline).
[[nodiscard]] Tour random_tour(std::size_t n, Rng& rng);

}  // namespace mdg::tsp

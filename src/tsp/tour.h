// Closed-tour representation over a point set.
//
// A Tour is a permutation of the indices [0, n) of an external point set;
// the tour is implicitly closed (last -> first). By convention, index 0 of
// the point set is the depot (the static data sink) and every solver in
// this library keeps it at position 0 of the permutation.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geom/point.h"

namespace mdg::tsp {

class Tour {
 public:
  Tour() = default;

  /// Takes a visiting order (a permutation of [0, n)). Validity is
  /// checked: every index exactly once.
  explicit Tour(std::vector<std::size_t> order);

  /// The identity tour 0,1,...,n-1.
  [[nodiscard]] static Tour identity(std::size_t n);

  [[nodiscard]] std::size_t size() const { return order_.size(); }
  [[nodiscard]] bool empty() const { return order_.empty(); }
  [[nodiscard]] const std::vector<std::size_t>& order() const { return order_; }
  [[nodiscard]] std::size_t at(std::size_t pos) const;

  /// Successor position (wraps).
  [[nodiscard]] std::size_t next_pos(std::size_t pos) const {
    return pos + 1 == order_.size() ? 0 : pos + 1;
  }

  /// Total closed length w.r.t. `points` (points.size() must be >= n).
  [[nodiscard]] double length(std::span<const geom::Point> points) const;

  /// Rotates so that `index` sits at position 0 (the depot convention).
  void rotate_to_front(std::size_t index);

  /// Reverses the segment [i, j] of positions (inclusive) — the 2-opt
  /// move primitive.
  void reverse_segment(std::size_t i, std::size_t j);

  /// True when the order is a permutation of [0, n).
  [[nodiscard]] static bool is_permutation(std::span<const std::size_t> order);

  /// The visited points, in order.
  [[nodiscard]] std::vector<geom::Point> to_points(
      std::span<const geom::Point> points) const;

 private:
  std::vector<std::size_t> order_;
};

}  // namespace mdg::tsp

#include "tsp/improve.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/assert.h"

namespace mdg::tsp {
namespace {

double dist(std::span<const geom::Point> pts, std::size_t a, std::size_t b) {
  return geom::distance(pts[a], pts[b]);
}

}  // namespace

ImproveStats two_opt(Tour& tour, std::span<const geom::Point> points,
                     std::size_t max_passes) {
  ImproveStats stats;
  stats.initial_length = tour.length(points);
  stats.final_length = stats.initial_length;
  const std::size_t n = tour.size();
  if (n < 4) {
    return stats;
  }
  // Work on a copy of the order for cheap indexing.
  std::vector<std::size_t> order = tour.order();
  bool improved = true;
  while (improved && stats.passes < max_passes) {
    improved = false;
    ++stats.passes;
    // Consider reversing order[i..j]; the depot at position 0 stays put.
    for (std::size_t i = 1; i + 1 < n; ++i) {
      const std::size_t prev = order[i - 1];
      for (std::size_t j = i + 1; j < n; ++j) {
        const std::size_t next = order[(j + 1) % n];
        // Edges (prev, order[i]) + (order[j], next) vs reconnected
        // (prev, order[j]) + (order[i], next).
        const double before =
            dist(points, prev, order[i]) + dist(points, order[j], next);
        const double after =
            dist(points, prev, order[j]) + dist(points, order[i], next);
        if (after + 1e-12 < before) {
          std::reverse(order.begin() + static_cast<std::ptrdiff_t>(i),
                       order.begin() + static_cast<std::ptrdiff_t>(j) + 1);
          ++stats.moves;
          improved = true;
        }
      }
    }
  }
  tour = Tour(std::move(order));
  stats.final_length = tour.length(points);
  MDG_ASSERT(stats.final_length <= stats.initial_length + 1e-9,
             "2-opt must never lengthen the tour");
  return stats;
}

ImproveStats two_opt_neighbors(Tour& tour, std::span<const geom::Point> points,
                               std::size_t k, std::size_t max_passes) {
  ImproveStats stats;
  stats.initial_length = tour.length(points);
  stats.final_length = stats.initial_length;
  const std::size_t n = tour.size();
  if (n < 4 || k == 0) {
    return stats;
  }

  // k-nearest neighbour lists (by index into `points`).
  const std::size_t kk = std::min(k, n - 1);
  std::vector<std::vector<std::size_t>> nearest(n);
  {
    std::vector<std::pair<double, std::size_t>> scratch;
    for (std::size_t a = 0; a < n; ++a) {
      scratch.clear();
      for (std::size_t b = 0; b < n; ++b) {
        if (b != a) {
          scratch.push_back({geom::distance_sq(points[a], points[b]), b});
        }
      }
      std::partial_sort(scratch.begin(),
                        scratch.begin() + static_cast<std::ptrdiff_t>(kk),
                        scratch.end());
      nearest[a].reserve(kk);
      for (std::size_t i = 0; i < kk; ++i) {
        nearest[a].push_back(scratch[i].second);
      }
    }
  }

  std::vector<std::size_t> order = tour.order();
  std::vector<std::size_t> pos(n);  // pos[city] = position on the tour
  const auto rebuild_pos = [&] {
    for (std::size_t p = 0; p < n; ++p) {
      pos[order[p]] = p;
    }
  };
  rebuild_pos();

  bool improved = true;
  while (improved && stats.passes < max_passes) {
    improved = false;
    ++stats.passes;
    for (std::size_t i = 1; i + 1 < n; ++i) {
      const std::size_t a = order[i - 1];  // edge (a, b) on the tour
      const std::size_t b = order[i];
      const double d_ab = dist(points, a, b);
      // A 2-opt move removes (a, b) and (c, d) — c at position j >= i,
      // d right after it — and adds (a, c) + (b, d). An improving move
      // needs d_ac < d_ab (first family) or d_bd < d_ab (second
      // family); scanning both sorted neighbour lists with early break
      // covers them.
      bool moved = false;
      const auto try_reversal = [&](std::size_t j) {
        if (j <= i || j >= n) {
          return false;
        }
        const std::size_t c = order[j];
        const std::size_t d_city = order[(j + 1) % n];
        const double before = d_ab + dist(points, c, d_city);
        const double after =
            dist(points, a, c) + dist(points, b, d_city);
        if (after + 1e-12 < before) {
          std::reverse(order.begin() + static_cast<std::ptrdiff_t>(i),
                       order.begin() + static_cast<std::ptrdiff_t>(j) + 1);
          rebuild_pos();
          ++stats.moves;
          improved = true;
          return true;
        }
        return false;
      };
      // Family 1: c drawn from a's neighbour list (new edge a-c).
      for (std::size_t c : nearest[a]) {
        if (dist(points, a, c) >= d_ab) {
          break;
        }
        if (try_reversal(pos[c])) {
          moved = true;
          break;
        }
      }
      if (moved) {
        continue;
      }
      // Family 2: d drawn from b's neighbour list (new edge b-d); the
      // removed edge is (c, d) with c right before d. No early break:
      // the improvement condition compares d_bd against d_cd, which is
      // not monotone along b's neighbour list.
      for (std::size_t d_city : nearest[b]) {
        const std::size_t pd = pos[d_city];
        if (pd == 0) {
          continue;  // d at the depot: its predecessor is order[n-1]
        }
        if (try_reversal(pd - 1)) {
          break;
        }
      }
    }
  }
  tour = Tour(std::move(order));
  stats.final_length = tour.length(points);
  MDG_ASSERT(stats.final_length <= stats.initial_length + 1e-9,
             "neighbour 2-opt must never lengthen the tour");
  return stats;
}

ImproveStats or_opt(Tour& tour, std::span<const geom::Point> points,
                    std::size_t max_passes) {
  ImproveStats stats;
  stats.initial_length = tour.length(points);
  stats.final_length = stats.initial_length;
  const std::size_t n = tour.size();
  if (n < 4) {
    return stats;
  }
  std::vector<std::size_t> order = tour.order();
  bool improved = true;
  while (improved && stats.passes < max_passes) {
    improved = false;
    ++stats.passes;
    for (std::size_t seg_len = 1; seg_len <= 3 && seg_len + 1 < n; ++seg_len) {
      // Segment order[i .. i+seg_len-1]; depot (pos 0) never moves.
      for (std::size_t i = 1; i + seg_len <= n; ++i) {
        const std::size_t before_seg = order[i - 1];
        const std::size_t seg_first = order[i];
        const std::size_t seg_last = order[i + seg_len - 1];
        const std::size_t after_seg = order[(i + seg_len) % n];
        const double removal_gain =
            dist(points, before_seg, seg_first) +
            dist(points, seg_last, after_seg) -
            dist(points, before_seg, after_seg);
        if (removal_gain <= 1e-12) {
          continue;
        }
        // Try inserting between every remaining consecutive pair.
        double best_delta = -1e-12;
        std::size_t best_pos = n;  // position p: insert between p and p+1
        bool best_flip = false;
        for (std::size_t p = 0; p < n; ++p) {
          // Skip positions inside or adjacent to the segment.
          if (p + 1 >= i && p < i + seg_len) {
            continue;
          }
          const std::size_t a = order[p];
          const std::size_t b = order[(p + 1) % n];
          const double base = dist(points, a, b);
          const double fwd = dist(points, a, seg_first) +
                             dist(points, seg_last, b) - base;
          const double rev = dist(points, a, seg_last) +
                             dist(points, seg_first, b) - base;
          const double delta_fwd = fwd - removal_gain;
          const double delta_rev = rev - removal_gain;
          if (delta_fwd < best_delta) {
            best_delta = delta_fwd;
            best_pos = p;
            best_flip = false;
          }
          if (delta_rev < best_delta) {
            best_delta = delta_rev;
            best_pos = p;
            best_flip = true;
          }
        }
        if (best_pos == n) {
          continue;
        }
        // Apply: extract the segment then reinsert.
        std::vector<std::size_t> segment(
            order.begin() + static_cast<std::ptrdiff_t>(i),
            order.begin() + static_cast<std::ptrdiff_t>(i + seg_len));
        if (best_flip) {
          std::reverse(segment.begin(), segment.end());
        }
        order.erase(order.begin() + static_cast<std::ptrdiff_t>(i),
                    order.begin() + static_cast<std::ptrdiff_t>(i + seg_len));
        // Recompute insertion slot after erasure.
        std::size_t insert_after = best_pos;
        if (best_pos >= i + seg_len) {
          insert_after -= seg_len;
        }
        order.insert(order.begin() + static_cast<std::ptrdiff_t>(insert_after) + 1,
                     segment.begin(), segment.end());
        ++stats.moves;
        improved = true;
      }
    }
  }
  // The depot may have drifted if a segment was inserted at the wrap
  // position; restore the convention.
  Tour out(std::move(order));
  out.rotate_to_front(tour.at(0));
  tour = std::move(out);
  stats.final_length = tour.length(points);
  MDG_ASSERT(stats.final_length <= stats.initial_length + 1e-9,
             "Or-opt must never lengthen the tour");
  return stats;
}

ImproveStats improve(Tour& tour, std::span<const geom::Point> points,
                     std::size_t max_rounds) {
  ImproveStats total;
  total.initial_length = tour.length(points);
  total.final_length = total.initial_length;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    const ImproveStats a = two_opt(tour, points);
    const ImproveStats b = or_opt(tour, points);
    total.passes += a.passes + b.passes;
    total.moves += a.moves + b.moves;
    total.final_length = b.final_length;
    if (a.moves + b.moves == 0) {
      break;
    }
  }
  return total;
}

}  // namespace mdg::tsp

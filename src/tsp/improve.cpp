#include "tsp/improve.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "obs/names.h"
#include "obs/span.h"
#include "tsp/neighbor_lists.h"
#include "tsp/partition.h"
#include "util/assert.h"

namespace mdg::tsp {
namespace {

constexpr double kGainEps = 1e-12;

/// Active anytime deadline of the calling thread; time_point{} = none.
/// Set only through ScopedImproveDeadline (src/serve request handling),
/// so the default execution never reads the clock.
thread_local std::chrono::steady_clock::time_point t_improve_deadline{};

/// Engine activations between deadline polls — coarse enough that the
/// clock read is invisible next to the move evaluations it paces.
constexpr std::size_t kDeadlinePollStride = 256;

double dist(std::span<const geom::Point> pts, std::size_t a, std::size_t b) {
  return geom::distance(pts[a], pts[b]);
}

/// Neighbour-list local search over a free cyclic order (the depot is
/// restored by the caller via rotate_to_front).
///
/// Move generation follows the Bentley / Johnson–McGeoch playbook:
///  - a FIFO work queue doubles as the don't-look bits — a city is only
///    re-examined after one of its tour or geometric neighbours changed;
///  - 2-opt scans each active city's sorted neighbour list in both tour
///    directions with an early break once the candidate edge is no
///    shorter than the removed one (every improving 2-opt move has at
///    least one such endpoint, so within the k-neighbour horizon no move
///    is missed);
///  - Or-opt relocates the 1..max_segment cities starting at the active
///    city next to a geometric neighbour, in either orientation;
///  - segment reversals and relocation shifts always touch the shorter
///    side of the tour, so a single move costs O(min(len, n-len))
///    position updates instead of O(n).
class LocalSearchEngine {
 public:
  /// With an empty `seeds` span every city starts active (the classic
  /// full search); otherwise only the listed cities do — the windowed
  /// mode incremental replanning uses, where the splice neighbourhood
  /// is active and the rest of the tour stays dormant unless a move
  /// touches it.
  LocalSearchEngine(std::vector<std::size_t> order,
                    std::span<const geom::Point> pts,
                    const NeighborLists& nbrs, const ImproveOptions& opt,
                    std::span<const std::size_t> seeds = {})
      : pts_(pts),
        nbrs_(nbrs),
        opt_(opt),
        n_(order.size()),
        order_(std::move(order)),
        pos_(n_),
        in_queue_(n_, seeds.empty() ? std::uint8_t{1} : std::uint8_t{0}),
        queue_(n_),
        seg_scratch_() {
    for (std::size_t p = 0; p < n_; ++p) {
      pos_[order_[p]] = p;
      if (seeds.empty()) {
        queue_[p] = order_[p];  // seed in tour order
      }
    }
    if (seeds.empty()) {
      count_ = n_;
    } else {
      for (std::size_t city : seeds) {
        push(city);
      }
    }
    seg_scratch_.reserve(opt_.or_opt_max_segment);
  }

  ImproveStats run() {
    ImproveStats stats;
    const std::size_t cap = opt_.max_passes * n_;
    std::size_t processed = 0;
    while (count_ > 0 && processed < cap) {
      if (processed % kDeadlinePollStride == 0 && improve_deadline_expired()) {
        break;  // anytime exit: the order is valid between activations
      }
      const std::size_t a = pop();
      ++processed;
      bool moved = try_two_opt(a);
      if (moved) {
        ++stats.two_opt_moves;
      } else if (opt_.use_or_opt) {
        moved = try_or_opt(a);
        if (moved) {
          ++stats.or_opt_moves;
        }
      }
      if (moved) {
        ++stats.moves;
        push(a);  // revisit with its new surroundings
      }
    }
    stats.passes = n_ == 0 ? 0 : (processed + n_ - 1) / n_;
    return stats;
  }

  std::vector<std::size_t> take_order() { return std::move(order_); }

 private:
  [[nodiscard]] std::size_t succ(std::size_t p) const {
    return p + 1 == n_ ? 0 : p + 1;
  }
  [[nodiscard]] std::size_t pred(std::size_t p) const {
    return p == 0 ? n_ - 1 : p - 1;
  }
  [[nodiscard]] std::size_t advance(std::size_t p, std::size_t steps) const {
    return (p + steps) % n_;
  }

  void push(std::size_t city) {
    if (!in_queue_[city]) {
      in_queue_[city] = 1;
      queue_[tail_] = city;
      tail_ = succ(tail_);
      ++count_;
    }
  }

  std::size_t pop() {
    const std::size_t city = queue_[head_];
    head_ = succ(head_);
    --count_;
    in_queue_[city] = 0;
    return city;
  }

  /// Reverses the cyclic position range [i..j] (`len` entries), updating
  /// pos_ only for the touched entries.
  void reverse_cyclic(std::size_t i, std::size_t j, std::size_t len) {
    for (std::size_t s = 0; s + s + 1 < len; ++s) {
      std::swap(order_[i], order_[j]);
      pos_[order_[i]] = i;
      pos_[order_[j]] = j;
      i = succ(i);
      j = pred(j);
    }
  }

  /// 2-opt primitive: reverse [i..j] or, when that side is longer, the
  /// complementary range — both yield the same cyclic tour.
  void reverse_shorter(std::size_t i, std::size_t j) {
    const std::size_t len = (j + n_ - i) % n_ + 1;
    if (2 * len > n_) {
      reverse_cyclic(succ(j), pred(i), n_ - len);
    } else {
      reverse_cyclic(i, j, len);
    }
  }

  bool try_two_opt(std::size_t a) {
    const std::size_t pa = pos_[a];
    for (int dir = 0; dir < 2; ++dir) {
      const std::size_t pb = dir == 0 ? succ(pa) : pred(pa);
      const std::size_t b = order_[pb];
      const double d_ab = dist(pts_, a, b);
      const auto cand = nbrs_.of(a);
      const auto cand_d = nbrs_.dist_of(a);
      for (std::size_t t = 0; t < cand.size(); ++t) {
        const std::size_t c = cand[t];
        const double d_ac = cand_d[t];  // == dist(pts_, a, c), precomputed
        if (d_ac >= d_ab) {
          break;  // sorted list: no closer candidate remains
        }
        const std::size_t pc = pos_[c];
        const std::size_t pd = dir == 0 ? succ(pc) : pred(pc);
        const std::size_t d_city = order_[pd];
        if (d_city == a) {
          continue;  // (c, d) is the edge (c, a) itself
        }
        const double gain =
            d_ab + dist(pts_, c, d_city) - d_ac - dist(pts_, b, d_city);
        if (gain > kGainEps) {
          // Replace (a,b) + (c,d) with (a,c) + (b,d): reverse the arc
          // between b and c (forward) or between a and d (backward).
          if (dir == 0) {
            reverse_shorter(pb, pc);
          } else {
            reverse_shorter(pa, pd);
          }
          push(a);
          push(b);
          push(c);
          push(d_city);
          return true;
        }
      }
    }
    return false;
  }

  /// Relocates the segment of `len` cities starting at position `pa` to
  /// sit between position `q` and its successor, optionally reversed.
  /// Shifts whichever block between old and new location is shorter.
  void apply_or_opt(std::size_t pa, std::size_t len, std::size_t q,
                    bool flip) {
    seg_scratch_.clear();
    for (std::size_t t = 0; t < len; ++t) {
      seg_scratch_.push_back(order_[advance(pa, t)]);
    }
    if (flip) {
      std::reverse(seg_scratch_.begin(), seg_scratch_.end());
    }
    const std::size_t pe = advance(pa, len - 1);
    const std::size_t gap_fwd = (q + n_ - pe) % n_;       // succ(pe)..q
    const std::size_t gap_back = n_ - len - gap_fwd;      // succ(q)..pred(pa)
    if (gap_fwd <= gap_back) {
      std::size_t src = succ(pe);
      std::size_t dst = pa;
      for (std::size_t t = 0; t < gap_fwd; ++t) {
        order_[dst] = order_[src];
        pos_[order_[dst]] = dst;
        src = succ(src);
        dst = succ(dst);
      }
      for (std::size_t city : seg_scratch_) {
        order_[dst] = city;
        pos_[city] = dst;
        dst = succ(dst);
      }
    } else {
      std::size_t src = pred(pa);
      std::size_t dst = pe;
      for (std::size_t t = 0; t < gap_back; ++t) {
        order_[dst] = order_[src];
        pos_[order_[dst]] = dst;
        src = pred(src);
        dst = pred(dst);
      }
      for (std::size_t i = seg_scratch_.size(); i-- > 0;) {
        order_[dst] = seg_scratch_[i];
        pos_[seg_scratch_[i]] = dst;
        dst = pred(dst);
      }
    }
  }

  bool try_or_opt(std::size_t a) {
    const std::size_t pa = pos_[a];
    for (std::size_t len = 1;
         len <= opt_.or_opt_max_segment && len + 2 <= n_; ++len) {
      const std::size_t pe = advance(pa, len - 1);
      const std::size_t e = order_[pe];
      const std::size_t pp = pred(pa);
      const std::size_t p = order_[pp];
      const std::size_t pn = succ(pe);
      const std::size_t nx = order_[pn];
      if (pn == pp) {
        break;  // segment plus endpoints is the whole tour
      }
      const double removal_gain =
          dist(pts_, p, a) + dist(pts_, e, nx) - dist(pts_, p, nx);
      if (removal_gain <= kGainEps) {
        continue;
      }
      const auto in_segment = [&](std::size_t qpos) {
        return (qpos + n_ - pa) % n_ < len;
      };
      // Try slots where the new neighbour of the segment head `a` (or,
      // reversed, of the tail `e`) is a geometric neighbour c. Both slot
      // endpoints must lie outside the segment so the removal and
      // insertion deltas stay independent.
      const auto try_slots = [&](std::size_t anchor, std::size_t other,
                                 std::size_t c, double d_c_anchor) -> bool {
        // `anchor` is the segment city placed next to c; `other` is the
        // opposite end of the segment; d_c_anchor their (precomputed)
        // distance.
        const std::size_t qc = pos_[c];
        if (in_segment(qc)) {
          return false;
        }
        {
          // Slot (c, succ(c)): segment enters with `anchor` after c.
          const std::size_t qf = succ(qc);
          if (!in_segment(qf)) {
            const std::size_t f = order_[qf];
            const double delta = d_c_anchor + dist(pts_, other, f) -
                                 dist(pts_, c, f) - removal_gain;
            if (delta < -kGainEps) {
              apply_or_opt(pa, len, qc, /*flip=*/anchor != a);
              push(p);
              push(nx);
              push(a);
              push(e);
              push(c);
              push(f);
              return true;
            }
          }
        }
        {
          // Slot (pred(c), c): segment enters with `anchor` before c.
          const std::size_t qb = pred(qc);
          if (!in_segment(qb)) {
            const std::size_t bb = order_[qb];
            const double delta = dist(pts_, bb, other) + d_c_anchor -
                                 dist(pts_, bb, c) - removal_gain;
            if (delta < -kGainEps) {
              apply_or_opt(pa, len, qb, /*flip=*/anchor == a);
              push(p);
              push(nx);
              push(a);
              push(e);
              push(c);
              push(bb);
              return true;
            }
          }
        }
        return false;
      };
      const auto cand_a = nbrs_.of(a);
      const auto cand_a_d = nbrs_.dist_of(a);
      for (std::size_t t = 0; t < cand_a.size(); ++t) {
        if (cand_a_d[t] >= removal_gain) {
          break;  // the new edge (c, a) alone cancels the gain
        }
        if (try_slots(a, e, cand_a[t], cand_a_d[t])) {
          return true;
        }
      }
      if (len > 1) {
        const auto cand_e = nbrs_.of(e);
        const auto cand_e_d = nbrs_.dist_of(e);
        for (std::size_t t = 0; t < cand_e.size(); ++t) {
          if (cand_e_d[t] >= removal_gain) {
            break;
          }
          if (try_slots(e, a, cand_e[t], cand_e_d[t])) {
            return true;
          }
        }
      }
    }
    return false;
  }

  std::span<const geom::Point> pts_;
  const NeighborLists& nbrs_;
  const ImproveOptions& opt_;
  std::size_t n_;
  std::vector<std::size_t> order_;
  std::vector<std::size_t> pos_;  // pos_[city] = position on the tour
  // FIFO ring of active cities; in_queue_ doubles as the inverse of the
  // classic don't-look bit.
  std::vector<std::uint8_t> in_queue_;
  std::vector<std::size_t> queue_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  std::size_t count_ = 0;
  std::vector<std::size_t> seg_scratch_;
};

/// Runs the engine on `tour` and restores the depot convention.
ImproveStats run_engine(Tour& tour, std::span<const geom::Point> points,
                        const NeighborLists& nbrs,
                        const ImproveOptions& options) {
  const std::size_t front = tour.at(0);
  LocalSearchEngine engine(tour.order(), points, nbrs, options);
  ImproveStats stats = engine.run();
  Tour out(engine.take_order());
  out.rotate_to_front(front);
  tour = std::move(out);
  return stats;
}

}  // namespace

ImproveStats improve_window(Tour& tour, std::span<const geom::Point> points,
                            std::span<const std::size_t> window,
                            const ImproveOptions& options) {
  ImproveStats stats;
  stats.initial_length = tour.length(points);
  stats.final_length = stats.initial_length;
  const std::size_t n = tour.size();
  if (n < 4 || window.empty()) {
    return stats;
  }
  std::vector<std::size_t> members(window.begin(), window.end());
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());
  MDG_REQUIRE(members.back() < n, "window city outside the tour");

  const NeighborLists nbrs(points.first(n), options.neighbors, members);
  const std::size_t front = tour.at(0);
  LocalSearchEngine engine(tour.order(), points, nbrs, options, members);
  const ImproveStats engine_stats = engine.run();
  Tour out(engine.take_order());
  out.rotate_to_front(front);
  tour = std::move(out);
  stats.passes = engine_stats.passes;
  stats.moves = engine_stats.moves;
  stats.two_opt_moves = engine_stats.two_opt_moves;
  stats.or_opt_moves = engine_stats.or_opt_moves;
  stats.final_length = tour.length(points);
  MDG_ASSERT(stats.final_length <= stats.initial_length + 1e-9,
             "windowed improvement must never lengthen the tour");
  return stats;
}

ImproveStats two_opt(Tour& tour, std::span<const geom::Point> points,
                     std::size_t max_passes) {
  ImproveStats stats;
  stats.initial_length = tour.length(points);
  stats.final_length = stats.initial_length;
  const std::size_t n = tour.size();
  if (n < 4) {
    return stats;
  }
  // Work on a copy of the order for cheap indexing.
  std::vector<std::size_t> order = tour.order();
  bool improved = true;
  while (improved && stats.passes < max_passes &&
         !improve_deadline_expired()) {
    improved = false;
    ++stats.passes;
    // Consider reversing order[i..j]; the depot at position 0 stays put.
    for (std::size_t i = 1; i + 1 < n; ++i) {
      const std::size_t prev = order[i - 1];
      for (std::size_t j = i + 1; j < n; ++j) {
        const std::size_t next = order[(j + 1) % n];
        // Edges (prev, order[i]) + (order[j], next) vs reconnected
        // (prev, order[j]) + (order[i], next).
        const double before =
            dist(points, prev, order[i]) + dist(points, order[j], next);
        const double after =
            dist(points, prev, order[j]) + dist(points, order[i], next);
        if (after + 1e-12 < before) {
          std::reverse(order.begin() + static_cast<std::ptrdiff_t>(i),
                       order.begin() + static_cast<std::ptrdiff_t>(j) + 1);
          ++stats.moves;
          ++stats.two_opt_moves;
          improved = true;
        }
      }
    }
  }
  tour = Tour(std::move(order));
  stats.final_length = tour.length(points);
  MDG_ASSERT(stats.final_length <= stats.initial_length + 1e-9,
             "2-opt must never lengthen the tour");
  return stats;
}

ImproveStats two_opt_neighbors(Tour& tour, std::span<const geom::Point> points,
                               std::size_t k, std::size_t max_passes) {
  ImproveStats stats;
  stats.initial_length = tour.length(points);
  stats.final_length = stats.initial_length;
  const std::size_t n = tour.size();
  if (n < 4 || k == 0) {
    return stats;
  }
  ImproveOptions options;
  options.neighbors = k;
  options.max_passes = max_passes;
  options.use_or_opt = false;
  const NeighborLists nbrs(points.first(n), k);
  const ImproveStats engine_stats = run_engine(tour, points, nbrs, options);
  stats.passes = engine_stats.passes;
  stats.moves = engine_stats.moves;
  stats.two_opt_moves = engine_stats.two_opt_moves;
  stats.final_length = tour.length(points);
  MDG_ASSERT(stats.final_length <= stats.initial_length + 1e-9,
             "neighbour 2-opt must never lengthen the tour");
  return stats;
}

ImproveStats or_opt(Tour& tour, std::span<const geom::Point> points,
                    std::size_t max_passes) {
  ImproveStats stats;
  stats.initial_length = tour.length(points);
  stats.final_length = stats.initial_length;
  const std::size_t n = tour.size();
  if (n < 4) {
    return stats;
  }
  std::vector<std::size_t> order = tour.order();
  bool improved = true;
  while (improved && stats.passes < max_passes &&
         !improve_deadline_expired()) {
    improved = false;
    ++stats.passes;
    for (std::size_t seg_len = 1; seg_len <= 3 && seg_len + 1 < n; ++seg_len) {
      // Segment order[i .. i+seg_len-1]; depot (pos 0) never moves.
      for (std::size_t i = 1; i + seg_len <= n; ++i) {
        const std::size_t before_seg = order[i - 1];
        const std::size_t seg_first = order[i];
        const std::size_t seg_last = order[i + seg_len - 1];
        const std::size_t after_seg = order[(i + seg_len) % n];
        const double removal_gain =
            dist(points, before_seg, seg_first) +
            dist(points, seg_last, after_seg) -
            dist(points, before_seg, after_seg);
        if (removal_gain <= 1e-12) {
          continue;
        }
        // Try inserting between every remaining consecutive pair.
        double best_delta = -1e-12;
        std::size_t best_pos = n;  // position p: insert between p and p+1
        bool best_flip = false;
        for (std::size_t p = 0; p < n; ++p) {
          // Skip positions inside or adjacent to the segment.
          if (p + 1 >= i && p < i + seg_len) {
            continue;
          }
          const std::size_t a = order[p];
          const std::size_t b = order[(p + 1) % n];
          const double base = dist(points, a, b);
          const double fwd = dist(points, a, seg_first) +
                             dist(points, seg_last, b) - base;
          const double rev = dist(points, a, seg_last) +
                             dist(points, seg_first, b) - base;
          const double delta_fwd = fwd - removal_gain;
          const double delta_rev = rev - removal_gain;
          if (delta_fwd < best_delta) {
            best_delta = delta_fwd;
            best_pos = p;
            best_flip = false;
          }
          if (delta_rev < best_delta) {
            best_delta = delta_rev;
            best_pos = p;
            best_flip = true;
          }
        }
        if (best_pos == n) {
          continue;
        }
        // Apply: extract the segment then reinsert.
        std::vector<std::size_t> segment(
            order.begin() + static_cast<std::ptrdiff_t>(i),
            order.begin() + static_cast<std::ptrdiff_t>(i + seg_len));
        if (best_flip) {
          std::reverse(segment.begin(), segment.end());
        }
        order.erase(order.begin() + static_cast<std::ptrdiff_t>(i),
                    order.begin() + static_cast<std::ptrdiff_t>(i + seg_len));
        // Recompute insertion slot after erasure.
        std::size_t insert_after = best_pos;
        if (best_pos >= i + seg_len) {
          insert_after -= seg_len;
        }
        order.insert(order.begin() + static_cast<std::ptrdiff_t>(insert_after) + 1,
                     segment.begin(), segment.end());
        ++stats.moves;
        ++stats.or_opt_moves;
        improved = true;
      }
    }
  }
  // The depot may have drifted if a segment was inserted at the wrap
  // position; restore the convention.
  Tour out(std::move(order));
  out.rotate_to_front(tour.at(0));
  tour = std::move(out);
  stats.final_length = tour.length(points);
  MDG_ASSERT(stats.final_length <= stats.initial_length + 1e-9,
             "Or-opt must never lengthen the tour");
  return stats;
}

namespace {

/// Observability tail shared by both improve() regimes: never touches
/// the tour, only reports what happened.
void record_improve_stats(const ImproveStats& total) {
  MDG_OBS_COUNT(obs::metric::kTspTwoOptMoves, total.two_opt_moves);
  MDG_OBS_COUNT(obs::metric::kTspOrOptMoves, total.or_opt_moves);
  MDG_OBS_COUNT(obs::metric::kTspImprovePasses, total.passes);
  MDG_OBS_GAUGE(obs::metric::kTspImproveGainM,
                total.initial_length - total.final_length);
}

}  // namespace

ImproveStats improve(Tour& tour, std::span<const geom::Point> points,
                     const ImproveOptions& options) {
  OBS_SPAN(obs::metric::kTspImprove);
  ImproveStats total;
  total.initial_length = tour.length(points);
  total.final_length = total.initial_length;
  const std::size_t n = tour.size();
  if (n < 4) {
    return total;
  }

  if (n < options.full_scan_below) {
    // Classic composition, kept byte-identical to the original
    // reproduction so small-instance regression anchors stay exact.
    for (std::size_t round = 0; round < 8; ++round) {
      const ImproveStats a = two_opt(tour, points, options.max_passes);
      const ImproveStats b = options.use_or_opt
                                 ? or_opt(tour, points, options.max_passes)
                                 : ImproveStats{};
      total.passes += a.passes + b.passes;
      total.moves += a.moves + b.moves;
      total.two_opt_moves += a.two_opt_moves + b.two_opt_moves;
      total.or_opt_moves += a.or_opt_moves + b.or_opt_moves;
      if (a.moves + b.moves == 0 || improve_deadline_expired()) {
        break;
      }
    }
    total.final_length = tour.length(points);
    record_improve_stats(total);
    return total;
  }

  const NeighborLists nbrs(points.first(n), options.neighbors);
  // Huge tours run the deterministic partitioned parallel engine; it
  // needs at least two shards to mean anything (see partition.h).
  const std::size_t shard_target =
      std::max<std::size_t>(options.partition_shard_target, 8);
  const bool partition = options.partition_above > 0 &&
                         n >= options.partition_above &&
                         n / shard_target >= 2;
  ImproveStats engine_stats;
  if (partition) {
    // Parallel shard phase does the bulk of the moves, then one
    // sequential engine pass polishes globally — shard-boundary-frozen
    // search cannot fix structures spanning shards, and the polish
    // restores the full-neighbourhood local optimum. Both phases are
    // deterministic, so the composition is too.
    engine_stats = partitioned_improve(tour, points, nbrs, options);
    const ImproveStats polish = run_engine(tour, points, nbrs, options);
    engine_stats.passes += polish.passes;
    engine_stats.moves += polish.moves;
    engine_stats.two_opt_moves += polish.two_opt_moves;
    engine_stats.or_opt_moves += polish.or_opt_moves;
  } else {
    engine_stats = run_engine(tour, points, nbrs, options);
  }
  total.passes = engine_stats.passes;
  total.moves = engine_stats.moves;
  total.two_opt_moves = engine_stats.two_opt_moves;
  total.or_opt_moves = engine_stats.or_opt_moves;
  total.shards = engine_stats.shards;
  total.rounds = engine_stats.rounds;
  if (partition) {
    MDG_OBS_GAUGE(obs::metric::kTspImproveShards,
                  static_cast<double>(engine_stats.shards));
    MDG_OBS_GAUGE(obs::metric::kTspImproveRounds,
                  static_cast<double>(engine_stats.rounds));
  }
  total.final_length = tour.length(points);
  MDG_ASSERT(total.final_length <= total.initial_length + 1e-9,
             "improve must never lengthen the tour");
  record_improve_stats(total);
  return total;
}

ScopedImproveDeadline::ScopedImproveDeadline(
    std::chrono::steady_clock::time_point deadline)
    : saved_(t_improve_deadline) {
  t_improve_deadline = deadline;
}

ScopedImproveDeadline::~ScopedImproveDeadline() {
  t_improve_deadline = saved_;
}

bool improve_deadline_active() {
  return t_improve_deadline != std::chrono::steady_clock::time_point{};
}

bool improve_deadline_expired() {
  if (!improve_deadline_active()) {
    return false;
  }
  return std::chrono::steady_clock::now() >= t_improve_deadline;
}

}  // namespace mdg::tsp

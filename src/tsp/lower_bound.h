// Tour-length lower bounds.
//
// The ExactPlanner's branch-and-bound prunes candidate polling-point
// subsets whose *lower bound* on the tour already exceeds the incumbent;
// the benches also report bounds to quantify heuristic gaps on instances
// too large for Held–Karp.
#pragma once

#include <span>

#include "geom/point.h"

namespace mdg::tsp {

/// MST weight over the points — every closed tour is at least this long.
[[nodiscard]] double mst_lower_bound(std::span<const geom::Point> points);

/// Held–Karp 1-tree bound with a short subgradient ascent (iterations
/// capped by `iterations`). Tighter than the MST bound, still cheap.
/// Returns 0 for fewer than 3 points... the bound is trivial there.
[[nodiscard]] double one_tree_lower_bound(std::span<const geom::Point> points,
                                          std::size_t iterations = 30);

}  // namespace mdg::tsp

// Deterministic partitioned parallel local search for huge tours.
//
// The sequential neighbour-list engine (improve.cpp) is a serial
// dependency chain: every move changes the tour the next move sees.
// To use multiple cores without giving up the repo's byte-determinism
// contract, the tour is cut into contiguous shards whose count and
// boundaries are a pure function of n — never of the thread count —
// and each shard runs an open-path 2-opt + Or-opt with its two
// boundary cities frozen. A shard only ever reads and writes its own
// slice (candidate moves are restricted to same-shard neighbours), so
// the shard executions are independent and the merged tour is
// byte-identical whether the shards run on 1 thread or 64. Rounds
// alternate the partition offset by half a shard so edges frozen at a
// seam in one round are interior — and improvable — in the next; the
// search stops after two consecutive rounds without a move or at
// ImproveOptions::partition_max_rounds. See DESIGN.md
// §determinism-under-parallelism.
#pragma once

#include <span>

#include "geom/point.h"
#include "tsp/improve.h"
#include "tsp/neighbor_lists.h"
#include "tsp/tour.h"

namespace mdg::tsp {

/// Runs the partitioned parallel search on `tour` (requires at least
/// two shards, i.e. n >= 2 * options.partition_shard_target; improve()
/// dispatches accordingly). The depot convention is preserved. The
/// returned stats carry the shard count and round count.
ImproveStats partitioned_improve(Tour& tour,
                                 std::span<const geom::Point> points,
                                 const NeighborLists& nbrs,
                                 const ImproveOptions& options);

}  // namespace mdg::tsp

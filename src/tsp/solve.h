// TspSolver facade: one entry point with a quality/effort knob.
#pragma once

#include <span>
#include <string>

#include "geom/point.h"
#include "tsp/tour.h"

namespace mdg::tsp {

enum class TspEffort {
  /// Nearest-neighbour only — the construction the 2008-era papers
  /// report for their harnesses.
  kConstructionOnly,
  /// Nearest-neighbour + 2-opt.
  kTwoOpt,
  /// Best of {NN, greedy-edge, cheapest-insertion} + 2-opt + Or-opt.
  kFull,
  /// Held–Karp when the instance is small enough, otherwise kFull.
  kExactIfSmall,
};

[[nodiscard]] std::string to_string(TspEffort effort);

struct TspResult {
  Tour tour;
  double length = 0.0;
  bool exact = false;  ///< true when Held–Karp proved optimality
};

/// Solves a closed tour over `points` with the depot pinned at index 0.
[[nodiscard]] TspResult solve_tsp(std::span<const geom::Point> points,
                                  TspEffort effort = TspEffort::kFull);

}  // namespace mdg::tsp

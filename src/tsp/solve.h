// TspSolver facade: one entry point with a quality/effort knob.
#pragma once

#include <span>
#include <string>

#include "geom/point.h"
#include "tsp/tour.h"

namespace mdg::tsp {

enum class TspEffort {
  /// Nearest-neighbour only — the construction the 2008-era papers
  /// report for their harnesses.
  kConstructionOnly,
  /// Nearest-neighbour + 2-opt.
  kTwoOpt,
  /// Best of {NN, greedy-edge, cheapest-insertion} + 2-opt + Or-opt.
  kFull,
  /// Held–Karp when the instance is small enough, otherwise kFull.
  kExactIfSmall,
};

[[nodiscard]] std::string to_string(TspEffort effort);

struct TspResult {
  Tour tour;
  double length = 0.0;
  bool exact = false;  ///< true when Held–Karp proved optimality
};

struct TspSolveOptions {
  TspEffort effort = TspEffort::kFull;
  /// Multi-start portfolio width: total construct+improve chains to
  /// evaluate. Chain 0 is exactly the single-start solve for `effort`;
  /// chains 1..K-1 run nearest-neighbour from K evenly spaced start
  /// indices followed by the effort's improvement pass. Chains run in
  /// parallel (up to planning_threads() workers) and the winner is the
  /// deterministic argmin by (length, chain index) — the result is
  /// byte-identical at any thread count. 0 or 1 = single start.
  std::size_t multi_starts = 0;
};

/// Solves a closed tour over `points` with the depot pinned at index 0.
[[nodiscard]] TspResult solve_tsp(std::span<const geom::Point> points,
                                  TspEffort effort = TspEffort::kFull);

/// Options overload: single-start when options.multi_starts <= 1,
/// otherwise the multi-start portfolio described on TspSolveOptions.
[[nodiscard]] TspResult solve_tsp(std::span<const geom::Point> points,
                                  const TspSolveOptions& options);

}  // namespace mdg::tsp

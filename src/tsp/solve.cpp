#include "tsp/solve.h"

#include <limits>
#include <vector>

#include "obs/names.h"
#include "obs/span.h"
#include "tsp/construct.h"
#include "tsp/exact.h"
#include "tsp/improve.h"
#include "util/assert.h"

namespace mdg::tsp {

std::string to_string(TspEffort effort) {
  switch (effort) {
    case TspEffort::kConstructionOnly:
      return "nn";
    case TspEffort::kTwoOpt:
      return "nn+2opt";
    case TspEffort::kFull:
      return "full";
    case TspEffort::kExactIfSmall:
      return "exact-if-small";
  }
  MDG_ASSERT(false, "unknown TspEffort");
  return {};
}

TspResult solve_tsp(std::span<const geom::Point> points, TspEffort effort) {
  OBS_SPAN(obs::metric::kTspSolve);
  TspResult result;
  const std::size_t n = points.size();
  if (n == 0) {
    result.exact = true;  // vacuously optimal
    return result;
  }
  if (n <= 3) {
    result.tour = Tour::identity(n);
    result.length = result.tour.length(points);
    result.exact = true;
    return result;
  }

  if (effort == TspEffort::kExactIfSmall && n <= kMaxExactTsp) {
    result.tour = held_karp(points);
    result.length = result.tour.length(points);
    result.exact = true;
    return result;
  }

  switch (effort) {
    case TspEffort::kConstructionOnly: {
      OBS_SPAN(obs::metric::kTspConstruct);
      result.tour = nearest_neighbor(points);
      break;
    }
    case TspEffort::kTwoOpt: {
      {
        OBS_SPAN(obs::metric::kTspConstruct);
        result.tour = nearest_neighbor(points);
      }
      two_opt(result.tour, points);
      break;
    }
    case TspEffort::kFull:
    case TspEffort::kExactIfSmall: {
      // Improve every construction and keep the best. Below the
      // neighbour-engine threshold this guarantees kFull is never worse
      // than kTwoOpt (improving the NN tour starts with the same 2-opt
      // pass and only goes further); above it the engine's restricted
      // move set makes the relation statistical rather than exact.
      std::vector<Tour> candidates;
      {
        OBS_SPAN(obs::metric::kTspConstruct);
        candidates.push_back(nearest_neighbor(points));
        candidates.push_back(greedy_edge(points));
        candidates.push_back(cheapest_insertion(points));
        candidates.push_back(christofides_greedy(points));
      }
      Tour best;
      double best_len = std::numeric_limits<double>::infinity();
      for (Tour& candidate : candidates) {
        improve(candidate, points);
        const double len = candidate.length(points);
        if (len < best_len) {
          best = std::move(candidate);
          best_len = len;
        }
      }
      result.tour = std::move(best);
      break;
    }
  }
  result.length = result.tour.length(points);
  return result;
}

}  // namespace mdg::tsp

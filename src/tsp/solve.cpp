#include "tsp/solve.h"

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/span.h"
#include "tsp/construct.h"
#include "tsp/exact.h"
#include "tsp/improve.h"
#include "util/assert.h"
#include "util/thread_pool.h"

namespace mdg::tsp {

std::string to_string(TspEffort effort) {
  switch (effort) {
    case TspEffort::kConstructionOnly:
      return "nn";
    case TspEffort::kTwoOpt:
      return "nn+2opt";
    case TspEffort::kFull:
      return "full";
    case TspEffort::kExactIfSmall:
      return "exact-if-small";
  }
  MDG_ASSERT(false, "unknown TspEffort");
  return {};
}

namespace {

/// kFull runs the expensive constructions — cheapest insertion (O(n³))
/// and greedy Christofides (O(n²) MST + odd-pair sort) — only below
/// this stop count; above it their cost dwarfs the whole improvement
/// phase (cheapest insertion alone is ~76 s at 4096 stops) while the
/// engine-improved NN / greedy-edge starts land within a fraction of a
/// percent anyway (ALGORITHMS.md §Dispatch cutoffs). Below the cutoff
/// the portfolio, and therefore every plan byte, is unchanged.
constexpr std::size_t kFullPortfolioBelow = 1024;

/// The single-start solve — chain 0 of every portfolio.
TspResult solve_single(std::span<const geom::Point> points, TspEffort effort) {
  TspResult result;
  const std::size_t n = points.size();
  if (n == 0) {
    result.exact = true;  // vacuously optimal
    return result;
  }
  if (n <= 3) {
    result.tour = Tour::identity(n);
    result.length = result.tour.length(points);
    result.exact = true;
    return result;
  }

  if (effort == TspEffort::kExactIfSmall && n <= kMaxExactTsp) {
    result.tour = held_karp(points);
    result.length = result.tour.length(points);
    result.exact = true;
    return result;
  }

  switch (effort) {
    case TspEffort::kConstructionOnly: {
      OBS_SPAN(obs::metric::kTspConstruct);
      result.tour = nearest_neighbor(points);
      break;
    }
    case TspEffort::kTwoOpt: {
      {
        OBS_SPAN(obs::metric::kTspConstruct);
        result.tour = nearest_neighbor(points);
      }
      two_opt(result.tour, points);
      break;
    }
    case TspEffort::kFull:
    case TspEffort::kExactIfSmall: {
      // Improve every construction and keep the best. Below the
      // neighbour-engine threshold this guarantees kFull is never worse
      // than kTwoOpt (improving the NN tour starts with the same 2-opt
      // pass and only goes further); above it the engine's restricted
      // move set makes the relation statistical rather than exact.
      std::vector<Tour> candidates;
      {
        OBS_SPAN(obs::metric::kTspConstruct);
        candidates.push_back(nearest_neighbor(points));
        candidates.push_back(greedy_edge(points));
        if (n < kFullPortfolioBelow) {
          candidates.push_back(cheapest_insertion(points));
          candidates.push_back(christofides_greedy(points));
        }
      }
      Tour best;
      double best_len = std::numeric_limits<double>::infinity();
      for (Tour& candidate : candidates) {
        improve(candidate, points);
        const double len = candidate.length(points);
        if (len < best_len) {
          best = std::move(candidate);
          best_len = len;
        }
      }
      result.tour = std::move(best);
      break;
    }
  }
  result.length = result.tour.length(points);
  return result;
}

/// One extra portfolio chain: nearest-neighbour from `start`, the
/// effort's improvement pass, depot re-pinned at 0.
TspResult solve_chain(std::span<const geom::Point> points, TspEffort effort,
                      std::size_t start) {
  TspResult result;
  {
    OBS_SPAN(obs::metric::kTspConstruct);
    result.tour = nearest_neighbor(points, start);
  }
  switch (effort) {
    case TspEffort::kConstructionOnly:
      break;
    case TspEffort::kTwoOpt:
      two_opt(result.tour, points);
      break;
    case TspEffort::kFull:
    case TspEffort::kExactIfSmall:
      improve(result.tour, points);
      break;
  }
  result.tour.rotate_to_front(0);
  result.length = result.tour.length(points);
  return result;
}

}  // namespace

TspResult solve_tsp(std::span<const geom::Point> points, TspEffort effort) {
  OBS_SPAN(obs::metric::kTspSolve);
  return solve_single(points, effort);
}

TspResult solve_tsp(std::span<const geom::Point> points,
                    const TspSolveOptions& options) {
  OBS_SPAN(obs::metric::kTspSolve);
  const std::size_t n = points.size();
  if (options.multi_starts <= 1 || n <= 3) {
    return solve_single(points, options.effort);
  }
  const std::size_t chains = options.multi_starts;
  MDG_OBS_COUNT(obs::metric::kTspPortfolioStarts, chains);
  MDG_OBS_GAUGE(obs::metric::kTspPortfolioThreads,
                static_cast<double>(std::min(planning_threads(), chains)));

  // Chains are independent; each writes only its own slot, and the
  // final argmin breaks exact length ties toward the lower chain index
  // — the winner does not depend on scheduling.
  std::vector<TspResult> results(chains);
  parallel_for(chains, [&](std::size_t k) {
    results[k] = k == 0 ? solve_single(points, options.effort)
                        : solve_chain(points, options.effort,
                                      (k * n) / chains);
  });
  if (results[0].exact) {
    return std::move(results[0]);  // provably optimal beats any heuristic
  }
  std::size_t best = 0;
  for (std::size_t k = 1; k < chains; ++k) {
    if (results[k].length < results[best].length) {
      best = k;
    }
  }
  return std::move(results[best]);
}

}  // namespace mdg::tsp

#include "tsp/tour.h"

#include <algorithm>
#include <numeric>

#include "util/assert.h"

namespace mdg::tsp {

Tour::Tour(std::vector<std::size_t> order) : order_(std::move(order)) {
  MDG_REQUIRE(is_permutation(order_), "tour must be a permutation of [0, n)");
}

Tour Tour::identity(std::size_t n) {
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  return Tour(std::move(order));
}

std::size_t Tour::at(std::size_t pos) const {
  MDG_REQUIRE(pos < order_.size(), "tour position out of range");
  return order_[pos];
}

double Tour::length(std::span<const geom::Point> points) const {
  if (order_.size() < 2) {
    return 0.0;
  }
  MDG_REQUIRE(
      *std::max_element(order_.begin(), order_.end()) < points.size(),
      "tour references a point outside the set");
  double total = 0.0;
  for (std::size_t pos = 0; pos < order_.size(); ++pos) {
    total += geom::distance(points[order_[pos]],
                            points[order_[next_pos(pos)]]);
  }
  return total;
}

void Tour::rotate_to_front(std::size_t index) {
  const auto it = std::find(order_.begin(), order_.end(), index);
  MDG_REQUIRE(it != order_.end(), "index not on the tour");
  std::rotate(order_.begin(), it, order_.end());
}

void Tour::reverse_segment(std::size_t i, std::size_t j) {
  MDG_REQUIRE(i <= j && j < order_.size(), "invalid segment");
  std::reverse(order_.begin() + static_cast<std::ptrdiff_t>(i),
               order_.begin() + static_cast<std::ptrdiff_t>(j) + 1);
}

bool Tour::is_permutation(std::span<const std::size_t> order) {
  std::vector<bool> seen(order.size(), false);
  for (std::size_t idx : order) {
    if (idx >= order.size() || seen[idx]) {
      return false;
    }
    seen[idx] = true;
  }
  return true;
}

std::vector<geom::Point> Tour::to_points(
    std::span<const geom::Point> points) const {
  std::vector<geom::Point> result;
  result.reserve(order_.size());
  for (std::size_t idx : order_) {
    MDG_REQUIRE(idx < points.size(), "tour references a missing point");
    result.push_back(points[idx]);
  }
  return result;
}

}  // namespace mdg::tsp

// k-nearest-neighbour lists over a point set, grid-accelerated.
//
// Local search (2-opt, Or-opt) only ever reconnects a city to one of its
// geometric neighbours, so precomputing each city's k nearest neighbours
// turns move enumeration into an O(k) scan of a sorted list. Construction
// uses geom::SpatialGrid expanding-ring radius queries — O(n·k) expected
// instead of the O(n²·log k) brute-force scan — falling back to
// partial_sort for tiny or geometrically degenerate inputs where grid
// setup does not pay off.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geom/point.h"

namespace mdg::tsp {

class NeighborLists {
 public:
  /// Builds the k-nearest lists for `points` (k is clamped to n-1). Each
  /// list is sorted by distance ascending; exact ties break toward the
  /// lower index, so construction is deterministic.
  NeighborLists(std::span<const geom::Point> points, std::size_t k);

  /// Localized variant for incremental replanning: builds lists only for
  /// the cities in `members` (sorted, unique, each < points.size()),
  /// with neighbours drawn from `members` itself (k clamped to
  /// members.size() - 1); every other city gets an empty list. O(|members|²)
  /// — the windows the delta path patches are small, so this beats a
  /// full rebuild by orders of magnitude.
  NeighborLists(std::span<const geom::Point> points, std::size_t k,
                std::span<const std::size_t> members);

  [[nodiscard]] std::size_t size() const { return offsets_.size() - 1; }
  [[nodiscard]] std::size_t k() const { return k_; }

  /// Neighbours of city a, nearest first.
  [[nodiscard]] std::span<const std::size_t> of(std::size_t a) const {
    return {flat_.data() + offsets_[a], offsets_[a + 1] - offsets_[a]};
  }

  /// Distances paired with of(a): dist_of(a)[i] is the Euclidean
  /// distance from a to of(a)[i], bit-identical to geom::distance on the
  /// same pair. Local search reads these instead of recomputing sqrts in
  /// its innermost loops.
  [[nodiscard]] std::span<const double> dist_of(std::size_t a) const {
    return {dists_.data() + offsets_[a], offsets_[a + 1] - offsets_[a]};
  }

 private:
  std::size_t k_ = 0;
  std::vector<std::size_t> offsets_;  // CSR: list of a is [offsets_[a], offsets_[a+1])
  std::vector<std::size_t> flat_;
  std::vector<double> dists_;  // parallel to flat_
};

}  // namespace mdg::tsp

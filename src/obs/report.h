// Structured run reports: one machine-readable JSON document per
// planner/simulator invocation.
//
// A RunReport records what ran (command, planner, RNG seed, git
// describe), on what (instance parameters), how well (tour length,
// polling points, load, optimality) and where the time went (every
// timer/counter/gauge captured from the MetricsRegistry, sorted by
// name). Serialization is deterministic — fixed key order, exact
// float round-trip — so reports diff cleanly and the golden-file test
// flags schema drift. tools/report_diff compares two reports;
// tools/report_schema.json is the validation schema CI enforces.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/instance.h"
#include "core/solution.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace mdg::obs {

struct RunReport {
  static constexpr int kSchemaVersion = 1;

  /// Per-stage wall-time aggregate (one span name).
  struct StageTiming {
    std::string name;
    std::uint64_t count = 0;
    double total_ms = 0.0;
    double min_ms = 0.0;
    double max_ms = 0.0;
    [[nodiscard]] bool operator==(const StageTiming&) const = default;
  };
  struct Counter {
    std::string name;
    std::uint64_t value = 0;
    [[nodiscard]] bool operator==(const Counter&) const = default;
  };
  struct Gauge {
    std::string name;
    double value = 0.0;
    [[nodiscard]] bool operator==(const Gauge&) const = default;
  };

  int schema_version = kSchemaVersion;
  std::string command;       ///< e.g. "plan", "simulate", "bench"
  std::string planner;       ///< algorithm name ("" when not planning)
  std::uint64_t seed = 0;    ///< RNG seed of the invocation (0 = unseeded)
  std::string git_describe;  ///< build provenance (current_git_describe())
  double wall_ms = 0.0;      ///< end-to-end wall time of the invocation

  // Instance parameters.
  std::uint64_t sensors = 0;
  double field_width = 0.0;
  double field_height = 0.0;
  double range = 0.0;
  std::uint64_t components = 0;

  /// Free-form invocation parameters (flag name -> value, insertion
  /// order preserved).
  std::vector<std::pair<std::string, std::string>> params;

  // Solution quality.
  double tour_length = 0.0;
  std::uint64_t polling_points = 0;
  std::uint64_t max_pp_load = 0;
  double mean_upload_distance = 0.0;
  bool provably_optimal = false;

  // Captured metrics, sorted by name.
  std::vector<StageTiming> timings;
  std::vector<Counter> counters;
  std::vector<Gauge> gauges;

  /// Copies instance parameters from a live SHDGP instance.
  void set_instance(const core::ShdgpInstance& instance);
  /// Copies quality stats from a planned solution.
  void set_quality(const core::ShdgpInstance& instance,
                   const core::ShdgpSolution& solution);
  /// Snapshots every metric in `registry` into timings/counters/gauges.
  void capture_metrics(const MetricsRegistry& registry);

  /// Copy with the fields that legitimately differ between otherwise
  /// identical runs zeroed out: build provenance, end-to-end wall time
  /// and per-stage wall times (observation *counts* are kept — they are
  /// deterministic). Canonical reports from two same-seed runs are
  /// byte-identical; the golden-file tests and the CI chaos gate
  /// compare in this form.
  [[nodiscard]] RunReport canonicalized() const;

  [[nodiscard]] JsonValue to_json() const;
  [[nodiscard]] static RunReport from_json(const JsonValue& json);

  /// Pretty JSON text (newline-terminated).
  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] static RunReport parse(std::string_view text);

  /// Writes the report to `path` (pretty JSON, overwrites).
  void save(const std::string& path) const;
  [[nodiscard]] static RunReport load(const std::string& path);
  /// Appends the report as one JSONL line to `path` (creates the file).
  void append_jsonl(const std::string& path) const;

  [[nodiscard]] bool operator==(const RunReport&) const = default;
};

/// `git describe` of the tree this library was built from (baked in at
/// configure time; "unknown" outside a git checkout).
[[nodiscard]] std::string current_git_describe();

}  // namespace mdg::obs

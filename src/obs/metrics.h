// Process-wide metrics registry: counters, gauges and histogram timers.
//
// The observability contract (see docs/METRICS.md and CONTRIBUTING.md):
// instrumentation *observes* and never *decides* — no planner control
// flow, tie-break or RNG draw may depend on a metric, a span, or whether
// observability is enabled at all. Tests assert byte-identical plans
// with observability on and off.
//
// Two switches keep the cost honest:
//   * compile time — configure with -DMDG_OBS=OFF and every MDG_OBS_*
//     macro (and OBS_SPAN) compiles to nothing;
//   * run time — recording is gated on one relaxed atomic flag
//     (default off, or the MDG_OBS=1 environment variable), so an
//     instrumented Release binary pays a single predictable branch per
//     site when observability is idle.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mdg::obs {

/// One metric in a registry snapshot.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kTimer };

  std::string name;
  Kind kind = Kind::kCounter;
  /// Counter value, or number of observations for a timer.
  std::uint64_t count = 0;
  /// Gauge value, or accumulated milliseconds for a timer.
  double value = 0.0;
  /// Timer extremes (milliseconds); zero for counters/gauges.
  double min_ms = 0.0;
  double max_ms = 0.0;
};

[[nodiscard]] const char* to_string(MetricSnapshot::Kind kind);

/// Thread-safe registry of named metrics. One process-wide instance
/// (`MetricsRegistry::instance()`) backs the MDG_OBS_* macros and
/// OBS_SPAN; tests may construct private registries.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry the instrumentation macros write to.
  [[nodiscard]] static MetricsRegistry& instance();

  /// Runtime switch for the process-wide instrumentation. Cheap to
  /// query (one relaxed atomic load); initialised from the MDG_OBS
  /// environment variable (1|true|on), default disabled.
  [[nodiscard]] static bool enabled();
  static void set_enabled(bool on);

  void add_counter(std::string_view name, std::uint64_t delta = 1);
  void set_gauge(std::string_view name, double value);
  /// Records one timer observation (histogram bucket: count/total/min/max).
  void record_timer(std::string_view name, double ms);

  /// Current counter value (0 when never incremented).
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
  /// Current gauge value (0 when never set).
  [[nodiscard]] double gauge(std::string_view name) const;
  /// Accumulated milliseconds of a timer (0 when never recorded).
  [[nodiscard]] double timer_total_ms(std::string_view name) const;
  /// Number of observations of a timer.
  [[nodiscard]] std::uint64_t timer_count(std::string_view name) const;

  /// Every metric, sorted by name — the deterministic order RunReport
  /// serializes.
  [[nodiscard]] std::vector<MetricSnapshot> snapshot() const;

  /// Drops every metric (start of a fresh reported run).
  void reset();

 private:
  struct Cell {
    MetricSnapshot::Kind kind = MetricSnapshot::Kind::kCounter;
    std::uint64_t count = 0;
    double value = 0.0;
    double min_ms = 0.0;
    double max_ms = 0.0;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Cell, std::less<>> cells_;
};

}  // namespace mdg::obs

// Instrumentation macros. All writes go to the process-wide registry
// and are skipped entirely while obs is disabled at runtime; with
// -DMDG_OBS=OFF they vanish at compile time.
#ifndef MDG_OBS_DISABLED
#define MDG_OBS_COUNT(name, delta)                                        \
  do {                                                                    \
    if (::mdg::obs::MetricsRegistry::enabled()) {                         \
      ::mdg::obs::MetricsRegistry::instance().add_counter(                \
          (name), static_cast<std::uint64_t>(delta));                     \
    }                                                                     \
  } while (false)
#define MDG_OBS_GAUGE(name, value)                                        \
  do {                                                                    \
    if (::mdg::obs::MetricsRegistry::enabled()) {                         \
      ::mdg::obs::MetricsRegistry::instance().set_gauge(                  \
          (name), static_cast<double>(value));                            \
    }                                                                     \
  } while (false)
#else
// Compiled out: arguments are void-cast (never evaluated into code that
// matters) so instrumentation inputs don't trip -Wunused warnings.
#define MDG_OBS_COUNT(name, delta) \
  do {                             \
    (void)(name);                  \
    (void)(delta);                 \
  } while (false)
#define MDG_OBS_GAUGE(name, value) \
  do {                             \
    (void)(name);                  \
    (void)(value);                 \
  } while (false)
#endif

#include "obs/report.h"

#include <fstream>
#include <sstream>

#include "util/assert.h"

namespace mdg::obs {

void RunReport::set_instance(const core::ShdgpInstance& instance) {
  const net::SensorNetwork& network = instance.network();
  sensors = network.size();
  field_width = network.field().width();
  field_height = network.field().height();
  range = network.range();
  components = network.components().count;
}

void RunReport::set_quality(const core::ShdgpInstance& instance,
                            const core::ShdgpSolution& solution) {
  planner = solution.planner;
  tour_length = solution.tour_length;
  polling_points = solution.polling_points.size();
  max_pp_load = solution.max_pp_load();
  mean_upload_distance = solution.mean_upload_distance(instance);
  provably_optimal = solution.provably_optimal;
}

void RunReport::capture_metrics(const MetricsRegistry& registry) {
  timings.clear();
  counters.clear();
  gauges.clear();
  for (const MetricSnapshot& snap : registry.snapshot()) {
    switch (snap.kind) {
      case MetricSnapshot::Kind::kTimer:
        timings.push_back({snap.name, snap.count, snap.value, snap.min_ms,
                           snap.max_ms});
        break;
      case MetricSnapshot::Kind::kCounter:
        counters.push_back({snap.name, snap.count});
        break;
      case MetricSnapshot::Kind::kGauge:
        gauges.push_back({snap.name, snap.value});
        break;
    }
  }
}

RunReport RunReport::canonicalized() const {
  RunReport r = *this;
  r.git_describe = "";
  r.wall_ms = 0.0;
  for (StageTiming& t : r.timings) {
    t.total_ms = 0.0;
    t.min_ms = 0.0;
    t.max_ms = 0.0;
  }
  return r;
}

JsonValue RunReport::to_json() const {
  JsonValue root = JsonValue::object();
  root.set("kind", JsonValue::string("mdg-run-report"));
  root.set("schema_version",
           JsonValue::number(static_cast<std::uint64_t>(schema_version)));
  root.set("command", JsonValue::string(command));
  root.set("planner", JsonValue::string(planner));
  root.set("seed", JsonValue::number(seed));
  root.set("git_describe", JsonValue::string(git_describe));
  root.set("wall_ms", JsonValue::number(wall_ms));

  JsonValue inst = JsonValue::object();
  inst.set("sensors", JsonValue::number(sensors));
  inst.set("field_width", JsonValue::number(field_width));
  inst.set("field_height", JsonValue::number(field_height));
  inst.set("range", JsonValue::number(range));
  inst.set("components", JsonValue::number(components));
  root.set("instance", std::move(inst));

  JsonValue prm = JsonValue::object();
  for (const auto& [key, value] : params) {
    prm.set(key, JsonValue::string(value));
  }
  root.set("params", std::move(prm));

  JsonValue quality = JsonValue::object();
  quality.set("tour_length", JsonValue::number(tour_length));
  quality.set("polling_points", JsonValue::number(polling_points));
  quality.set("max_pp_load", JsonValue::number(max_pp_load));
  quality.set("mean_upload_distance",
              JsonValue::number(mean_upload_distance));
  quality.set("provably_optimal", JsonValue::boolean(provably_optimal));
  root.set("quality", std::move(quality));

  JsonValue stage_array = JsonValue::array();
  for (const StageTiming& stage : timings) {
    JsonValue s = JsonValue::object();
    s.set("name", JsonValue::string(stage.name));
    s.set("count", JsonValue::number(stage.count));
    s.set("total_ms", JsonValue::number(stage.total_ms));
    s.set("min_ms", JsonValue::number(stage.min_ms));
    s.set("max_ms", JsonValue::number(stage.max_ms));
    stage_array.push_back(std::move(s));
  }
  root.set("timings", std::move(stage_array));

  JsonValue counter_array = JsonValue::array();
  for (const Counter& counter : counters) {
    JsonValue c = JsonValue::object();
    c.set("name", JsonValue::string(counter.name));
    c.set("value", JsonValue::number(counter.value));
    counter_array.push_back(std::move(c));
  }
  root.set("counters", std::move(counter_array));

  JsonValue gauge_array = JsonValue::array();
  for (const Gauge& gauge : gauges) {
    JsonValue g = JsonValue::object();
    g.set("name", JsonValue::string(gauge.name));
    g.set("value", JsonValue::number(gauge.value));
    gauge_array.push_back(std::move(g));
  }
  root.set("gauges", std::move(gauge_array));
  return root;
}

RunReport RunReport::from_json(const JsonValue& json) {
  MDG_REQUIRE(json.is_object(), "run report must be a JSON object");
  MDG_REQUIRE(json.at("kind").as_string() == "mdg-run-report",
              "not an mdg-run-report document");
  RunReport report;
  report.schema_version =
      static_cast<int>(json.at("schema_version").as_uint());
  report.command = json.at("command").as_string();
  report.planner = json.at("planner").as_string();
  report.seed = json.at("seed").as_uint();
  report.git_describe = json.at("git_describe").as_string();
  report.wall_ms = json.at("wall_ms").as_double();

  const JsonValue& inst = json.at("instance");
  report.sensors = inst.at("sensors").as_uint();
  report.field_width = inst.at("field_width").as_double();
  report.field_height = inst.at("field_height").as_double();
  report.range = inst.at("range").as_double();
  report.components = inst.at("components").as_uint();

  for (const auto& [key, value] : json.at("params").members()) {
    report.params.emplace_back(key, value.as_string());
  }

  const JsonValue& quality = json.at("quality");
  report.tour_length = quality.at("tour_length").as_double();
  report.polling_points = quality.at("polling_points").as_uint();
  report.max_pp_load = quality.at("max_pp_load").as_uint();
  report.mean_upload_distance =
      quality.at("mean_upload_distance").as_double();
  report.provably_optimal = quality.at("provably_optimal").as_bool();

  const JsonValue& stage_array = json.at("timings");
  for (std::size_t i = 0; i < stage_array.size(); ++i) {
    const JsonValue& s = stage_array.at(i);
    report.timings.push_back({s.at("name").as_string(),
                              s.at("count").as_uint(),
                              s.at("total_ms").as_double(),
                              s.at("min_ms").as_double(),
                              s.at("max_ms").as_double()});
  }
  const JsonValue& counter_array = json.at("counters");
  for (std::size_t i = 0; i < counter_array.size(); ++i) {
    const JsonValue& c = counter_array.at(i);
    report.counters.push_back(
        {c.at("name").as_string(), c.at("value").as_uint()});
  }
  const JsonValue& gauge_array = json.at("gauges");
  for (std::size_t i = 0; i < gauge_array.size(); ++i) {
    const JsonValue& g = gauge_array.at(i);
    report.gauges.push_back(
        {g.at("name").as_string(), g.at("value").as_double()});
  }
  return report;
}

std::string RunReport::to_text() const { return to_json().dump(2) + "\n"; }

RunReport RunReport::parse(std::string_view text) {
  return from_json(JsonValue::parse(text));
}

void RunReport::save(const std::string& path) const {
  std::ofstream out(path);
  MDG_REQUIRE(out.good(), "cannot open '" + path + "' for writing");
  out << to_text();
  MDG_REQUIRE(out.good(), "failed writing run report to '" + path + "'");
}

RunReport RunReport::load(const std::string& path) {
  std::ifstream in(path);
  MDG_REQUIRE(in.good(), "cannot open run report '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

void RunReport::append_jsonl(const std::string& path) const {
  std::ofstream out(path, std::ios::app);
  MDG_REQUIRE(out.good(), "cannot open '" + path + "' for appending");
  out << to_json().dump(-1) << "\n";
  MDG_REQUIRE(out.good(), "failed appending run report to '" + path + "'");
}

std::string current_git_describe() {
#ifdef MDG_GIT_DESCRIBE
  return MDG_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

}  // namespace mdg::obs

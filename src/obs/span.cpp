#include "obs/span.h"

#include <vector>

namespace mdg::obs {
namespace {

/// Active span names of this thread, outermost first. string_views are
/// safe: every OBS_SPAN site passes a string literal (or a name that
/// outlives the scope).
thread_local std::vector<std::string_view> t_span_stack;

}  // namespace

SpanScope::SpanScope(std::string_view name) : name_(name) {
  if (!MetricsRegistry::enabled()) {
    return;
  }
  active_ = true;
  t_span_stack.push_back(name_);
  start_ = std::chrono::steady_clock::now();
}

SpanScope::~SpanScope() {
  if (!active_) {
    return;
  }
  const auto end = std::chrono::steady_clock::now();
  const double ms =
      std::chrono::duration<double, std::milli>(end - start_).count();
  t_span_stack.pop_back();
  // Recording may be disabled mid-scope; the registry accepts the
  // observation regardless so a span is never half-counted.
  MetricsRegistry::instance().record_timer(name_, ms);
}

std::size_t span_depth() { return t_span_stack.size(); }

std::string span_path() {
  std::string path;
  for (std::string_view name : t_span_stack) {
    if (!path.empty()) {
      path += '/';
    }
    path += name;
  }
  return path;
}

}  // namespace mdg::obs

#include "obs/names.h"

#include <cstring>

namespace mdg::obs {

std::span<const MetricInfo> known_metrics() {
  // Sorted by name; docs/METRICS.md mirrors this table row for row.
  static constexpr MetricInfo kCatalog[] = {
      {metric::kBaselineCmeRun, "timer", "ms",
       "baselines::CmeScheme::run"},
      {metric::kBaselineMultihopAnalyze, "timer", "ms",
       "baselines::MultihopRouting::analyze"},
      {metric::kCoverAssign, "timer", "ms", "cover::assign_nearest"},
      {metric::kCoverCapacity, "timer", "ms", "cover::enforce_capacity"},
      {metric::kCoverCapacityAdded, "counter", "count",
       "cover::enforce_capacity"},
      {metric::kCoverGreedy, "timer", "ms", "cover::greedy_set_cover"},
      {metric::kCoverGreedyReference, "timer", "ms",
       "cover::greedy_set_cover_reference"},
      {metric::kCoverLazyRefreshes, "counter", "count",
       "cover::greedy_set_cover"},
      {metric::kCoverMatrixBuild, "timer", "ms",
       "cover::CoverageMatrix::CoverageMatrix"},
      {metric::kCoverMatrixThreads, "gauge", "threads",
       "cover::CoverageMatrix::CoverageMatrix"},
      {metric::kCoverSelected, "counter", "count",
       "cover::greedy_set_cover"},
      {metric::kFaultBreakdowns, "counter", "count",
       "sim::MobileCollectionSim::run_round"},
      {metric::kFaultDeliveredFraction, "gauge", "fraction",
       "sim::MobileCollectionSim::run_round"},
      {metric::kFaultLostBurst, "counter", "count",
       "sim::MobileCollectionSim::run_round"},
      {metric::kFaultLostCrash, "counter", "count",
       "sim::MobileCollectionSim::run_round"},
      {metric::kFaultOrphanedSensors, "counter", "count",
       "sim::MobileCollectionSim::run_round"},
      {metric::kFaultPpTimeouts, "counter", "count",
       "sim::MobileCollectionSim::run_round"},
      {metric::kFaultRecoveryLengthM, "gauge", "m",
       "sim::MobileCollectionSim::run_round"},
      {metric::kFaultRepollAttempts, "counter", "count",
       "sim::MobileCollectionSim::run_round"},
      {metric::kFaultSensorCrashes, "counter", "count",
       "sim::MobileCollectionSim::run_round"},
      {metric::kPlanDirectVisit, "timer", "ms",
       "baselines::DirectVisitPlanner::plan"},
      {metric::kPlanElection, "timer", "ms", "dist::ElectionPlanner::plan"},
      {metric::kPlanExact, "timer", "ms", "core::ExactPlanner::plan"},
      {metric::kPlanGreedyCover, "timer", "ms",
       "core::GreedyCoverPlanner::plan"},
      {metric::kPlanMany, "timer", "ms", "core::plan_many"},
      {metric::kPlanManyThreads, "gauge", "threads", "core::plan_many"},
      {metric::kPlanSpanningTour, "timer", "ms",
       "core::SpanningTourPlanner::plan"},
      {metric::kPlanTreeDominator, "timer", "ms",
       "core::TreeDominatorPlanner::plan"},
      {metric::kRefineMoves, "counter", "count",
       "core::refine_polling_positions"},
      {metric::kRefineSlide, "timer", "ms",
       "core::refine_polling_positions"},
      {metric::kRouteCollector, "timer", "ms", "core::route_collector"},
      {metric::kServeCacheEntries, "gauge", "count", "serve::Engine::handle"},
      {metric::kServeDeadlineExpired, "counter", "count",
       "serve::Engine::handle"},
      {metric::kServeErrors, "counter", "count", "serve::Engine::handle"},
      {metric::kServeHitsExact, "counter", "count", "serve::Engine::handle"},
      {metric::kServeHitsWarm, "counter", "count", "serve::Engine::handle"},
      {metric::kServeMisses, "counter", "count", "serve::Engine::handle"},
      {metric::kServeQueueDepth, "gauge", "count", "serve::Server::serve"},
      {metric::kServeRejected, "counter", "count", "serve::Server::serve"},
      {metric::kServeRequest, "timer", "ms", "serve::Engine::handle"},
      {metric::kServeRequests, "counter", "count", "serve::Engine::handle"},
      {metric::kSimFleetRound, "timer", "ms", "sim::FleetSim::run_round"},
      {metric::kSimMobileBufferPeak, "gauge", "packets",
       "sim::MobileCollectionSim::run_round"},
      {metric::kSimMobileDelivered, "counter", "count",
       "sim::MobileCollectionSim::run_round"},
      {metric::kSimMobileDropped, "counter", "count",
       "sim::MobileCollectionSim::run_round"},
      {metric::kSimMobileRound, "timer", "ms",
       "sim::MobileCollectionSim::run_round"},
      {metric::kSimMultihopRound, "timer", "ms",
       "sim::MultihopSim::run_round"},
      {metric::kTspConstruct, "timer", "ms", "tsp::solve_tsp"},
      {metric::kTspImprove, "timer", "ms", "tsp::improve"},
      {metric::kTspImproveGainM, "gauge", "m", "tsp::improve"},
      {metric::kTspImprovePasses, "counter", "count", "tsp::improve"},
      {metric::kTspImproveRounds, "gauge", "count", "tsp::improve"},
      {metric::kTspImproveShards, "gauge", "count", "tsp::improve"},
      {metric::kTspNeighborsBuild, "timer", "ms",
       "tsp::NeighborLists::NeighborLists"},
      {metric::kTspOrOptMoves, "counter", "count", "tsp::improve"},
      {metric::kTspPortfolioStarts, "counter", "count", "tsp::solve_tsp"},
      {metric::kTspPortfolioThreads, "gauge", "threads", "tsp::solve_tsp"},
      {metric::kTspSolve, "timer", "ms", "tsp::solve_tsp"},
      {metric::kTspTwoOptMoves, "counter", "count", "tsp::improve"},
  };
  return kCatalog;
}

bool is_known_metric(const char* name) {
  for (const MetricInfo& info : known_metrics()) {
    if (std::strcmp(info.name, name) == 0) {
      return true;
    }
  }
  return false;
}

}  // namespace mdg::obs

// Minimal JSON document model for run reports and report tooling.
//
// Deliberately small: null/bool/number/string/array/object, a
// recursive-descent parser, and a deterministic writer (objects keep
// insertion order, doubles round-trip via max_digits10, integral values
// print without an exponent) so two reports built from the same run are
// byte-identical. Not a general-purpose JSON library — no \uXXXX
// escapes beyond ASCII control characters, numbers are IEEE doubles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mdg::obs {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null
  static JsonValue boolean(bool value);
  static JsonValue number(double value);
  static JsonValue number(std::uint64_t value);
  static JsonValue string(std::string value);
  static JsonValue array();
  static JsonValue object();

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  /// Typed reads; each throws PreconditionError on a type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::uint64_t as_uint() const;
  [[nodiscard]] const std::string& as_string() const;

  /// Array access.
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const JsonValue& at(std::size_t index) const;
  void push_back(JsonValue value);

  /// Object access (insertion-ordered).
  [[nodiscard]] bool contains(std::string_view key) const;
  /// Throws PreconditionError when the key is missing.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;
  /// Inserts or overwrites.
  void set(std::string key, JsonValue value);
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>&
  members() const;

  /// Structural equality (object member *order* is ignored).
  [[nodiscard]] bool operator==(const JsonValue& other) const;

  /// Serializes with 2-space indentation (indent < 0: single line).
  [[nodiscard]] std::string dump(int indent = 2) const;

  /// Parses a complete JSON document; throws PreconditionError on any
  /// syntax error or trailing garbage.
  [[nodiscard]] static JsonValue parse(std::string_view text);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;

  void write(std::string& out, int indent, int depth) const;
};

}  // namespace mdg::obs

// Lightweight span/trace scopes: OBS_SPAN("cover.greedy") times the
// enclosing block on the monotonic clock and aggregates the wall time
// into the process-wide MetricsRegistry as a timer metric of the same
// name. Spans nest (a per-thread stack tracks the active chain, so
// tools and tests can see depth and the current path), and every name
// must be registered in obs/names.h so docs/METRICS.md stays complete.
//
// Same contract as the metric macros: a span observes, it never
// decides. Disabled (runtime flag off or -DMDG_OBS=OFF) a span is one
// relaxed atomic load / nothing at all.
#pragma once

#include <chrono>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace mdg::obs {

/// RAII timer scope; see OBS_SPAN below. Inactive (and free of clock
/// reads) while MetricsRegistry::enabled() is false at construction.
class SpanScope {
 public:
  explicit SpanScope(std::string_view name);
  ~SpanScope();
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  bool active_ = false;
  std::string_view name_;
  std::chrono::steady_clock::time_point start_;
};

/// Nesting depth of active spans on the calling thread (0 outside any
/// span). Observability tooling/tests only.
[[nodiscard]] std::size_t span_depth();

/// Dotted path of active span names on the calling thread, outermost
/// first ("plan.greedy_cover/cover.greedy"); empty outside any span.
[[nodiscard]] std::string span_path();

}  // namespace mdg::obs

#ifndef MDG_OBS_DISABLED
#define MDG_OBS_CONCAT_INNER(a, b) a##b
#define MDG_OBS_CONCAT(a, b) MDG_OBS_CONCAT_INNER(a, b)
/// Times the enclosing scope into the timer metric `name`.
#define OBS_SPAN(name) \
  const ::mdg::obs::SpanScope MDG_OBS_CONCAT(mdg_obs_span_, __LINE__)(name)
#else
#define OBS_SPAN(name) ((void)0)
#endif

#include "obs/metrics.h"

#include <algorithm>
#include <cstdlib>

namespace mdg::obs {
namespace {

bool env_enabled() {
  const char* raw = std::getenv("MDG_OBS");
  if (raw == nullptr) {
    return false;
  }
  const std::string value(raw);
  return value == "1" || value == "true" || value == "on";
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{env_enabled()};
  return flag;
}

}  // namespace

const char* to_string(MetricSnapshot::Kind kind) {
  switch (kind) {
    case MetricSnapshot::Kind::kCounter:
      return "counter";
    case MetricSnapshot::Kind::kGauge:
      return "gauge";
    case MetricSnapshot::Kind::kTimer:
      return "timer";
  }
  return "unknown";
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

bool MetricsRegistry::enabled() {
  return enabled_flag().load(std::memory_order_relaxed);
}

void MetricsRegistry::set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

void MetricsRegistry::add_counter(std::string_view name,
                                  std::uint64_t delta) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = cells_.find(name);
  if (it == cells_.end()) {
    it = cells_.emplace(std::string(name), Cell{}).first;
    it->second.kind = MetricSnapshot::Kind::kCounter;
  }
  it->second.count += delta;
}

void MetricsRegistry::set_gauge(std::string_view name, double value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = cells_.find(name);
  if (it == cells_.end()) {
    it = cells_.emplace(std::string(name), Cell{}).first;
    it->second.kind = MetricSnapshot::Kind::kGauge;
  }
  it->second.value = value;
}

void MetricsRegistry::record_timer(std::string_view name, double ms) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = cells_.find(name);
  if (it == cells_.end()) {
    it = cells_.emplace(std::string(name), Cell{}).first;
    it->second.kind = MetricSnapshot::Kind::kTimer;
    it->second.min_ms = ms;
    it->second.max_ms = ms;
  }
  Cell& cell = it->second;
  cell.count += 1;
  cell.value += ms;
  cell.min_ms = std::min(cell.min_ms, ms);
  cell.max_ms = std::max(cell.max_ms, ms);
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = cells_.find(name);
  return it == cells_.end() ? 0 : it->second.count;
}

double MetricsRegistry::gauge(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = cells_.find(name);
  return it == cells_.end() ? 0.0 : it->second.value;
}

double MetricsRegistry::timer_total_ms(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = cells_.find(name);
  return it == cells_.end() ? 0.0 : it->second.value;
}

std::uint64_t MetricsRegistry::timer_count(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = cells_.find(name);
  return it == cells_.end() ? 0 : it->second.count;
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSnapshot> out;
  out.reserve(cells_.size());
  for (const auto& [name, cell] : cells_) {  // std::map: sorted by name
    MetricSnapshot snap;
    snap.name = name;
    snap.kind = cell.kind;
    snap.count = cell.count;
    snap.value = cell.value;
    snap.min_ms = cell.min_ms;
    snap.max_ms = cell.max_ms;
    out.push_back(std::move(snap));
  }
  return out;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  cells_.clear();
}

}  // namespace mdg::obs

// The single source of truth for every metric and span name the library
// emits. Instrumentation sites use these constants (never ad-hoc string
// literals), docs/METRICS.md documents exactly this catalog, and two
// tests enforce the sync: the doc table must list every entry here, and
// a fully-instrumented run may only register names from this catalog.
//
// Adding a metric or span? Follow the recipe in CONTRIBUTING.md: add the
// constant + catalog row below, emit it via MDG_OBS_COUNT / MDG_OBS_GAUGE
// / OBS_SPAN, and add the row to docs/METRICS.md.
#pragma once

#include <span>

namespace mdg::obs {

/// Catalog row: the name, what kind of metric carries it, its unit, and
/// the code path that emits it (mirrored in docs/METRICS.md).
struct MetricInfo {
  const char* name;
  const char* kind;  ///< "timer" | "counter" | "gauge"
  const char* unit;  ///< "ms" | "count" | ...
  const char* emitter;
};

/// Every registered metric/span name, sorted by name.
[[nodiscard]] std::span<const MetricInfo> known_metrics();

/// True when `name` appears in the catalog.
[[nodiscard]] bool is_known_metric(const char* name);

namespace metric {

// --- spans (timers, milliseconds) ---------------------------------------
inline constexpr const char* kBaselineCmeRun = "baseline.cme_run";
inline constexpr const char* kBaselineMultihopAnalyze =
    "baseline.multihop_analyze";
inline constexpr const char* kCoverAssign = "cover.assign";
inline constexpr const char* kCoverCapacity = "cover.capacity";
inline constexpr const char* kCoverGreedy = "cover.greedy";
inline constexpr const char* kCoverGreedyReference = "cover.greedy_reference";
inline constexpr const char* kCoverMatrixBuild = "cover.matrix_build";
inline constexpr const char* kDeltaApply = "delta.apply";
inline constexpr const char* kPlanDirectVisit = "plan.direct_visit";
inline constexpr const char* kPlanElection = "plan.election";
inline constexpr const char* kPlanExact = "plan.exact";
inline constexpr const char* kPlanGreedyCover = "plan.greedy_cover";
inline constexpr const char* kPlanMany = "plan.many";
inline constexpr const char* kPlanRelayHop = "plan.relay_hop";
inline constexpr const char* kPlanSpanningTour = "plan.spanning_tour";
inline constexpr const char* kPlanTreeDominator = "plan.tree_dominator";
inline constexpr const char* kRefineSlide = "refine.slide";
inline constexpr const char* kRelayClosureBuild = "relay.closure_build";
inline constexpr const char* kRouteCollector = "route.collector";
inline constexpr const char* kServeRequest = "serve.request";
inline constexpr const char* kSimFleetRound = "sim.fleet_round";
inline constexpr const char* kSimMobileRound = "sim.mobile_round";
inline constexpr const char* kSimMultihopRound = "sim.multihop_round";
inline constexpr const char* kTspConstruct = "tsp.construct";
inline constexpr const char* kTspImprove = "tsp.improve";
inline constexpr const char* kTspNeighborsBuild = "tsp.neighbors_build";
inline constexpr const char* kTspSolve = "tsp.solve";

// --- counters ------------------------------------------------------------
inline constexpr const char* kCoverCapacityAdded = "cover.capacity_added";
inline constexpr const char* kDeltaDamaged = "delta.damaged";
inline constexpr const char* kDeltaFullReplans = "delta.full_replans";
inline constexpr const char* kDeltaOps = "delta.ops";
inline constexpr const char* kFaultBreakdowns = "fault.breakdowns";
inline constexpr const char* kFaultLostBurst = "fault.lost_burst";
inline constexpr const char* kFaultLostCrash = "fault.lost_crash";
inline constexpr const char* kFaultOrphanedSensors = "fault.orphaned_sensors";
inline constexpr const char* kFaultPpTimeouts = "fault.pp_timeouts";
inline constexpr const char* kFaultRepollAttempts = "fault.repoll_attempts";
inline constexpr const char* kFaultSensorCrashes = "fault.sensor_crashes";
inline constexpr const char* kCoverLazyRefreshes = "cover.lazy_refreshes";
inline constexpr const char* kCoverSelected = "cover.selected";
inline constexpr const char* kRefineMoves = "refine.moves";
inline constexpr const char* kRelayRelayedSensors = "relay.relayed_sensors";
inline constexpr const char* kServeBrownoutServed = "serve.brownout_served";
inline constexpr const char* kServeConnTimeout = "serve.conn_timeout";
inline constexpr const char* kServeDeadlineExpired = "serve.deadline_expired";
inline constexpr const char* kServeDeltaBasePlans = "serve.delta_base_plans";
inline constexpr const char* kServeDeltaRepaired = "serve.delta_repaired";
inline constexpr const char* kServeDeltaRequests = "serve.delta_requests";
inline constexpr const char* kServeErrors = "serve.errors";
inline constexpr const char* kServeHitsExact = "serve.hits_exact";
inline constexpr const char* kServeHitsWarm = "serve.hits_warm";
inline constexpr const char* kServeMisses = "serve.misses";
inline constexpr const char* kServeRejected = "serve.rejected";
inline constexpr const char* kServeRequests = "serve.requests";
inline constexpr const char* kServeShed = "serve.shed";
inline constexpr const char* kSimMobileDelivered = "sim.mobile_delivered";
inline constexpr const char* kSimMobileDropped = "sim.mobile_dropped";
inline constexpr const char* kTspImprovePasses = "tsp.improve_passes";
inline constexpr const char* kTspOrOptMoves = "tsp.or_opt_moves";
inline constexpr const char* kTspPortfolioStarts = "tsp.portfolio_starts";
inline constexpr const char* kTspTwoOptMoves = "tsp.two_opt_moves";

// --- gauges --------------------------------------------------------------
inline constexpr const char* kCoverMatrixThreads = "cover.matrix_threads";
inline constexpr const char* kDeltaRepairRatio = "delta.repair_ratio";
inline constexpr const char* kFaultDeliveredFraction =
    "fault.delivered_fraction";
inline constexpr const char* kFaultRecoveryLengthM = "fault.recovery_length_m";
inline constexpr const char* kPlanManyThreads = "plan.many_threads";
inline constexpr const char* kRelayMaxHopsUsed = "relay.max_hops_used";
inline constexpr const char* kServeBrownout = "serve.brownout";
inline constexpr const char* kServeCacheEntries = "serve.cache_entries";
inline constexpr const char* kServeQueueDepth = "serve.queue_depth";
inline constexpr const char* kServeSnapshotDropped = "serve.snapshot_dropped";
inline constexpr const char* kServeSnapshotRestored =
    "serve.snapshot_restored";
inline constexpr const char* kServeSnapshotSaved = "serve.snapshot_saved";
inline constexpr const char* kSimMobileBufferPeak = "sim.mobile_buffer_peak";
inline constexpr const char* kTspImproveGainM = "tsp.improve_gain_m";
inline constexpr const char* kTspImproveRounds = "tsp.improve_rounds";
inline constexpr const char* kTspImproveShards = "tsp.improve_shards";
inline constexpr const char* kTspPortfolioThreads = "tsp.portfolio_threads";

}  // namespace metric

}  // namespace mdg::obs

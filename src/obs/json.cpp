#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/assert.h"

namespace mdg::obs {
namespace {

/// Formats a double exactly (round-trips through strtod); integral
/// values inside the uint64 range print without a fraction.
std::string format_number(double value) {
  MDG_REQUIRE(std::isfinite(value), "JSON numbers must be finite");
  if (value == std::floor(value) && std::fabs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

void write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue run() {
    JsonValue value = parse_value();
    skip_ws();
    MDG_REQUIRE(pos_ == text_.size(), "trailing characters after JSON value");
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    MDG_REQUIRE(pos_ < text_.size(), "unexpected end of JSON input");
    return text_[pos_];
  }

  void expect(char c) {
    MDG_REQUIRE(pos_ < text_.size() && text_[pos_] == c,
                std::string("expected '") + c + "' in JSON input");
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') {
      return parse_object();
    }
    if (c == '[') {
      return parse_array();
    }
    if (c == '"') {
      return JsonValue::string(parse_string());
    }
    if (consume_literal("true")) {
      return JsonValue::boolean(true);
    }
    if (consume_literal("false")) {
      return JsonValue::boolean(false);
    }
    if (consume_literal("null")) {
      return JsonValue{};
    }
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue value = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      value.set(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return value;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue value = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    for (;;) {
      value.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return value;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      MDG_REQUIRE(pos_ < text_.size(), "unterminated JSON string");
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      MDG_REQUIRE(pos_ < text_.size(), "unterminated JSON escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          MDG_REQUIRE(pos_ + 4 <= text_.size(), "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              MDG_REQUIRE(false, "invalid \\u escape digit");
            }
          }
          MDG_REQUIRE(code < 0x80,
                      "non-ASCII \\u escapes are not supported");
          out += static_cast<char>(code);
          break;
        }
        default:
          MDG_REQUIRE(false, "unknown JSON escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    MDG_REQUIRE(pos_ > start, "invalid JSON value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    MDG_REQUIRE(end != nullptr && *end == '\0' && end != token.c_str(),
                "malformed JSON number '" + token + "'");
    return JsonValue::number(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::boolean(bool value) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::number(double value) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::number(std::uint64_t value) {
  return number(static_cast<double>(value));
}

JsonValue JsonValue::string(std::string value) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

bool JsonValue::as_bool() const {
  MDG_REQUIRE(is_bool(), "JSON value is not a bool");
  return bool_;
}

double JsonValue::as_double() const {
  MDG_REQUIRE(is_number(), "JSON value is not a number");
  return number_;
}

std::uint64_t JsonValue::as_uint() const {
  MDG_REQUIRE(is_number() && number_ >= 0.0 &&
                  number_ == std::floor(number_),
              "JSON value is not a non-negative integer");
  return static_cast<std::uint64_t>(number_);
}

const std::string& JsonValue::as_string() const {
  MDG_REQUIRE(is_string(), "JSON value is not a string");
  return string_;
}

std::size_t JsonValue::size() const {
  MDG_REQUIRE(is_array() || is_object(), "JSON value has no size");
  return is_array() ? array_.size() : object_.size();
}

const JsonValue& JsonValue::at(std::size_t index) const {
  MDG_REQUIRE(is_array(), "JSON value is not an array");
  MDG_REQUIRE(index < array_.size(), "JSON array index out of range");
  return array_[index];
}

void JsonValue::push_back(JsonValue value) {
  MDG_REQUIRE(is_array(), "JSON value is not an array");
  array_.push_back(std::move(value));
}

bool JsonValue::contains(std::string_view key) const {
  MDG_REQUIRE(is_object(), "JSON value is not an object");
  for (const auto& [k, v] : object_) {
    if (k == key) {
      return true;
    }
  }
  return false;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  MDG_REQUIRE(is_object(), "JSON value is not an object");
  for (const auto& [k, v] : object_) {
    if (k == key) {
      return v;
    }
  }
  MDG_REQUIRE(false, "missing JSON key '" + std::string(key) + "'");
  return object_.front().second;  // unreachable
}

void JsonValue::set(std::string key, JsonValue value) {
  MDG_REQUIRE(is_object(), "JSON value is not an object");
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  MDG_REQUIRE(is_object(), "JSON value is not an object");
  return object_;
}

bool JsonValue::operator==(const JsonValue& other) const {
  if (type_ != other.type_) {
    return false;
  }
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return number_ == other.number_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return array_ == other.array_;
    case Type::kObject: {
      if (object_.size() != other.object_.size()) {
        return false;
      }
      for (const auto& [k, v] : object_) {
        if (!other.contains(k) || !(other.at(k) == v)) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

void JsonValue::write(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const std::string pad =
      pretty ? std::string(static_cast<std::size_t>(indent * (depth + 1)),
                           ' ')
             : std::string();
  const std::string close_pad =
      pretty ? std::string(static_cast<std::size_t>(indent * depth), ' ')
             : std::string();
  switch (type_) {
    case Type::kNull:
      out += "null";
      return;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      out += format_number(number_);
      return;
    case Type::kString:
      write_escaped(out, string_);
      return;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) {
          out += ',';
        }
        if (pretty) {
          out += '\n';
          out += pad;
        }
        array_[i].write(out, indent, depth + 1);
      }
      if (pretty) {
        out += '\n';
        out += close_pad;
      }
      out += ']';
      return;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) {
          out += ',';
        }
        if (pretty) {
          out += '\n';
          out += pad;
        }
        write_escaped(out, object_[i].first);
        out += pretty ? ": " : ":";
        object_[i].second.write(out, indent, depth + 1);
      }
      if (pretty) {
        out += '\n';
        out += close_pad;
      }
      out += '}';
      return;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

JsonValue JsonValue::parse(std::string_view text) {
  Parser parser(text);
  return parser.run();
}

}  // namespace mdg::obs

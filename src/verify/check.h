// Independent solution invariant checker.
//
// ShdgpSolution::validate is the library's *internal* contract check: it
// asserts (MDG_ASSERT) and shares helper code with the planners it
// guards. This module is the harness's second opinion: it re-derives
// every claimed property of a solution from the instance alone — no
// shared helpers beyond raw geometry — and reports violations through
// the core::Status taxonomy so the differential suite, tools/repro and
// the fuzz drivers can print diagnostics instead of aborting.
//
// Checked invariants (docs/TESTING.md §invariants):
//   * parallel arrays are parallel; candidate ids resolve and positions
//     match the instance's CoverageMatrix (freeform entries excepted);
//   * every sensor is assigned, and its polling point is within the
//     transmission range (single-hop guarantee);
//   * the tour is a closed permutation over {sink} ∪ polling points with
//     the sink pinned at position 0;
//   * the recorded tour length equals the recomputed length within an
//     ulp-scaled tolerance;
//   * recovery plans serve every requested sensor exactly once (or list
//     it as uncovered), stay within range at every stop, and their
//     recorded length ends the sub-tour at the sink.
#pragma once

#include <vector>

#include "core/instance.h"
#include "core/replan.h"
#include "core/solution.h"
#include "core/status.h"

namespace mdg::verify {

struct CheckOptions {
  /// When false (default), keep checking after the first violation and
  /// report every problem in one Status message (one line per problem).
  bool fail_fast = false;
};

/// Absolute tolerance for comparing a recorded against a recomputed tour
/// length: scaled by the magnitude of the length and the number of
/// summed edges (each edge contributes O(eps) rounding).
[[nodiscard]] double length_tolerance(double length, std::size_t edges);

/// Re-verifies every SHDGP invariant of `solution` against `instance`.
/// Returns OK or kFailedPrecondition with a description of each
/// violation.
[[nodiscard]] core::Status check_solution(const core::ShdgpInstance& instance,
                                          const core::ShdgpSolution& solution,
                                          const CheckOptions& options = {});

/// Re-verifies a breakdown recovery plan for the `requested` unserved
/// sensors (any order, duplicates ignored): stops resolve to candidates,
/// every requested sensor is served within range exactly once or listed
/// as uncovered, and the recorded length is exactly the breakdown ->
/// stops -> sink polyline — i.e. the recovery sub-tour ends at the sink.
[[nodiscard]] core::Status check_recovery(
    const core::ShdgpInstance& instance, geom::Point breakdown_position,
    const core::RecoveryPlan& plan,
    const std::vector<std::size_t>& requested,
    const CheckOptions& options = {});

}  // namespace mdg::verify

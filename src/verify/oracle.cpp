#include "verify/oracle.h"

#include <bit>
#include <cstdint>
#include <limits>
#include <sstream>
#include <utility>

#include "baselines/direct_visit.h"
#include "core/exact_planner.h"
#include "core/greedy_cover_planner.h"
#include "core/relay_hop_planner.h"
#include "core/spanning_tour_planner.h"
#include "core/tree_dominator_planner.h"
#include "cover/coverage.h"
#include "dist/election_planner.h"
#include "tsp/exact.h"
#include "tsp/lower_bound.h"
#include "verify/canonical.h"
#include "verify/check.h"

namespace mdg::verify {
namespace {

/// Brute-force d-hop optimum: enumerate candidate subsets, keep the
/// covers that are *minimal* (dropping any element breaks coverage) and
/// take the shortest Held–Karp tour over sink + subset. Euclidean tour
/// length is monotone under stop removal, so the optimum is attained at
/// a minimal cover — enumerating only those keeps the Held–Karp calls
/// rare and small (a minimal cover has at most one stop per sensor).
struct RelayExact {
  bool available = false;
  double length = 0.0;
};

RelayExact exact_relay_optimum(const core::ShdgpInstance& instance,
                               std::size_t relay_hops) {
  constexpr std::size_t kMaxBruteCandidates = 16;
  RelayExact result;
  const std::size_t n = instance.sensor_count();
  if (n == 0) {
    result.available = true;  // the empty tour (sink only) has length 0
    return result;
  }
  if (n > 31) {
    return result;
  }
  const cover::CoverageMatrix expanded = cover::CoverageMatrix::
      expand_relay_hops(instance.coverage(), instance.network(), relay_hops);
  const std::size_t m = expanded.candidate_count();
  if (m == 0 || m > kMaxBruteCandidates) {
    return result;
  }
  std::vector<std::uint32_t> masks(m, 0);
  for (std::size_t c = 0; c < m; ++c) {
    for (std::size_t s : expanded.covered_by(c)) {
      masks[c] |= std::uint32_t{1} << s;
    }
  }
  const std::uint32_t full = (std::uint32_t{1} << n) - 1;
  double best = std::numeric_limits<double>::infinity();
  for (std::uint32_t sub = 1; sub < (std::uint32_t{1} << m); ++sub) {
    std::uint32_t covered = 0;
    for (std::size_t c = 0; c < m; ++c) {
      if ((sub >> c) & 1u) {
        covered |= masks[c];
      }
    }
    if (covered != full) {
      continue;
    }
    bool minimal = true;
    for (std::size_t c = 0; c < m && minimal; ++c) {
      if (((sub >> c) & 1u) == 0) {
        continue;
      }
      std::uint32_t rest = 0;
      for (std::size_t o = 0; o < m; ++o) {
        if (o != c && ((sub >> o) & 1u)) {
          rest |= masks[o];
        }
      }
      minimal = rest != full;
    }
    if (!minimal) {
      continue;
    }
    std::vector<geom::Point> pts;
    pts.reserve(static_cast<std::size_t>(std::popcount(sub)) + 1);
    pts.push_back(instance.sink());
    for (std::size_t c = 0; c < m; ++c) {
      if ((sub >> c) & 1u) {
        pts.push_back(expanded.candidate(c));
      }
    }
    if (pts.size() > tsp::kMaxExactTsp) {
      continue;  // a minimal cover this large is out of exact reach
    }
    const double length = tsp::held_karp_length(pts);
    if (length < best) {
      best = length;
    }
  }
  if (best < std::numeric_limits<double>::infinity()) {
    result.available = true;
    result.length = best;
  }
  return result;
}

}  // namespace

core::Status OracleReport::status() const {
  for (const PlannerVerdict& verdict : verdicts) {
    if (!verdict.status.is_ok()) {
      return verdict.status.with_context(verdict.planner);
    }
  }
  return core::Status::ok();
}

std::vector<std::unique_ptr<core::Planner>> heuristic_planners() {
  std::vector<std::unique_ptr<core::Planner>> planners;
  planners.push_back(std::make_unique<core::GreedyCoverPlanner>());
  planners.push_back(std::make_unique<core::SpanningTourPlanner>());
  planners.push_back(std::make_unique<core::TreeDominatorPlanner>());
  planners.push_back(std::make_unique<baselines::DirectVisitPlanner>());
  planners.push_back(std::make_unique<dist::ElectionPlanner>());
  return planners;
}

core::Status check_tour_lower_bound(const core::ShdgpInstance& instance,
                                    const core::ShdgpSolution& solution,
                                    double relative_tolerance) {
  std::vector<geom::Point> stops;
  stops.reserve(solution.polling_points.size() + 1);
  stops.push_back(instance.sink());
  stops.insert(stops.end(), solution.polling_points.begin(),
               solution.polling_points.end());
  const double slack = relative_tolerance * (1.0 + solution.tour_length);
  const double mst = tsp::mst_lower_bound(stops);
  if (solution.tour_length < mst - slack) {
    std::ostringstream out;
    out.precision(17);
    out << "tour length " << solution.tour_length
        << " is below the MST lower bound " << mst << " over its own stops";
    return core::Status::failed_precondition(out.str());
  }
  const double one_tree = tsp::one_tree_lower_bound(stops);
  if (solution.tour_length < one_tree - slack) {
    std::ostringstream out;
    out.precision(17);
    out << "tour length " << solution.tour_length
        << " is below the 1-tree lower bound " << one_tree
        << " over its own stops";
    return core::Status::failed_precondition(out.str());
  }
  return core::Status::ok();
}

core::Status check_not_better_than_exact(const core::ShdgpSolution& solution,
                                         double exact_length,
                                         double relative_tolerance) {
  const double slack = relative_tolerance * (1.0 + exact_length);
  if (solution.tour_length < exact_length - slack) {
    std::ostringstream out;
    out.precision(17);
    out << "heuristic tour " << solution.tour_length
        << " beats the proven exact optimum " << exact_length
        << " — impossible, one of the two is buggy";
    return core::Status::failed_precondition(out.str());
  }
  return core::Status::ok();
}

OracleReport run_differential(const core::ShdgpInstance& instance,
                              const OracleOptions& options) {
  OracleReport report;

  // Exact oracle, when the instance is small enough and the search
  // completed (provably_optimal): the reference everything else must
  // dominate. The exact output is itself a solution, so it goes through
  // the same invariant and lower-bound checks.
  if (instance.sensor_count() <= options.exact_sensor_limit) {
    const core::ShdgpSolution exact = core::ExactPlanner().plan(instance);
    PlannerVerdict verdict;
    verdict.planner = exact.planner;
    verdict.tour_length = exact.tour_length;
    verdict.status = check_solution(instance, exact);
    if (verdict.status.is_ok()) {
      verdict.status =
          check_tour_lower_bound(instance, exact, options.relative_tolerance);
    }
    if (exact.provably_optimal) {
      report.exact_available = true;
      report.exact_length = exact.tour_length;
    }
    report.verdicts.push_back(std::move(verdict));
  }

  for (const std::unique_ptr<core::Planner>& planner : heuristic_planners()) {
    PlannerVerdict verdict;
    verdict.planner = planner->name();
    const core::ShdgpSolution solution = planner->plan(instance);
    verdict.tour_length = solution.tour_length;
    verdict.status = check_solution(instance, solution);
    if (verdict.status.is_ok()) {
      verdict.status = check_tour_lower_bound(instance, solution,
                                              options.relative_tolerance);
    }
    if (verdict.status.is_ok() && report.exact_available) {
      verdict.status = check_not_better_than_exact(
          solution, report.exact_length, options.relative_tolerance);
    }
    report.verdicts.push_back(std::move(verdict));
  }

  // Bounded-relay section: one verdict per requested depth.
  for (std::size_t d : options.relay_hops_depths) {
    core::RelayHopPlannerOptions relay_options;
    relay_options.relay_hops = d;
    const core::RelayHopPlanner planner(relay_options);
    PlannerVerdict verdict;
    std::ostringstream name;
    name << planner.name() << "[d=" << d << "]";
    verdict.planner = name.str();
    const core::ShdgpSolution solution = planner.plan(instance);
    verdict.tour_length = solution.tour_length;
    verdict.status = check_solution(instance, solution);
    if (verdict.status.is_ok()) {
      verdict.status = check_tour_lower_bound(instance, solution,
                                              options.relative_tolerance);
    }
    if (verdict.status.is_ok() &&
        instance.sensor_count() <= options.exact_sensor_limit) {
      const RelayExact exact = exact_relay_optimum(instance, d);
      if (exact.available) {
        verdict.status = check_not_better_than_exact(
            solution, exact.length, options.relative_tolerance);
      }
    }
    if (verdict.status.is_ok() && d == 1) {
      // The byte-identity anchor: at d = 1 the d-hop relation *is* the
      // single-hop relation, so the relay planner's canonical plan must
      // match GreedyCoverPlanner's byte for byte.
      const core::ShdgpSolution greedy =
          core::GreedyCoverPlanner().plan(instance);
      if (canonical_plan_bytes(instance, solution) !=
          canonical_plan_bytes(instance, greedy)) {
        verdict.status = core::Status::failed_precondition(
            "relay-hop d=1 canonical plan bytes differ from greedy-cover's "
            "— the byte-identity anchor is broken");
      }
    }
    report.verdicts.push_back(std::move(verdict));
  }
  return report;
}

}  // namespace mdg::verify

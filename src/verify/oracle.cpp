#include "verify/oracle.h"

#include <sstream>
#include <utility>

#include "baselines/direct_visit.h"
#include "core/exact_planner.h"
#include "core/greedy_cover_planner.h"
#include "core/spanning_tour_planner.h"
#include "core/tree_dominator_planner.h"
#include "dist/election_planner.h"
#include "tsp/lower_bound.h"
#include "verify/check.h"

namespace mdg::verify {

core::Status OracleReport::status() const {
  for (const PlannerVerdict& verdict : verdicts) {
    if (!verdict.status.is_ok()) {
      return verdict.status.with_context(verdict.planner);
    }
  }
  return core::Status::ok();
}

std::vector<std::unique_ptr<core::Planner>> heuristic_planners() {
  std::vector<std::unique_ptr<core::Planner>> planners;
  planners.push_back(std::make_unique<core::GreedyCoverPlanner>());
  planners.push_back(std::make_unique<core::SpanningTourPlanner>());
  planners.push_back(std::make_unique<core::TreeDominatorPlanner>());
  planners.push_back(std::make_unique<baselines::DirectVisitPlanner>());
  planners.push_back(std::make_unique<dist::ElectionPlanner>());
  return planners;
}

core::Status check_tour_lower_bound(const core::ShdgpInstance& instance,
                                    const core::ShdgpSolution& solution,
                                    double relative_tolerance) {
  std::vector<geom::Point> stops;
  stops.reserve(solution.polling_points.size() + 1);
  stops.push_back(instance.sink());
  stops.insert(stops.end(), solution.polling_points.begin(),
               solution.polling_points.end());
  const double slack = relative_tolerance * (1.0 + solution.tour_length);
  const double mst = tsp::mst_lower_bound(stops);
  if (solution.tour_length < mst - slack) {
    std::ostringstream out;
    out.precision(17);
    out << "tour length " << solution.tour_length
        << " is below the MST lower bound " << mst << " over its own stops";
    return core::Status::failed_precondition(out.str());
  }
  const double one_tree = tsp::one_tree_lower_bound(stops);
  if (solution.tour_length < one_tree - slack) {
    std::ostringstream out;
    out.precision(17);
    out << "tour length " << solution.tour_length
        << " is below the 1-tree lower bound " << one_tree
        << " over its own stops";
    return core::Status::failed_precondition(out.str());
  }
  return core::Status::ok();
}

core::Status check_not_better_than_exact(const core::ShdgpSolution& solution,
                                         double exact_length,
                                         double relative_tolerance) {
  const double slack = relative_tolerance * (1.0 + exact_length);
  if (solution.tour_length < exact_length - slack) {
    std::ostringstream out;
    out.precision(17);
    out << "heuristic tour " << solution.tour_length
        << " beats the proven exact optimum " << exact_length
        << " — impossible, one of the two is buggy";
    return core::Status::failed_precondition(out.str());
  }
  return core::Status::ok();
}

OracleReport run_differential(const core::ShdgpInstance& instance,
                              const OracleOptions& options) {
  OracleReport report;

  // Exact oracle, when the instance is small enough and the search
  // completed (provably_optimal): the reference everything else must
  // dominate. The exact output is itself a solution, so it goes through
  // the same invariant and lower-bound checks.
  if (instance.sensor_count() <= options.exact_sensor_limit) {
    const core::ShdgpSolution exact = core::ExactPlanner().plan(instance);
    PlannerVerdict verdict;
    verdict.planner = exact.planner;
    verdict.tour_length = exact.tour_length;
    verdict.status = check_solution(instance, exact);
    if (verdict.status.is_ok()) {
      verdict.status =
          check_tour_lower_bound(instance, exact, options.relative_tolerance);
    }
    if (exact.provably_optimal) {
      report.exact_available = true;
      report.exact_length = exact.tour_length;
    }
    report.verdicts.push_back(std::move(verdict));
  }

  for (const std::unique_ptr<core::Planner>& planner : heuristic_planners()) {
    PlannerVerdict verdict;
    verdict.planner = planner->name();
    const core::ShdgpSolution solution = planner->plan(instance);
    verdict.tour_length = solution.tour_length;
    verdict.status = check_solution(instance, solution);
    if (verdict.status.is_ok()) {
      verdict.status = check_tour_lower_bound(instance, solution,
                                              options.relative_tolerance);
    }
    if (verdict.status.is_ok() && report.exact_available) {
      verdict.status = check_not_better_than_exact(
          solution, report.exact_length, options.relative_tolerance);
    }
    report.verdicts.push_back(std::move(verdict));
  }
  return report;
}

}  // namespace mdg::verify

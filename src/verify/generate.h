// Deterministic SHDGP instance generators for the verification harness.
//
// Twelve seed-addressed families: five "standard" deployments (the
// property-sweep grid), four adversarial degenerates that target the
// geometric edge cases a planner bug hides in — exactly collinear
// sensors, coincident sensors (and therefore coincident candidate
// polling positions), sensor pairs at the exact transmission-range
// boundary, and the n = 0 / n = 1 corner — plus three relay-hop
// stressors whose hop structure makes d-hop coverage interesting: a
// serpentine chain with links exactly at the range boundary, hub-spoke
// stars whose ring-j sensors are exactly j hops from the hub, and
// disconnected islands the d-hop closure must never bridge. Every
// family draws from its own Rng::fork stream of the caller's seed, so
// generate_network(family, seed) is a pure function: same arguments,
// byte-identical network, regardless of which other families have been
// generated.
//
// tools/repro replays any (family, seed) pair through the full
// plan -> verify pipeline; test failure messages print that pair.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "net/sensor_network.h"

namespace mdg::verify {

enum class GeneratorFamily {
  // --- standard deployments (the property-sweep families) -------------
  kUniform,    ///< i.i.d. uniform over the field
  kClusters,   ///< Gaussian blobs (hot spots)
  kGrid,       ///< jittered regular grid
  kCorridor,   ///< thin horizontal strip through the sink (road network)
  kRing,       ///< annulus around the sink (perimeter deployment)
  // --- adversarial degenerates ----------------------------------------
  kCollinear,   ///< every sensor (and the sink) exactly on one line
  kCoincident,  ///< few distinct sites, many exactly coincident sensors
  kBoundary,    ///< sensor pairs at the exact range boundary
  kTiny,        ///< n = seed % 2 sensors (the 0- and 1-sensor corners)
  // --- relay-hop stressors (bounded-relay planning) --------------------
  kChain,    ///< serpentine chain, links exactly one range apart
  kStar,     ///< hub-spoke stars, ring j exactly j hops from the hub
  kIslands,  ///< tight single-hop cliques far apart (disconnected graph)
};

/// Shape knobs shared by every family (kTiny ignores `sensors`).
struct GeneratorOptions {
  std::size_t sensors = 96;
  double side = 200.0;  ///< field is [0, side] x [0, side], sink at centre
  double range = 25.0;  ///< transmission range Rs
};

/// All twelve families, standard-first (stable iteration order).
[[nodiscard]] std::span<const GeneratorFamily> all_families();
/// The five standard deployment families.
[[nodiscard]] std::span<const GeneratorFamily> standard_families();
/// The four adversarial degenerate families.
[[nodiscard]] std::span<const GeneratorFamily> degenerate_families();
/// The three relay-hop stressor families.
[[nodiscard]] std::span<const GeneratorFamily> relay_families();
/// The original nine families (standard + degenerate) — the d=1
/// byte-identity gate and the kernel digest iterate exactly these, so
/// their outputs stay pinned as new families are appended.
[[nodiscard]] std::span<const GeneratorFamily> legacy_families();

[[nodiscard]] const char* to_string(GeneratorFamily family);
/// Inverse of to_string ("uniform", "clusters", ...); nullopt on unknown.
[[nodiscard]] std::optional<GeneratorFamily> family_from_string(
    std::string_view name);

/// Generates the (family, seed) network. Deterministic: every family
/// forks its own stream of `seed`, so outputs never depend on call order.
[[nodiscard]] net::SensorNetwork generate_network(
    GeneratorFamily family, std::uint64_t seed,
    const GeneratorOptions& options = {});

}  // namespace mdg::verify

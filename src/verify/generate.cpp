#include "verify/generate.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "net/deployment.h"
#include "util/assert.h"
#include "util/rng.h"

namespace mdg::verify {
namespace {

constexpr std::array<GeneratorFamily, 12> kAllFamilies = {
    GeneratorFamily::kUniform,   GeneratorFamily::kClusters,
    GeneratorFamily::kGrid,      GeneratorFamily::kCorridor,
    GeneratorFamily::kRing,      GeneratorFamily::kCollinear,
    GeneratorFamily::kCoincident, GeneratorFamily::kBoundary,
    GeneratorFamily::kTiny,      GeneratorFamily::kChain,
    GeneratorFamily::kStar,      GeneratorFamily::kIslands,
};

std::vector<geom::Point> corridor_points(std::size_t count,
                                         const geom::Aabb& field, double range,
                                         Rng& rng) {
  // A thin horizontal strip through the sink: tours degenerate toward a
  // back-and-forth line, which stresses 2-opt orientation handling.
  const double cy = field.center().y;
  const double half = std::max(range * 0.25, field.height() * 0.02);
  std::vector<geom::Point> pts;
  pts.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    pts.push_back(field.clamp(
        {rng.uniform(field.lo.x, field.hi.x), rng.uniform(cy - half, cy + half)}));
  }
  return pts;
}

std::vector<geom::Point> ring_points(std::size_t count, const geom::Aabb& field,
                                     Rng& rng) {
  // Annulus around the sink: the sink sits inside an empty disk, so
  // every tour must commit to a direction around the hole.
  const geom::Point c = field.center();
  const double r_lo = 0.35 * std::min(field.width(), field.height());
  const double r_hi = 0.45 * std::min(field.width(), field.height());
  std::vector<geom::Point> pts;
  pts.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double r = rng.uniform(r_lo, r_hi);
    const double theta = rng.uniform(0.0, 2.0 * 3.14159265358979323846);
    pts.push_back(field.clamp({c.x + r * std::cos(theta),
                               c.y + r * std::sin(theta)}));
  }
  return pts;
}

std::vector<geom::Point> collinear_points(std::size_t count,
                                          const geom::Aabb& field, Rng& rng) {
  // All sensors share the sink's exact y coordinate: zero-area triangles
  // everywhere (cross products vanish, MST/tour ties abound).
  const double y = field.center().y;
  std::vector<geom::Point> pts;
  pts.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    pts.push_back({rng.uniform(field.lo.x, field.hi.x), y});
  }
  return pts;
}

std::vector<geom::Point> coincident_points(std::size_t count,
                                           const geom::Aabb& field, Rng& rng) {
  // Many sensors stacked on few distinct sites: coincident sensors mean
  // coincident candidate polling positions, zero-length tour edges and
  // equal-gain set-cover ties.
  const std::size_t sites = std::max<std::size_t>(1, count / 8);
  std::vector<geom::Point> anchors = net::deploy_uniform(sites, field, rng);
  std::vector<geom::Point> pts;
  pts.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    pts.push_back(anchors[rng.index(anchors.size())]);
  }
  return pts;
}

std::vector<geom::Point> boundary_points(std::size_t count,
                                         const geom::Aabb& field, double range,
                                         Rng& rng) {
  // Anchor/partner pairs exactly `range` apart along an axis: the
  // partner sits on its anchor's coverage-disk boundary, exercising the
  // within_range epsilon and every <=-vs-< comparison in coverage code.
  std::vector<geom::Point> pts;
  pts.reserve(count);
  const geom::Aabb inner{{field.lo.x + range, field.lo.y + range},
                         {field.hi.x - range, field.hi.y - range}};
  const bool roomy = inner.lo.x < inner.hi.x && inner.lo.y < inner.hi.y;
  while (pts.size() < count) {
    const geom::Point anchor =
        roomy ? geom::Point{rng.uniform(inner.lo.x, inner.hi.x),
                            rng.uniform(inner.lo.y, inner.hi.y)}
              : field.center();
    pts.push_back(anchor);
    if (pts.size() == count) {
      break;
    }
    static constexpr std::array<geom::Point, 4> kDirs = {
        geom::Point{1.0, 0.0}, geom::Point{-1.0, 0.0}, geom::Point{0.0, 1.0},
        geom::Point{0.0, -1.0}};
    const geom::Point partner = anchor + kDirs[rng.index(kDirs.size())] * range;
    pts.push_back(field.clamp(partner));
  }
  return pts;
}

std::vector<geom::Point> chain_points(std::size_t count,
                                      const geom::Aabb& field, double range,
                                      Rng& rng) {
  // A serpentine chain with consecutive sensors exactly `range` apart
  // along x: every link sits on the transmission-range boundary, so a
  // d-hop closure that is off by one hop (or an epsilon in the boundary
  // comparison) changes the reachability sets. Row pitch range/2 keeps
  // row turns within range, preserving one connected chain.
  std::vector<geom::Point> pts;
  pts.reserve(count);
  const double x0 = field.lo.x + rng.uniform(0.0, range * 0.25);
  const double y0 = field.lo.y + rng.uniform(0.0, range * 0.25);
  double x = x0;
  double y = y0;
  bool rightward = true;
  while (pts.size() < count && y <= field.hi.y) {
    pts.push_back({x, y});
    const double next = rightward ? x + range : x - range;
    if (next > field.hi.x || next < field.lo.x) {
      y += range * 0.5;  // turn: climb half a range, reverse direction
      rightward = !rightward;
    } else {
      x = next;
    }
  }
  // A field too small for the requested chain: stack the remainder on
  // the start (coincident sensors are fair game — see kCoincident).
  while (pts.size() < count) {
    pts.push_back({x0, y0});
  }
  return pts;
}

std::vector<geom::Point> star_points(std::size_t count,
                                     const geom::Aabb& field, double range,
                                     Rng& rng) {
  // Hub-and-spoke stars: six spokes per hub, each a radial chain with
  // links exactly `range` long, so a ring-j spoke sensor is exactly j
  // hops from its hub — a d-hop dominating set collapses whole rings
  // onto hubs as d grows.
  const std::size_t hubs = std::max<std::size_t>(1, count / 24);
  std::vector<geom::Point> centers;
  std::vector<double> bases;
  centers.reserve(hubs);
  for (std::size_t h = 0; h < hubs; ++h) {
    centers.push_back({rng.uniform(field.lo.x, field.hi.x),
                       rng.uniform(field.lo.y, field.hi.y)});
    bases.push_back(rng.uniform(0.0, 2.0 * 3.14159265358979323846));
  }
  std::vector<geom::Point> pts = centers;
  pts.reserve(count);
  if (pts.size() > count) {
    pts.resize(count);
  }
  for (std::size_t ring = 1; pts.size() < count; ++ring) {
    for (std::size_t h = 0; h < hubs && pts.size() < count; ++h) {
      for (std::size_t k = 0; k < 6 && pts.size() < count; ++k) {
        const double theta =
            bases[h] + static_cast<double>(k) * 3.14159265358979323846 / 3.0;
        const geom::Point spoke{
            centers[h].x +
                std::cos(theta) * range * static_cast<double>(ring),
            centers[h].y +
                std::sin(theta) * range * static_cast<double>(ring)};
        pts.push_back(field.clamp(spoke));
      }
    }
  }
  return pts;
}

std::vector<geom::Point> island_points(std::size_t count,
                                       const geom::Aabb& field, double range,
                                       Rng& rng) {
  // Tight single-hop cliques (diameter < range) on a coarse lattice,
  // far apart relative to the range: the communication graph is
  // disconnected, the d-hop closure must never bridge islands, and set
  // cover still needs one stop per island no matter how large d gets.
  const std::size_t islands =
      std::min<std::size_t>(9, std::max<std::size_t>(2, count / 24));
  std::vector<geom::Point> centers;
  centers.reserve(islands);
  for (std::size_t i = 0; i < islands; ++i) {
    // Lattice fractions 1/6, 3/6, 5/6 of the field per axis, jittered.
    const double fx = (1.0 + 2.0 * static_cast<double>(i % 3)) / 6.0;
    const double fy = (1.0 + 2.0 * static_cast<double>(i / 3)) / 6.0;
    centers.push_back(
        {field.lo.x + fx * field.width() + rng.uniform(-0.2, 0.2) * range,
         field.lo.y + fy * field.height() + rng.uniform(-0.2, 0.2) * range});
  }
  std::vector<geom::Point> pts;
  pts.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const geom::Point& c = centers[i % islands];
    const double r = rng.uniform(0.0, range * 0.45);
    const double theta = rng.uniform(0.0, 2.0 * 3.14159265358979323846);
    pts.push_back(
        field.clamp({c.x + r * std::cos(theta), c.y + r * std::sin(theta)}));
  }
  return pts;
}

}  // namespace

std::span<const GeneratorFamily> all_families() { return kAllFamilies; }

std::span<const GeneratorFamily> standard_families() {
  return std::span<const GeneratorFamily>(kAllFamilies).subspan(0, 5);
}

std::span<const GeneratorFamily> degenerate_families() {
  return std::span<const GeneratorFamily>(kAllFamilies).subspan(5, 4);
}

std::span<const GeneratorFamily> relay_families() {
  return std::span<const GeneratorFamily>(kAllFamilies).subspan(9);
}

std::span<const GeneratorFamily> legacy_families() {
  return std::span<const GeneratorFamily>(kAllFamilies).subspan(0, 9);
}

const char* to_string(GeneratorFamily family) {
  switch (family) {
    case GeneratorFamily::kUniform:
      return "uniform";
    case GeneratorFamily::kClusters:
      return "clusters";
    case GeneratorFamily::kGrid:
      return "grid";
    case GeneratorFamily::kCorridor:
      return "corridor";
    case GeneratorFamily::kRing:
      return "ring";
    case GeneratorFamily::kCollinear:
      return "collinear";
    case GeneratorFamily::kCoincident:
      return "coincident";
    case GeneratorFamily::kBoundary:
      return "boundary";
    case GeneratorFamily::kTiny:
      return "tiny";
    case GeneratorFamily::kChain:
      return "chain";
    case GeneratorFamily::kStar:
      return "star";
    case GeneratorFamily::kIslands:
      return "islands";
  }
  return "unknown";
}

std::optional<GeneratorFamily> family_from_string(std::string_view name) {
  for (GeneratorFamily family : kAllFamilies) {
    if (name == to_string(family)) {
      return family;
    }
  }
  return std::nullopt;
}

net::SensorNetwork generate_network(GeneratorFamily family, std::uint64_t seed,
                                    const GeneratorOptions& options) {
  MDG_REQUIRE(options.side > 0.0, "field side must be positive");
  MDG_REQUIRE(options.range > 0.0, "transmission range must be positive");
  const geom::Aabb field = geom::Aabb::square(options.side);
  // Per-family fork stream: generating one family never perturbs another.
  Rng rng = Rng(seed).fork(static_cast<std::uint64_t>(family));
  const std::size_t n = options.sensors;

  std::vector<geom::Point> pts;
  switch (family) {
    case GeneratorFamily::kUniform:
      pts = net::deploy_uniform(n, field, rng);
      break;
    case GeneratorFamily::kClusters:
      pts = net::deploy_gaussian_clusters(n, field, 4, options.side * 0.11,
                                          rng);
      break;
    case GeneratorFamily::kGrid:
      pts = net::deploy_grid_jitter(n, field, 0.3, rng);
      break;
    case GeneratorFamily::kCorridor:
      pts = corridor_points(n, field, options.range, rng);
      break;
    case GeneratorFamily::kRing:
      pts = ring_points(n, field, rng);
      break;
    case GeneratorFamily::kCollinear:
      pts = collinear_points(n, field, rng);
      break;
    case GeneratorFamily::kCoincident:
      pts = coincident_points(n, field, rng);
      break;
    case GeneratorFamily::kBoundary:
      pts = boundary_points(n, field, options.range, rng);
      break;
    case GeneratorFamily::kTiny:
      if (seed % 2 == 1) {
        pts = net::deploy_uniform(1, field, rng);
      }
      break;
    case GeneratorFamily::kChain:
      pts = chain_points(n, field, options.range, rng);
      break;
    case GeneratorFamily::kStar:
      pts = star_points(n, field, options.range, rng);
      break;
    case GeneratorFamily::kIslands:
      pts = island_points(n, field, options.range, rng);
      break;
  }
  return net::SensorNetwork(std::move(pts), field.center(), field,
                            options.range);
}

}  // namespace mdg::verify

#include "verify/canonical.h"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <vector>

#include "geom/point.h"

namespace mdg::verify {
namespace {

bool point_less(geom::Point a, geom::Point b) {
  return a.x < b.x || (a.x == b.x && a.y < b.y);
}

bool sequence_less(const std::vector<geom::Point>& a,
                   const std::vector<geom::Point>& b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end(),
                                      point_less);
}

void emit_point(std::ostream& out, geom::Point p) {
  out << std::hexfloat << p.x << " " << p.y << std::defaultfloat;
}

}  // namespace

std::string canonical_plan_bytes(const core::ShdgpInstance& instance,
                                 const core::ShdgpSolution& solution) {
  const net::SensorNetwork& network = instance.network();

  // Polling points with their (coordinate-identified, sorted) sensors;
  // each sensor carries its relay chain as coordinates (empty = direct).
  struct Upload {
    geom::Point position;
    std::vector<geom::Point> via;
  };
  struct Stop {
    geom::Point position;
    std::vector<Upload> sensors;
  };
  const auto upload_less = [](const Upload& a, const Upload& b) {
    if (!(a.position == b.position)) {
      return point_less(a.position, b.position);
    }
    return sequence_less(a.via, b.via);
  };
  std::vector<Stop> stops(solution.polling_points.size());
  for (std::size_t i = 0; i < stops.size(); ++i) {
    stops[i].position = solution.polling_points[i];
  }
  for (std::size_t s = 0; s < solution.assignment.size(); ++s) {
    const std::size_t slot = solution.assignment[s];
    if (slot < stops.size() && s < network.size()) {
      Upload upload{network.position(s), {}};
      if (s < solution.relay_paths.size()) {
        for (std::size_t r : solution.relay_paths[s]) {
          if (r < network.size()) {
            upload.via.push_back(network.position(r));
          }
        }
      }
      stops[slot].sensors.push_back(std::move(upload));
    }
  }
  for (Stop& stop : stops) {
    std::sort(stop.sensors.begin(), stop.sensors.end(), upload_less);
  }
  std::sort(stops.begin(), stops.end(),
            [&](const Stop& a, const Stop& b) {
              if (!(a.position == b.position)) {
                return point_less(a.position, b.position);
              }
              return std::lexicographical_compare(
                  a.sensors.begin(), a.sensors.end(), b.sensors.begin(),
                  b.sensors.end(), upload_less);
            });

  // Tour as coordinates from the sink, direction normalized to the
  // lexicographically smaller traversal.
  std::vector<geom::Point> all;
  all.reserve(solution.polling_points.size() + 1);
  all.push_back(instance.sink());
  all.insert(all.end(), solution.polling_points.begin(),
             solution.polling_points.end());
  std::vector<geom::Point> forward;
  if (solution.tour.size() == all.size() &&
      tsp::Tour::is_permutation(solution.tour.order())) {
    tsp::Tour oriented = solution.tour;
    oriented.rotate_to_front(0);
    forward = oriented.to_points(all);
  } else {
    forward = solution.tour.to_points(all);  // degenerate; emit as-is
  }
  std::vector<geom::Point> backward = forward;
  if (backward.size() > 2) {
    std::reverse(backward.begin() + 1, backward.end());
  }
  const std::vector<geom::Point>& tour =
      sequence_less(backward, forward) ? backward : forward;

  std::ostringstream out;
  out << "canonical-plan 2\n";
  if (solution.relay_hops != 1) {
    out << "relay-hops " << solution.relay_hops << "\n";
  }
  out << "polling " << stops.size() << "\n";
  for (const Stop& stop : stops) {
    out << "pp ";
    emit_point(out, stop.position);
    out << " serves " << stop.sensors.size() << "\n";
    for (const Upload& sensor : stop.sensors) {
      out << "  sensor ";
      emit_point(out, sensor.position);
      for (geom::Point via : sensor.via) {
        out << " via ";
        emit_point(out, via);
      }
      out << "\n";
    }
  }
  out << "tour " << tour.size() << "\n";
  for (geom::Point p : tour) {
    out << "  at ";
    emit_point(out, p);
    out << "\n";
  }
  // Length recomputed along the canonical orientation: independent of
  // the summation order the planner used.
  out << "length " << std::hexfloat << geom::closed_tour_length(tour)
      << std::defaultfloat << "\n";
  return out.str();
}

std::string canonical_network_bytes(const net::SensorNetwork& network) {
  std::ostringstream out;
  out << "canonical-network 1\n";
  out << "field ";
  emit_point(out, network.field().lo);
  out << " ";
  emit_point(out, network.field().hi);
  out << "\n";
  out << "sink ";
  emit_point(out, network.sink());
  out << "\n";
  const net::RadioModel& radio = network.radio();
  out << std::hexfloat << "range " << network.range() << "\n"
      << "radio " << radio.e_elec << " " << radio.eps_amp << " " << radio.eps_mp
      << std::defaultfloat << " " << radio.packet_bits << "\n";
  out << "sensors " << network.size() << "\n";
  for (geom::Point p : network.positions()) {
    emit_point(out, p);
    out << "\n";
  }
  return out.str();
}

}  // namespace mdg::verify

// Canonical plan encoding for metamorphic and reproducibility checks.
//
// Two solutions that describe the same geometric plan — the same polling
// positions, the same sensor->position affiliation, the same closed tour
// — must encode to byte-identical strings, regardless of the order the
// planner discovered the polling points in, the direction it oriented
// the tour, or the order the sensors arrived in the input file. That
// makes "permuting the input yields the same plan" a one-line string
// comparison, and gives tools/repro a diffable artifact.
//
// Normalization: polling points sorted by (x, y); sensors identified by
// their coordinates (input-order independent) and sorted within each
// polling point; the tour emitted from the sink in the direction whose
// first step is lexicographically smaller; every double printed as
// hexfloat (exact round-trip, no locale).
//
// The encoding is deliberately planner-agnostic (no planner-name line):
// two planners that produce the same geometric plan encode identically,
// which is what the d=1 byte-identity gate between RelayHopPlanner and
// GreedyCoverPlanner compares. Bounded-relay state is part of the plan:
// a `relay-hops <d>` line appears when d != 1, and a sensor line gains
// ` via <coords> ...` when the sensor uploads through relays.
#pragma once

#include <string>

#include "core/instance.h"
#include "core/solution.h"
#include "net/sensor_network.h"

namespace mdg::verify {

/// The canonical byte encoding of (instance, solution) described above.
[[nodiscard]] std::string canonical_plan_bytes(
    const core::ShdgpInstance& instance, const core::ShdgpSolution& solution);

/// Canonical byte encoding of a network alone — the serving cache's
/// instance identity (docs/SERVE.md §cache). Hexfloat (exact round-trip)
/// and whitespace-normalized, so two request payloads that *parse* to
/// the same network — different decimal spellings, extra blanks — encode
/// identically. Sensor order is deliberately preserved, NOT sorted:
/// plan replies index sensors by their input position (the assignment
/// array), so a sensor permutation is a different instance for caching
/// purposes even though it describes the same geometry.
[[nodiscard]] std::string canonical_network_bytes(
    const net::SensorNetwork& network);

}  // namespace mdg::verify

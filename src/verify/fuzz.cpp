#include "verify/fuzz.h"

#include <functional>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "fault/config_io.h"
#include "io/delta_io.h"
#include "io/serialize.h"
#include "serve/protocol.h"
#include "util/assert.h"
#include "util/rng.h"

namespace mdg::verify {
namespace {

/// Walks the MDG1 frame stream the way serve_stdio does: frame by
/// frame until EOF or the first framing error, feeding every request
/// payload through its typed parser. A 1 MiB payload cap keeps a
/// hostile length field from allocating gigabytes per execution while
/// still exercising the cap-rejection path.
core::Status run_frame_target(std::string_view bytes) {
  std::istringstream in{std::string(bytes)};
  const serve::ReadFrameOptions frame_options{1u << 20};
  core::Status last = core::Status::ok();
  while (true) {
    auto frame = serve::read_frame(in, frame_options);
    if (!frame.is_ok()) {
      return frame.status();  // framing error: no resync point
    }
    if (!frame.value().has_value()) {
      return last;  // clean EOF between frames
    }
    const serve::Frame& f = **frame;
    switch (f.type) {
      case serve::FrameType::kPlanRequest:
        last = serve::parse_plan_request(f.payload).status();
        break;
      case serve::FrameType::kDeltaRequest:
        last = serve::parse_delta_request(f.payload).status();
        break;
      case serve::FrameType::kSimulateRequest:
        last = serve::parse_simulate_request(f.payload).status();
        break;
      default:
        break;  // control frames and replies carry no parsed payload
    }
  }
}

/// The bounded-relay solution target: any bytes must parse or produce
/// a diagnostic (the shared contract), and on top of that an *accepted*
/// solution must survive the relay accessors and round-trip through
/// write_solution -> try_read_solution — a genuine violation crashes,
/// which is exactly what the fuzz drivers are watching for.
core::Status run_relay_target(std::string_view bytes, bool fail_fast) {
  std::istringstream in{std::string(bytes)};
  auto parsed = io::try_read_solution(in, {.fail_fast = fail_fast});
  if (!parsed.is_ok()) {
    return parsed.status();
  }
  const core::ShdgpSolution& solution = parsed.value();
  (void)solution.uses_relays();
  (void)solution.max_upload_hops();
  (void)solution.relayed_sensor_count();
  std::istringstream again{io::to_text(solution)};
  auto reparsed = io::try_read_solution(again, {.fail_fast = fail_fast});
  MDG_REQUIRE(reparsed.is_ok(),
              "write->read round-trip rejected an accepted solution: " +
                  reparsed.status().message());
  return parsed.status();
}

core::Status run_target(FuzzTarget target, std::string_view bytes,
                        bool fail_fast) {
  std::istringstream in{std::string(bytes)};
  switch (target) {
    case FuzzTarget::kNetwork:
      return io::try_read_network(in, {.fail_fast = fail_fast}).status();
    case FuzzTarget::kSolution:
      return io::try_read_solution(in, {.fail_fast = fail_fast}).status();
    case FuzzTarget::kFaultConfig:
      return fault::read_fault_config(in, {.fail_fast = fail_fast}).status();
    case FuzzTarget::kDelta:
      // The delta loader has a single validation mode.
      return io::try_read_delta(in).status();
    case FuzzTarget::kFrame:
      // Binary framing + payload parsers; single validation mode.
      return run_frame_target(bytes);
    case FuzzTarget::kRelayPlan:
      return run_relay_target(bytes, fail_fast);
  }
  return core::Status::internal("unknown fuzz target");
}

/// One seeded mutation of `input`. Mutation kinds mirror the classic
/// libFuzzer dictionary-free set: bit/byte edits, deletions, duplicated
/// spans, truncations and digit tweaks (numbers are where the parsers'
/// semantic validation lives).
std::string mutate(const std::string& input, Rng& rng) {
  std::string out = input;
  const std::size_t edits = 1 + rng.index(4);
  for (std::size_t e = 0; e < edits; ++e) {
    switch (rng.index(6)) {
      case 0:  // flip a byte
        if (!out.empty()) {
          out[rng.index(out.size())] =
              static_cast<char>(rng.uniform_int(0, 255));
        }
        break;
      case 1:  // delete a span
        if (!out.empty()) {
          const std::size_t at = rng.index(out.size());
          const std::size_t len = 1 + rng.index(8);
          out.erase(at, std::min(len, out.size() - at));
        }
        break;
      case 2: {  // insert random bytes
        const std::size_t at = out.empty() ? 0 : rng.index(out.size() + 1);
        const std::size_t len = 1 + rng.index(8);
        std::string noise;
        for (std::size_t i = 0; i < len; ++i) {
          noise += static_cast<char>(rng.uniform_int(0, 255));
        }
        out.insert(at, noise);
        break;
      }
      case 3:  // duplicate a span (oversized counts, repeated sections)
        if (!out.empty()) {
          const std::size_t at = rng.index(out.size());
          const std::size_t len =
              std::min<std::size_t>(1 + rng.index(32), out.size() - at);
          out.insert(at, out.substr(at, len));
        }
        break;
      case 4:  // truncate (mid-stream EOF)
        if (!out.empty()) {
          out.resize(rng.index(out.size()));
        }
        break;
      case 5:  // tweak a digit into another digit, sign, dot or 'n'/'e'
        if (!out.empty()) {
          static constexpr char kNumeric[] = "0123456789.-+en";
          const std::size_t at = rng.index(out.size());
          out[at] = kNumeric[rng.index(sizeof(kNumeric) - 1)];
        }
        break;
    }
  }
  return out;
}

}  // namespace

const char* to_string(FuzzTarget target) {
  switch (target) {
    case FuzzTarget::kNetwork:
      return "network";
    case FuzzTarget::kSolution:
      return "solution";
    case FuzzTarget::kFaultConfig:
      return "faults";
    case FuzzTarget::kDelta:
      return "delta";
    case FuzzTarget::kFrame:
      return "serve";
    case FuzzTarget::kRelayPlan:
      return "relay";
  }
  return "unknown";
}

std::optional<FuzzTarget> fuzz_target_from_string(std::string_view name) {
  for (FuzzTarget target :
       {FuzzTarget::kNetwork, FuzzTarget::kSolution, FuzzTarget::kFaultConfig,
        FuzzTarget::kDelta, FuzzTarget::kFrame, FuzzTarget::kRelayPlan}) {
    if (name == to_string(target)) {
      return target;
    }
  }
  return std::nullopt;
}

core::Status fuzz_one(FuzzTarget target, std::string_view bytes) {
  // Exercise both validation modes: collect-everything walks the
  // keep-scanning paths, fail-fast the early exits. The fail-fast
  // Status is the one callers (and exit-code mapping) see first.
  (void)run_target(target, bytes, /*fail_fast=*/false);
  return run_target(target, bytes, /*fail_fast=*/true);
}

FuzzStats fuzz_corpus(FuzzTarget target, std::span<const std::string> corpus,
                      std::uint64_t seed, std::size_t iterations) {
  FuzzStats stats;
  std::unordered_set<std::size_t> outcomes;
  const auto record = [&](const core::Status& status) {
    ++stats.executions;
    if (status.is_ok()) {
      ++stats.accepted;
    } else {
      ++stats.rejected;
    }
    outcomes.insert(std::hash<std::string>{}(status.to_string()));
  };

  // Phase 1: straight corpus replay.
  for (const std::string& entry : corpus) {
    record(fuzz_one(target, entry));
  }

  // Phase 2: seeded mutations. Each iteration forks its own stream, so
  // the sequence is schedule-independent and any single iteration can
  // be replayed in isolation from (seed, iteration index).
  const Rng base(seed);
  for (std::size_t i = 0; i < iterations; ++i) {
    Rng rng = base.fork(i);
    std::string input;
    if (!corpus.empty()) {
      input = corpus[rng.index(corpus.size())];
      if (rng.chance(0.2) && corpus.size() > 1) {
        // Splice the head of one entry onto the tail of another.
        const std::string& other = corpus[rng.index(corpus.size())];
        input = input.substr(0, rng.index(input.size() + 1)) +
                other.substr(rng.index(other.size() + 1));
      }
    }
    record(fuzz_one(target, mutate(input, rng)));
  }
  stats.unique_outcomes = outcomes.size();
  return stats;
}

}  // namespace mdg::verify

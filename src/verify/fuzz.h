// Fuzzing support for the untrusted-input boundary.
//
// The fuzz targets cover the loaders that accept bytes from outside
// the process: network files (io::try_read_network), solution files
// (io::try_read_solution), fault configs (fault::read_fault_config),
// plan deltas (io::try_read_delta) and the MDG1 binary frame stream
// (serve::read_frame plus the typed request-payload parsers). The
// contract under fuzzing is the PR 4 hardening contract: any byte
// sequence either parses or produces a diagnostic core::Status —
// never a crash, leak, exception or UB.
//
// Two drivers share fuzz_one:
//   * libFuzzer entry points (tools/fuzz/, built with -DMDG_FUZZ=ON
//     under Clang) for coverage-guided exploration in CI;
//   * a deterministic corpus-replay + seeded-mutation loop (fuzz_corpus)
//     that runs everywhere — the GCC/no-libFuzzer fallback the test
//     suite uses, with a cheap outcome-diversity proxy for coverage.
//
// The seed corpus is checked in under tests/harness/corpus/<target>/;
// tools/minimize_crash.py shrinks any crashing input (docs/TESTING.md).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "core/status.h"

namespace mdg::verify {

enum class FuzzTarget {
  kNetwork,      ///< io::try_read_network
  kSolution,     ///< io::try_read_solution
  kFaultConfig,  ///< fault::read_fault_config
  kDelta,        ///< io::try_read_delta
  kFrame,        ///< serve::read_frame + request-payload parsers
  kRelayPlan,    ///< version-2 (bounded-relay) solution files: parse,
                 ///< relay helpers, write->read round-trip must hold
};

/// Corpus directory name and CLI spelling: "network" / "solution" /
/// "faults" / "delta" / "serve" / "relay".
[[nodiscard]] const char* to_string(FuzzTarget target);
[[nodiscard]] std::optional<FuzzTarget> fuzz_target_from_string(
    std::string_view name);

/// Feeds `bytes` to the target's loader (both fail-fast and
/// collect-everything modes) and returns the fail-fast Status. Must
/// never crash or throw, whatever the bytes — that is the property the
/// fuzz drivers assert.
[[nodiscard]] core::Status fuzz_one(FuzzTarget target, std::string_view bytes);

struct FuzzStats {
  std::size_t executions = 0;       ///< total fuzz_one calls
  std::size_t accepted = 0;         ///< inputs that parsed OK
  std::size_t rejected = 0;         ///< inputs rejected with a diagnostic
  std::size_t unique_outcomes = 0;  ///< distinct (code, message) outcomes —
                                    ///< the coverage proxy of the fallback
};

/// Deterministic corpus replay plus `iterations` seeded mutations of the
/// corpus (byte flips, splices, truncations, number tweaks — all drawn
/// from Rng::fork streams of `seed`). Same arguments, same execution
/// sequence, same stats. Crashes surface as crashes; everything else is
/// counted.
[[nodiscard]] FuzzStats fuzz_corpus(FuzzTarget target,
                                    std::span<const std::string> corpus,
                                    std::uint64_t seed,
                                    std::size_t iterations);

}  // namespace mdg::verify

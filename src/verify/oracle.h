// Differential-oracle layer: heuristics vs. the exact planner and TSP
// lower bounds.
//
// The exact branch-and-bound planner and the Held–Karp / 1-tree bounds
// already exist as *planners*; this module industrializes them as
// *oracles*, the pattern the data-MULE literature uses to validate
// heuristics against exact solutions on small instances:
//
//   * on instances the exact planner can prove optimal (n <= 12 by
//     default), every heuristic's tour must be >= the exact optimum —
//     a heuristic that beats a proven optimum is impossible, so any
//     such observation is a bug in one of the two;
//   * on any instance, a solution's tour must be >= the MST and 1-tree
//     lower bounds over its own stop set (valid at every size, used on
//     the mid-size instances Held–Karp cannot reach);
//   * every solution must pass verify::check_solution.
//
// run_differential bundles the three into one report per instance; the
// oracle CI job and tools/repro drive it across the generator families.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/planner.h"
#include "core/solution.h"
#include "core/status.h"

namespace mdg::verify {

struct OracleOptions {
  /// Run the exact planner (and the beats-optimum check) only up to this
  /// many sensors — matching the regime the paper validates in.
  std::size_t exact_sensor_limit = 12;
  /// Relative slack for floating-point comparisons against the exact
  /// optimum and the lower bounds.
  double relative_tolerance = 1e-9;
  /// Relay budgets d to run the bounded-relay section for (empty = skip
  /// it entirely, the legacy oracle cost). Per depth: RelayHopPlanner's
  /// plan passes the relay-aware invariant and lower-bound checks, never
  /// beats the brute-force d-hop optimum (minimal-cover enumeration +
  /// Held–Karp, small instances only), and at d = 1 its canonical plan
  /// bytes equal GreedyCoverPlanner's exactly — the byte-identity anchor.
  std::vector<std::size_t> relay_hops_depths;
};

/// One planner's outcome on one instance.
struct PlannerVerdict {
  std::string planner;
  double tour_length = 0.0;
  core::Status status;  ///< OK, or which oracle check failed and why
};

struct OracleReport {
  bool exact_available = false;  ///< exact planner ran and proved optimality
  double exact_length = 0.0;
  std::vector<PlannerVerdict> verdicts;

  /// OK when every verdict is OK; otherwise the first failure, with the
  /// failing planner named in the context.
  [[nodiscard]] core::Status status() const;
};

/// The heuristic planner roster the differential suite runs: greedy
/// cover, spanning tour, tree dominator, the direct-visit baseline and
/// the distributed election planner.
[[nodiscard]] std::vector<std::unique_ptr<core::Planner>> heuristic_planners();

/// `solution.tour_length` must dominate the MST and 1-tree lower bounds
/// over its own stop set (sink + polling points).
[[nodiscard]] core::Status check_tour_lower_bound(
    const core::ShdgpInstance& instance, const core::ShdgpSolution& solution,
    double relative_tolerance = 1e-9);

/// A heuristic tour shorter than a proven optimum is impossible.
[[nodiscard]] core::Status check_not_better_than_exact(
    const core::ShdgpSolution& solution, double exact_length,
    double relative_tolerance = 1e-9);

/// Runs every heuristic planner (and, within the sensor limit, the exact
/// planner) on `instance` and applies every oracle check to each output.
[[nodiscard]] OracleReport run_differential(const core::ShdgpInstance& instance,
                                            const OracleOptions& options = {});

}  // namespace mdg::verify

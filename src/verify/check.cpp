#include "verify/check.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>

#include "geom/point.h"

namespace mdg::verify {
namespace {

/// Accumulates violations; formats them as one kFailedPrecondition.
class Violations {
 public:
  explicit Violations(bool fail_fast) : fail_fast_(fail_fast) {}

  /// True when checking should stop (fail-fast after the first report).
  bool report(const std::string& problem) {
    if (!problems_.empty()) {
      problems_ += "\n";
    }
    problems_ += problem;
    ++count_;
    return fail_fast_;
  }

  [[nodiscard]] bool any() const { return count_ > 0; }

  [[nodiscard]] core::Status status(const char* what) const {
    if (count_ == 0) {
      return core::Status::ok();
    }
    std::ostringstream out;
    out << what << ": " << count_ << " invariant violation"
        << (count_ == 1 ? "" : "s") << "\n"
        << problems_;
    return core::Status::failed_precondition(out.str());
  }

 private:
  bool fail_fast_;
  std::string problems_;
  std::size_t count_ = 0;
};

std::string describe_point(geom::Point p) {
  std::ostringstream out;
  out << "(" << p.x << ", " << p.y << ")";
  return out.str();
}

}  // namespace

double length_tolerance(double length, std::size_t edges) {
  // Each summed edge contributes ~eps relative rounding; 8x slack keeps
  // the check robust to a different (but equivalent) summation order.
  const double eps = std::numeric_limits<double>::epsilon();
  const double terms = static_cast<double>(std::max<std::size_t>(edges, 1));
  return (1.0 + std::abs(length)) * eps * 8.0 * terms;
}

core::Status check_solution(const core::ShdgpInstance& instance,
                            const core::ShdgpSolution& solution,
                            const CheckOptions& options) {
  const net::SensorNetwork& network = instance.network();
  const cover::CoverageMatrix& matrix = instance.coverage();
  Violations v(options.fail_fast);

  // Parallel arrays.
  if (solution.polling_candidates.size() != solution.polling_points.size()) {
    std::ostringstream out;
    out << "polling_candidates (" << solution.polling_candidates.size()
        << ") and polling_points (" << solution.polling_points.size()
        << ") are not parallel";
    if (v.report(out.str())) {
      return v.status("solution");
    }
  }

  // Candidate ids resolve and positions are consistent.
  const std::size_t pp_count = solution.polling_points.size();
  for (std::size_t i = 0;
       i < std::min(solution.polling_candidates.size(), pp_count); ++i) {
    const std::size_t c = solution.polling_candidates[i];
    if (c == core::ShdgpSolution::kFreeformCandidate) {
      continue;  // freeform stop: only the range checks below apply
    }
    if (c >= matrix.candidate_count()) {
      std::ostringstream out;
      out << "polling point " << i << " references unknown candidate " << c;
      if (v.report(out.str())) {
        return v.status("solution");
      }
      continue;
    }
    if (!(matrix.candidate(c) == solution.polling_points[i])) {
      std::ostringstream out;
      out << "polling point " << i << " at "
          << describe_point(solution.polling_points[i])
          << " does not match candidate " << c << " at "
          << describe_point(matrix.candidate(c));
      if (v.report(out.str())) {
        return v.status("solution");
      }
    }
  }

  // Upload guarantee: every sensor assigned, and its upload chain
  // (direct, or through its relay path) reaches the polling point
  // within the relay-hop budget with every leg a valid radio hop.
  if (solution.assignment.size() != network.size()) {
    std::ostringstream out;
    out << "assignment covers " << solution.assignment.size() << " of "
        << network.size() << " sensors";
    if (v.report(out.str())) {
      return v.status("solution");
    }
  }
  if (!solution.relay_paths.empty() &&
      solution.relay_paths.size() != network.size()) {
    std::ostringstream out;
    out << "relay_paths covers " << solution.relay_paths.size() << " of "
        << network.size() << " sensors (must be empty or complete)";
    if (v.report(out.str())) {
      return v.status("solution");
    }
  }
  const std::size_t budget = std::max<std::size_t>(solution.relay_hops, 1);
  const std::vector<std::size_t> no_path;
  const std::size_t assigned =
      std::min(solution.assignment.size(), network.size());
  for (std::size_t s = 0; s < assigned; ++s) {
    const std::size_t slot = solution.assignment[s];
    if (slot >= pp_count) {
      std::ostringstream out;
      out << "sensor " << s << " assigned to missing polling point " << slot;
      if (v.report(out.str())) {
        return v.status("solution");
      }
      continue;
    }
    const geom::Point pp = solution.polling_points[slot];
    const std::vector<std::size_t>& path =
        s < solution.relay_paths.size() ? solution.relay_paths[s] : no_path;
    if (path.size() + 1 > budget) {
      std::ostringstream out;
      out << "sensor " << s << " uploads through " << path.size()
          << " relays, exceeding the relay-hop budget "
          << solution.relay_hops;
      if (v.report(out.str())) {
        return v.status("solution");
      }
      continue;
    }
    if (solution.relay_hops == 0) {
      if (!(network.position(s) == pp)) {
        std::ostringstream out;
        out << "sensor " << s << " at " << describe_point(network.position(s))
            << " requires the collector to pause at its position "
            << "(relay-hops 0), but its polling point is at "
            << describe_point(pp);
        if (v.report(out.str())) {
          return v.status("solution");
        }
      }
      continue;
    }
    geom::Point from = network.position(s);
    bool chain_ok = true;
    for (std::size_t r : path) {
      if (r >= network.size() || r == s) {
        std::ostringstream out;
        out << "sensor " << s << " relay path references invalid relay "
            << r;
        chain_ok = false;
        if (v.report(out.str())) {
          return v.status("solution");
        }
        break;
      }
      if (!geom::within_range(from, network.position(r), network.range())) {
        std::ostringstream out;
        out << "sensor " << s << " relay leg " << describe_point(from)
            << " -> relay " << r << " at "
            << describe_point(network.position(r)) << " (distance "
            << geom::distance(from, network.position(r)) << " > range "
            << network.range() << ")";
        chain_ok = false;
        if (v.report(out.str())) {
          return v.status("solution");
        }
        break;
      }
      from = network.position(r);
    }
    if (chain_ok && !geom::within_range(from, pp, network.range())) {
      std::ostringstream out;
      out << "sensor " << s << " upload chain ends at "
          << describe_point(from) << " which cannot reach polling point "
          << slot << " at " << describe_point(pp) << " (distance "
          << geom::distance(from, pp) << " > range " << network.range()
          << ")";
      if (v.report(out.str())) {
        return v.status("solution");
      }
    }
  }

  // Tour: closed permutation over {sink} ∪ polling points, sink first.
  bool tour_shape_ok = true;
  if (solution.tour.size() != pp_count + 1) {
    std::ostringstream out;
    out << "tour visits " << solution.tour.size() << " stops, expected "
        << pp_count + 1 << " (sink + every polling point)";
    tour_shape_ok = false;
    if (v.report(out.str())) {
      return v.status("solution");
    }
  }
  if (!tsp::Tour::is_permutation(solution.tour.order())) {
    tour_shape_ok = false;
    if (v.report("tour order is not a permutation")) {
      return v.status("solution");
    }
  }
  if (!solution.tour.empty() && solution.tour.at(0) != 0) {
    std::ostringstream out;
    out << "tour starts at index " << solution.tour.at(0)
        << ", expected the sink (index 0)";
    if (v.report(out.str())) {
      return v.status("solution");
    }
  }

  // Recorded length vs. independent recomputation.
  if (tour_shape_ok) {
    std::vector<geom::Point> stops;
    stops.reserve(pp_count + 1);
    stops.push_back(instance.sink());
    stops.insert(stops.end(), solution.polling_points.begin(),
                 solution.polling_points.end());
    const double measured = solution.tour.length(stops);
    const double tol = length_tolerance(measured, solution.tour.size());
    if (!(std::abs(measured - solution.tour_length) <= tol)) {
      std::ostringstream out;
      out.precision(17);
      out << "recorded tour length " << solution.tour_length
          << " does not match recomputed " << measured << " (|diff| "
          << std::abs(measured - solution.tour_length) << " > tolerance "
          << tol << ")";
      if (v.report(out.str())) {
        return v.status("solution");
      }
    }
  }

  return v.status("solution");
}

core::Status check_recovery(const core::ShdgpInstance& instance,
                            geom::Point breakdown_position,
                            const core::RecoveryPlan& plan,
                            const std::vector<std::size_t>& requested,
                            const CheckOptions& options) {
  const net::SensorNetwork& network = instance.network();
  const cover::CoverageMatrix& matrix = instance.coverage();
  Violations v(options.fail_fast);

  if (plan.stop_candidates.size() != plan.stops.size() ||
      plan.stop_sensors.size() != plan.stops.size()) {
    std::ostringstream out;
    out << "stops (" << plan.stops.size() << "), stop_candidates ("
        << plan.stop_candidates.size() << ") and stop_sensors ("
        << plan.stop_sensors.size() << ") are not parallel";
    if (v.report(out.str())) {
      return v.status("recovery");
    }
  }

  std::vector<std::size_t> targets = requested;
  std::sort(targets.begin(), targets.end());
  targets.erase(std::unique(targets.begin(), targets.end()), targets.end());

  // Every served sensor: requested, in range of its stop, served once.
  std::vector<std::size_t> served;
  const std::size_t stop_count =
      std::min({plan.stops.size(), plan.stop_candidates.size(),
                plan.stop_sensors.size()});
  for (std::size_t i = 0; i < stop_count; ++i) {
    const std::size_t c = plan.stop_candidates[i];
    if (c >= matrix.candidate_count()) {
      std::ostringstream out;
      out << "recovery stop " << i << " references unknown candidate " << c;
      if (v.report(out.str())) {
        return v.status("recovery");
      }
    } else if (!(matrix.candidate(c) == plan.stops[i])) {
      std::ostringstream out;
      out << "recovery stop " << i << " at " << describe_point(plan.stops[i])
          << " does not match candidate " << c << " at "
          << describe_point(matrix.candidate(c));
      if (v.report(out.str())) {
        return v.status("recovery");
      }
    }
    if (!std::is_sorted(plan.stop_sensors[i].begin(),
                        plan.stop_sensors[i].end())) {
      std::ostringstream out;
      out << "recovery stop " << i << " sensor list is not sorted";
      if (v.report(out.str())) {
        return v.status("recovery");
      }
    }
    if (plan.stop_sensors[i].empty()) {
      std::ostringstream out;
      out << "recovery stop " << i << " serves no sensors";
      if (v.report(out.str())) {
        return v.status("recovery");
      }
    }
    for (std::size_t s : plan.stop_sensors[i]) {
      if (s >= network.size()) {
        std::ostringstream out;
        out << "recovery stop " << i << " serves unknown sensor " << s;
        if (v.report(out.str())) {
          return v.status("recovery");
        }
        continue;
      }
      if (!std::binary_search(targets.begin(), targets.end(), s)) {
        std::ostringstream out;
        out << "recovery stop " << i << " serves sensor " << s
            << " which was not requested";
        if (v.report(out.str())) {
          return v.status("recovery");
        }
      }
      if (!geom::within_range(network.position(s), plan.stops[i],
                              network.range())) {
        std::ostringstream out;
        out << "sensor " << s << " cannot reach recovery stop " << i
            << " (distance "
            << geom::distance(network.position(s), plan.stops[i])
            << " > range " << network.range() << ")";
        if (v.report(out.str())) {
          return v.status("recovery");
        }
      }
      served.push_back(s);
    }
  }
  std::sort(served.begin(), served.end());
  if (std::adjacent_find(served.begin(), served.end()) != served.end()) {
    if (v.report("a sensor is served at more than one recovery stop")) {
      return v.status("recovery");
    }
  }

  // served ∪ uncovered must partition the requested set.
  std::vector<std::size_t> accounted = served;
  accounted.insert(accounted.end(), plan.uncovered.begin(),
                   plan.uncovered.end());
  std::sort(accounted.begin(), accounted.end());
  accounted.erase(std::unique(accounted.begin(), accounted.end()),
                  accounted.end());
  if (accounted != targets) {
    std::ostringstream out;
    out << "served + uncovered accounts for " << accounted.size() << " of "
        << targets.size() << " requested sensors";
    if (v.report(out.str())) {
      return v.status("recovery");
    }
  }
  for (std::size_t s : plan.uncovered) {
    if (std::binary_search(served.begin(), served.end(), s)) {
      std::ostringstream out;
      out << "sensor " << s << " is both served and listed uncovered";
      if (v.report(out.str())) {
        return v.status("recovery");
      }
    }
  }
  if (plan.feasible != plan.uncovered.empty()) {
    if (v.report("feasible flag disagrees with the uncovered list")) {
      return v.status("recovery");
    }
  }

  // The recorded length must be the breakdown -> stops -> sink polyline:
  // in particular, the sub-tour ends at the sink even when the breakdown
  // happened at (or after) the last planned stop.
  double measured = 0.0;
  geom::Point cursor = breakdown_position;
  for (const geom::Point& stop : plan.stops) {
    measured += geom::distance(cursor, stop);
    cursor = stop;
  }
  measured += geom::distance(cursor, instance.sink());
  const double tol = length_tolerance(measured, plan.stops.size() + 1);
  if (!(std::abs(measured - plan.length_m) <= tol)) {
    std::ostringstream out;
    out.precision(17);
    out << "recorded recovery length " << plan.length_m
        << " does not match the breakdown->stops->sink polyline " << measured
        << " (|diff| " << std::abs(measured - plan.length_m)
        << " > tolerance " << tol << ")";
    if (v.report(out.str())) {
      return v.status("recovery");
    }
  }

  return v.status("recovery");
}

}  // namespace mdg::verify

// Visibility-graph routing around obstacles.
//
// The shortest obstacle-avoiding path between two points in a field of
// axis-aligned obstacles bends only at (slightly inflated) obstacle
// corners; Dijkstra over the visibility graph of
// {endpoints ∪ corners} yields it exactly. ObstacleRouter precomputes
// the corner-corner visibility once and answers point-to-point queries.
#pragma once

#include <optional>
#include <vector>

#include "geom/point.h"
#include "route/obstacle_map.h"

namespace mdg::route {

struct RoutedPath {
  /// Waypoints from source to target inclusive (straight drivable legs).
  std::vector<geom::Point> waypoints;
  double length = 0.0;
};

class ObstacleRouter {
 public:
  /// Binds to `map` (must outlive the router). `corner_margin` inflates
  /// obstacle corners so paths keep a physical clearance.
  explicit ObstacleRouter(const ObstacleMap& map, double corner_margin = 0.5);

  /// Shortest drivable path a -> b. nullopt when no path exists (one of
  /// the endpoints is sealed in by overlapping obstacles) or an endpoint
  /// lies inside an obstacle.
  [[nodiscard]] std::optional<RoutedPath> route(geom::Point a,
                                                geom::Point b) const;

  /// Length of route(a, b); +inf when unroutable.
  [[nodiscard]] double distance(geom::Point a, geom::Point b) const;

  /// Routes a whole stop sequence (consecutive legs concatenated,
  /// duplicate joint points removed). nullopt when any leg is unroutable.
  [[nodiscard]] std::optional<RoutedPath> route_sequence(
      std::span<const geom::Point> stops) const;

  [[nodiscard]] const ObstacleMap& map() const { return *map_; }
  [[nodiscard]] std::size_t waypoint_count() const { return corners_.size(); }

 private:
  const ObstacleMap* map_;
  std::vector<geom::Point> corners_;
  /// corner_visible_[i * n + j]: straight leg corner i -> corner j is
  /// drivable.
  std::vector<bool> corner_visible_;
  std::vector<double> corner_distance_;
};

}  // namespace mdg::route

// Obstacle-aware collector tour: re-routes a planned SHDGP solution
// through a field with no-go zones.
//
// Pipeline: pairwise detour distances between sink and polling points
// (visibility routing) -> matrix TSP over the detour metric -> expansion
// of every leg into drivable waypoints. The result is what the
// M-collector actually drives; its length is the honest latency input
// when the field is not empty.
#pragma once

#include <optional>
#include <vector>

#include "core/instance.h"
#include "core/solution.h"
#include "route/visibility.h"

namespace mdg::route {

struct ObstacleTour {
  /// Visiting order over {sink} ∪ polling points (index 0 = sink),
  /// optimised under the detour metric.
  tsp::Tour order;
  /// The full drivable polyline (closed: starts and ends at the sink).
  std::vector<geom::Point> polyline;
  double length = 0.0;           ///< drivable length
  double euclidean_length = 0.0; ///< same visiting order, straight legs
};

/// Plans the drivable tour for `solution` around `map`. Returns nullopt
/// when some polling point is unreachable (sealed in by obstacles).
/// Requires that neither the sink nor any polling point lies inside an
/// obstacle.
[[nodiscard]] std::optional<ObstacleTour> plan_obstacle_tour(
    const core::ShdgpInstance& instance, const core::ShdgpSolution& solution,
    const ObstacleRouter& router);

}  // namespace mdg::route

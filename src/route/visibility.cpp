#include "route/visibility.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/assert.h"

namespace mdg::route {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

ObstacleRouter::ObstacleRouter(const ObstacleMap& map, double corner_margin)
    : map_(&map), corners_(map.waypoints(corner_margin)) {
  const std::size_t n = corners_.size();
  corner_visible_.assign(n * n, false);
  corner_distance_.assign(n * n, kInf);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (!map.blocks(corners_[i], corners_[j])) {
        const double d = geom::distance(corners_[i], corners_[j]);
        corner_visible_[i * n + j] = true;
        corner_visible_[j * n + i] = true;
        corner_distance_[i * n + j] = d;
        corner_distance_[j * n + i] = d;
      }
    }
  }
}

std::optional<RoutedPath> ObstacleRouter::route(geom::Point a,
                                                geom::Point b) const {
  if (map_->inside_obstacle(a) || map_->inside_obstacle(b)) {
    return std::nullopt;
  }
  if (!map_->blocks(a, b)) {
    return RoutedPath{{a, b}, geom::distance(a, b)};
  }

  // Dijkstra over {a} ∪ corners ∪ {b}: node 0 = a, 1..n = corners,
  // n+1 = b.
  const std::size_t n = corners_.size();
  const std::size_t total = n + 2;
  const std::size_t src = 0;
  const std::size_t dst = n + 1;
  const auto point_of = [&](std::size_t v) -> geom::Point {
    if (v == src) return a;
    if (v == dst) return b;
    return corners_[v - 1];
  };

  // Endpoint-to-corner visibility computed on demand for this query.
  std::vector<double> dist(total, kInf);
  std::vector<std::size_t> parent(total, total);
  using Entry = std::pair<double, std::size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[src] = 0.0;
  heap.emplace(0.0, src);
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[v]) {
      continue;
    }
    if (v == dst) {
      break;
    }
    const geom::Point pv = point_of(v);
    for (std::size_t w = 0; w < total; ++w) {
      if (w == v || w == src) {
        continue;
      }
      double leg;
      if (v >= 1 && v <= n && w >= 1 && w <= n) {
        if (!corner_visible_[(v - 1) * n + (w - 1)]) {
          continue;
        }
        leg = corner_distance_[(v - 1) * n + (w - 1)];
      } else {
        const geom::Point pw = point_of(w);
        if (map_->blocks(pv, pw)) {
          continue;
        }
        leg = geom::distance(pv, pw);
      }
      if (dist[v] + leg < dist[w]) {
        dist[w] = dist[v] + leg;
        parent[w] = v;
        heap.emplace(dist[w], w);
      }
    }
  }
  if (dist[dst] == kInf) {
    return std::nullopt;
  }
  RoutedPath path;
  path.length = dist[dst];
  std::vector<geom::Point> reversed;
  for (std::size_t v = dst; v != total; v = parent[v]) {
    reversed.push_back(point_of(v));
    if (v == src) {
      break;
    }
    MDG_ASSERT(reversed.size() <= total, "routing parent cycle");
  }
  path.waypoints.assign(reversed.rbegin(), reversed.rend());
  return path;
}

double ObstacleRouter::distance(geom::Point a, geom::Point b) const {
  const auto path = route(a, b);
  return path ? path->length : kInf;
}

std::optional<RoutedPath> ObstacleRouter::route_sequence(
    std::span<const geom::Point> stops) const {
  RoutedPath combined;
  if (stops.size() < 2) {
    combined.waypoints.assign(stops.begin(), stops.end());
    return combined;
  }
  for (std::size_t i = 0; i + 1 < stops.size(); ++i) {
    const auto leg = route(stops[i], stops[i + 1]);
    if (!leg) {
      return std::nullopt;
    }
    combined.length += leg->length;
    const std::size_t skip = combined.waypoints.empty() ? 0 : 1;
    combined.waypoints.insert(
        combined.waypoints.end(),
        leg->waypoints.begin() + static_cast<std::ptrdiff_t>(skip),
        leg->waypoints.end());
  }
  return combined;
}

}  // namespace mdg::route

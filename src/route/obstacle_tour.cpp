#include "route/obstacle_tour.h"

#include <cmath>
#include <limits>

#include "tsp/matrix.h"
#include "util/assert.h"

namespace mdg::route {

std::optional<ObstacleTour> plan_obstacle_tour(
    const core::ShdgpInstance& instance, const core::ShdgpSolution& solution,
    const ObstacleRouter& router) {
  std::vector<geom::Point> stops{instance.sink()};
  stops.insert(stops.end(), solution.polling_points.begin(),
               solution.polling_points.end());
  const std::size_t n = stops.size();

  tsp::DistanceMatrix matrix(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = router.distance(stops[i], stops[j]);
      if (d == std::numeric_limits<double>::infinity()) {
        return std::nullopt;  // a stop is unreachable
      }
      matrix.set(i, j, d);
    }
  }

  ObstacleTour result;
  result.order = n > 0 ? tsp::solve_tsp_matrix(matrix) : tsp::Tour{};
  result.length = matrix.tour_length(result.order);
  result.euclidean_length = result.order.length(stops);

  // Expand into the drivable polyline.
  if (n >= 1) {
    std::vector<geom::Point> sequence;
    sequence.reserve(n + 1);
    for (std::size_t pos = 0; pos < result.order.size(); ++pos) {
      sequence.push_back(stops[result.order.at(pos)]);
    }
    sequence.push_back(stops[result.order.at(0)]);  // close the loop
    const auto path = router.route_sequence(sequence);
    MDG_ASSERT(path.has_value(),
               "legs were routable pairwise; the sequence must be too");
    result.polyline = path->waypoints;
    MDG_ASSERT(std::abs(path->length - result.length) <=
                   1e-6 * (1.0 + result.length),
               "polyline length must match the matrix tour length");
  }
  return result;
}

}  // namespace mdg::route

#include "route/obstacle_map.h"

#include <algorithm>

#include "geom/segment.h"
#include "util/assert.h"

namespace mdg::route {
namespace {

constexpr double kEps = 1e-9;

/// True when the open segment ab passes through the interior of `box`.
bool segment_crosses_interior(geom::Point a, geom::Point b,
                              const geom::Aabb& box) {
  // Quick reject: segment bounding box vs obstacle.
  if (std::max(a.x, b.x) <= box.lo.x + kEps ||
      std::min(a.x, b.x) >= box.hi.x - kEps ||
      std::max(a.y, b.y) <= box.lo.y + kEps ||
      std::min(a.y, b.y) >= box.hi.y - kEps) {
    return false;
  }
  // Clip the segment to the box (Liang–Barsky); the segment crosses the
  // interior iff a positive-length piece survives clipping to the open
  // box.
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  double t0 = 0.0;
  double t1 = 1.0;
  const auto clip = [&](double denom, double numer) {
    if (std::abs(denom) < kEps) {
      // Parallel to this boundary: survives iff already in its halfplane.
      return numer >= -kEps;
    }
    const double t = numer / denom;
    if (denom < 0.0) {
      t0 = std::max(t0, t);
    } else {
      t1 = std::min(t1, t);
    }
    return t0 < t1;
  };
  // -dx * t <= a.x - lo.x  etc. (standard Liang–Barsky inequalities).
  if (!clip(-dx, -(box.lo.x - a.x))) return false;
  if (!clip(dx, box.hi.x - a.x)) return false;
  if (!clip(-dy, -(box.lo.y - a.y))) return false;
  if (!clip(dy, box.hi.y - a.y)) return false;
  // Surviving span [t0, t1]: require a non-degenerate interior piece.
  if (t1 - t0 <= kEps) {
    return false;
  }
  // The clipped midpoint must be strictly inside (rules out sliding
  // along an edge).
  const geom::Point mid = geom::lerp(a, b, (t0 + t1) * 0.5);
  return mid.x > box.lo.x + kEps && mid.x < box.hi.x - kEps &&
         mid.y > box.lo.y + kEps && mid.y < box.hi.y - kEps;
}

}  // namespace

ObstacleMap::ObstacleMap(std::vector<geom::Aabb> obstacles)
    : obstacles_(std::move(obstacles)) {
  for (const geom::Aabb& box : obstacles_) {
    MDG_REQUIRE(box.width() > 0.0 && box.height() > 0.0,
                "obstacles must have positive area");
  }
}

bool ObstacleMap::inside_obstacle(geom::Point p) const {
  return std::any_of(obstacles_.begin(), obstacles_.end(),
                     [&](const geom::Aabb& box) {
                       return p.x > box.lo.x + kEps && p.x < box.hi.x - kEps &&
                              p.y > box.lo.y + kEps && p.y < box.hi.y - kEps;
                     });
}

bool ObstacleMap::blocks(geom::Point a, geom::Point b) const {
  return std::any_of(obstacles_.begin(), obstacles_.end(),
                     [&](const geom::Aabb& box) {
                       return segment_crosses_interior(a, b, box);
                     });
}

std::vector<geom::Point> ObstacleMap::waypoints(double margin) const {
  MDG_REQUIRE(margin >= 0.0, "margin cannot be negative");
  std::vector<geom::Point> corners;
  corners.reserve(obstacles_.size() * 4);
  for (const geom::Aabb& box : obstacles_) {
    corners.push_back({box.lo.x - margin, box.lo.y - margin});
    corners.push_back({box.hi.x + margin, box.lo.y - margin});
    corners.push_back({box.hi.x + margin, box.hi.y + margin});
    corners.push_back({box.lo.x - margin, box.hi.y + margin});
  }
  // Corners pushed into a *different* overlapping obstacle are unusable.
  std::vector<geom::Point> usable;
  usable.reserve(corners.size());
  for (const geom::Point& p : corners) {
    if (!inside_obstacle(p)) {
      usable.push_back(p);
    }
  }
  return usable;
}

std::vector<geom::Point> remove_covered_positions(
    std::span<const geom::Point> positions, const ObstacleMap& map) {
  std::vector<geom::Point> kept;
  kept.reserve(positions.size());
  for (const geom::Point& p : positions) {
    if (!map.inside_obstacle(p)) {
      kept.push_back(p);
    }
  }
  return kept;
}

}  // namespace mdg::route

// Obstacle model for collector routing: axis-aligned rectangular no-go
// zones (buildings, ponds, fenced plots).
//
// The planners select polling points from radio coverage alone; the
// *driving* between them must detour around obstacles. ObstacleMap
// answers the two geometric questions routing needs: is a point inside
// an obstacle, and does a straight leg cross one.
#pragma once

#include <span>
#include <vector>

#include "geom/aabb.h"
#include "geom/point.h"

namespace mdg::route {

class ObstacleMap {
 public:
  ObstacleMap() = default;

  /// Obstacles may overlap each other; each must have positive area.
  explicit ObstacleMap(std::vector<geom::Aabb> obstacles);

  [[nodiscard]] std::size_t size() const { return obstacles_.size(); }
  [[nodiscard]] bool empty() const { return obstacles_.empty(); }
  [[nodiscard]] const std::vector<geom::Aabb>& obstacles() const {
    return obstacles_;
  }

  /// True when p lies strictly inside some obstacle (boundary is
  /// drivable).
  [[nodiscard]] bool inside_obstacle(geom::Point p) const;

  /// True when the open segment ab crosses the interior of any obstacle.
  /// Touching a boundary or sliding along an edge is allowed.
  [[nodiscard]] bool blocks(geom::Point a, geom::Point b) const;

  /// Corner points of all obstacles, pushed outward by `margin` — the
  /// waypoint set for visibility routing (margin keeps waypoints off the
  /// boundary so floating-point grazing cannot flip blocks()).
  [[nodiscard]] std::vector<geom::Point> waypoints(double margin) const;

 private:
  std::vector<geom::Aabb> obstacles_;
};

/// Drops deployment positions that fall inside obstacles (sensors cannot
/// be installed inside a building footprint).
[[nodiscard]] std::vector<geom::Point> remove_covered_positions(
    std::span<const geom::Point> positions, const ObstacleMap& map);

}  // namespace mdg::route

#include "core/multi_collector.h"

#include <algorithm>
#include <limits>

#include "util/assert.h"

namespace mdg::core {

double subtour_length(geom::Point sink, std::span<const geom::Point> stops) {
  if (stops.empty()) {
    return 0.0;
  }
  double len = geom::distance(sink, stops.front());
  for (std::size_t i = 1; i < stops.size(); ++i) {
    len += geom::distance(stops[i - 1], stops[i]);
  }
  len += geom::distance(stops.back(), sink);
  return len;
}

namespace {

void refresh_lengths(geom::Point sink, MultiTourPlan& plan) {
  plan.max_length = 0.0;
  plan.total_length = 0.0;
  for (Subtour& st : plan.subtours) {
    st.length = subtour_length(sink, st.stops);
    plan.max_length = std::max(plan.max_length, st.length);
    plan.total_length += st.length;
  }
}

void reoptimize(geom::Point sink, Subtour& st, tsp::TspEffort effort) {
  if (st.stops.size() < 2) {
    return;
  }
  std::vector<geom::Point> pts;
  pts.reserve(st.stops.size() + 1);
  pts.push_back(sink);
  pts.insert(pts.end(), st.stops.begin(), st.stops.end());
  const tsp::TspResult routed = tsp::solve_tsp(pts, effort);
  std::vector<geom::Point> ordered;
  ordered.reserve(st.stops.size());
  for (std::size_t pos = 1; pos < routed.tour.size(); ++pos) {
    ordered.push_back(pts[routed.tour.at(pos)]);
  }
  st.stops = std::move(ordered);
}

/// Moves boundary stops between adjacent subtours while the max length
/// shrinks.
void rebalance(geom::Point sink, MultiTourPlan& plan, std::size_t passes) {
  for (std::size_t pass = 0; pass < passes; ++pass) {
    bool moved = false;
    for (std::size_t i = 0; i + 1 < plan.subtours.size(); ++i) {
      Subtour& a = plan.subtours[i];
      Subtour& b = plan.subtours[i + 1];
      // Try shifting a's last stop to the front of b, and vice versa;
      // accept whichever reduces max(len_a, len_b) the most.
      const double current = std::max(a.length, b.length);
      double best = current;
      int best_move = 0;  // +1: a->b, -1: b->a
      if (!a.stops.empty()) {
        std::vector<geom::Point> a2(a.stops.begin(), a.stops.end() - 1);
        std::vector<geom::Point> b2;
        b2.push_back(a.stops.back());
        b2.insert(b2.end(), b.stops.begin(), b.stops.end());
        const double cand = std::max(subtour_length(sink, a2),
                                     subtour_length(sink, b2));
        if (cand + 1e-9 < best) {
          best = cand;
          best_move = 1;
        }
      }
      if (!b.stops.empty()) {
        std::vector<geom::Point> b2(b.stops.begin() + 1, b.stops.end());
        std::vector<geom::Point> a2(a.stops.begin(), a.stops.end());
        a2.push_back(b.stops.front());
        const double cand = std::max(subtour_length(sink, a2),
                                     subtour_length(sink, b2));
        if (cand + 1e-9 < best) {
          best = cand;
          best_move = -1;
        }
      }
      if (best_move == 1) {
        b.stops.insert(b.stops.begin(), a.stops.back());
        a.stops.pop_back();
        moved = true;
      } else if (best_move == -1) {
        a.stops.push_back(b.stops.front());
        b.stops.erase(b.stops.begin());
        moved = true;
      }
      a.length = subtour_length(sink, a.stops);
      b.length = subtour_length(sink, b.stops);
    }
    if (!moved) {
      break;
    }
  }
  refresh_lengths(sink, plan);
}

}  // namespace

MultiTourPlan MultiCollectorPlanner::split(const ShdgpInstance& instance,
                                           const ShdgpSolution& solution,
                                           std::size_t k) const {
  MDG_REQUIRE(k >= 1, "need at least one collector");
  const geom::Point sink = instance.sink();

  // Polling points in single-tour visiting order (sink dropped).
  std::vector<geom::Point> route;
  route.reserve(solution.polling_points.size());
  {
    std::vector<geom::Point> all;
    all.push_back(sink);
    all.insert(all.end(), solution.polling_points.begin(),
               solution.polling_points.end());
    for (std::size_t pos = 1; pos < solution.tour.size(); ++pos) {
      route.push_back(all[solution.tour.at(pos)]);
    }
  }

  MultiTourPlan plan;
  plan.subtours.resize(k);
  if (route.empty()) {
    refresh_lengths(sink, plan);
    return plan;
  }
  if (k == 1) {
    plan.subtours[0].stops = route;
    refresh_lengths(sink, plan);
    return plan;
  }

  // k-SPLITOUR: cut the single tour at points chosen so each collector
  // gets roughly (L - 2*c_max)/k of the interior, where c_max is the
  // farthest stop from the sink.
  const double total = subtour_length(sink, route);
  double c_max = 0.0;
  for (geom::Point p : route) {
    c_max = std::max(c_max, geom::distance(sink, p));
  }
  // Cumulative tour position of each stop (distance travelled from the
  // sink when arriving at stop j along the single tour).
  std::vector<double> arrive(route.size());
  arrive[0] = geom::distance(sink, route[0]);
  for (std::size_t j = 1; j < route.size(); ++j) {
    arrive[j] = arrive[j - 1] + geom::distance(route[j - 1], route[j]);
  }

  std::size_t begin = 0;
  for (std::size_t j = 1; j < k; ++j) {
    // Last stop within the j-th length quota.
    const double quota =
        static_cast<double>(j) / static_cast<double>(k) * (total - 2.0 * c_max) +
        c_max;
    std::size_t end = begin;
    while (end < route.size() && arrive[end] <= quota) {
      ++end;
    }
    // Give every collector at least its boundary progress; allow empty
    // slices when quotas collapse (tiny tours).
    plan.subtours[j - 1].stops.assign(
        route.begin() + static_cast<std::ptrdiff_t>(begin),
        route.begin() + static_cast<std::ptrdiff_t>(end));
    begin = end;
  }
  plan.subtours[k - 1].stops.assign(
      route.begin() + static_cast<std::ptrdiff_t>(begin), route.end());

  refresh_lengths(sink, plan);
  if (options_.rebalance_passes > 0) {
    rebalance(sink, plan, options_.rebalance_passes);
  }
  if (options_.reoptimize_subtours) {
    for (Subtour& st : plan.subtours) {
      reoptimize(sink, st, options_.subtour_tsp_effort);
    }
    refresh_lengths(sink, plan);
  }
  return plan;
}

std::size_t MultiCollectorPlanner::collectors_for_deadline(
    const ShdgpInstance& instance, const ShdgpSolution& solution,
    double deadline_seconds, double speed_m_per_s,
    double service_time_s_per_stop) const {
  MDG_REQUIRE(deadline_seconds > 0.0, "deadline must be positive");
  MDG_REQUIRE(speed_m_per_s > 0.0, "collector speed must be positive");
  MDG_REQUIRE(service_time_s_per_stop >= 0.0,
              "service time cannot be negative");
  const std::size_t max_k = std::max<std::size_t>(
      1, solution.polling_points.size());
  for (std::size_t k = 1; k <= max_k; ++k) {
    const MultiTourPlan plan = split(instance, solution, k);
    double worst = 0.0;
    for (const Subtour& st : plan.subtours) {
      const double round_time =
          st.length / speed_m_per_s +
          static_cast<double>(st.stops.size()) * service_time_s_per_stop;
      worst = std::max(worst, round_time);
    }
    if (worst <= deadline_seconds) {
      return k;
    }
  }
  return 0;  // infeasible even with one collector per polling point
}

}  // namespace mdg::core

#include "core/tree_dominator_planner.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "cover/set_cover.h"
#include "graph/bfs.h"
#include "obs/names.h"
#include "obs/span.h"
#include "util/assert.h"

namespace mdg::core {

ShdgpSolution TreeDominatorPlanner::plan(const ShdgpInstance& instance) const {
  OBS_SPAN(obs::metric::kPlanTreeDominator);
  const auto& network = instance.network();
  const auto& matrix = instance.coverage();
  const std::size_t n = network.size();

  ShdgpSolution solution;
  solution.planner = name();
  if (n == 0) {
    route_collector(instance, solution, options_.tsp_effort);
    return solution;
  }

  // Sensor -> own-site candidate (required: dominators are sensors).
  std::vector<std::size_t> own_site(n, matrix.candidate_count());
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t c : matrix.covering(s)) {
      if (matrix.candidate(c) == network.position(s)) {
        own_site[s] = c;
        break;
      }
    }
    MDG_REQUIRE(own_site[s] != matrix.candidate_count(),
                "TreeDominatorPlanner needs sensor-site candidates");
  }

  // One BFS tree per component, rooted at the component's sink-nearest
  // sensor.
  const auto& components = network.components();
  std::vector<std::size_t> roots(components.count, n);
  std::vector<double> root_d2(components.count,
                              std::numeric_limits<double>::infinity());
  for (std::size_t s = 0; s < n; ++s) {
    const std::size_t comp = components.label[s];
    const double d2 = geom::distance_sq(network.position(s), network.sink());
    if (d2 < root_d2[comp]) {
      root_d2[comp] = d2;
      roots[comp] = s;
    }
  }
  const graph::BfsResult forest =
      graph::bfs_multi(network.connectivity(), roots);

  // Deepest-first sweep: process sensors by decreasing tree depth; an
  // unresolved sensor promotes its parent (or itself at the root) to
  // dominator, which also resolves every graph neighbour of the new
  // dominator.
  std::vector<std::size_t> order(n);
  for (std::size_t s = 0; s < n; ++s) {
    order[s] = s;
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (forest.hops[a] != forest.hops[b]) {
      return forest.hops[a] > forest.hops[b];
    }
    return a < b;
  });

  std::vector<bool> resolved(n, false);
  std::vector<bool> dominator(n, false);
  const auto promote = [&](std::size_t v) {
    if (dominator[v]) {
      return;
    }
    dominator[v] = true;
    resolved[v] = true;
    for (const graph::Arc& arc : network.connectivity().neighbors(v)) {
      resolved[arc.to] = true;
    }
  };
  for (std::size_t s : order) {
    if (resolved[s]) {
      continue;
    }
    const std::size_t parent = forest.parent[s];
    promote(parent == graph::kUnreachable ? s : parent);
    // The leaf itself is adjacent to its parent, hence resolved; an
    // isolated sensor promotes itself.
    MDG_ASSERT(resolved[s], "promotion must resolve the triggering sensor");
  }

  std::vector<std::size_t> selected;
  for (std::size_t s = 0; s < n; ++s) {
    if (dominator[s]) {
      selected.push_back(own_site[s]);
    }
  }
  std::sort(selected.begin(), selected.end());

  solution.polling_candidates = selected;
  solution.polling_points.reserve(selected.size());
  for (std::size_t c : selected) {
    solution.polling_points.push_back(matrix.candidate(c));
  }
  solution.assignment =
      cover::assign_nearest(matrix, network, solution.polling_candidates);
  route_collector(instance, solution, options_.tsp_effort);
  return solution;
}

}  // namespace mdg::core

// Exact SHDGP solver by branch-and-bound — the in-tree substitute for the
// CPLEX runs 2008-era papers used on small networks.
//
// Search space: subsets of candidate polling positions. Branching picks
// the uncovered sensor with the fewest covering candidates and tries each
// of them. Bounding uses the fact that an optimal tour over a point
// superset is never shorter than the optimal tour over the subset
// (triangle inequality), so the Held–Karp optimum over the already-chosen
// points + sink prunes whole subtrees against the incumbent.
//
// Practical only for small instances (the same regime as CPLEX in the
// paper): sensors <= 64, a handful of polling points in the optimum.
#pragma once

#include <cstddef>

#include "core/planner.h"

namespace mdg::core {

struct ExactPlannerOptions {
  /// Abort guarantee: after this many search nodes the best incumbent is
  /// returned with provably_optimal = false.
  std::size_t node_limit = 5'000'000;
  /// Hard cap on the polling points in any explored subset (chosen sets
  /// beyond kMaxExactTsp-1 stops cannot be routed exactly anyway).
  std::size_t max_polling_points = 12;
};

class ExactPlanner final : public Planner {
 public:
  explicit ExactPlanner(ExactPlannerOptions options = {})
      : options_(options) {}

  [[nodiscard]] std::string name() const override { return "exact-bnb"; }

  /// Requires instance.sensor_count() <= 64.
  [[nodiscard]] ShdgpSolution plan(
      const ShdgpInstance& instance) const override;

 private:
  ExactPlannerOptions options_;
};

}  // namespace mdg::core

#include "core/solution.h"

#include <algorithm>
#include <cmath>

#include "obs/names.h"
#include "obs/span.h"
#include "util/assert.h"

namespace mdg::core {

std::vector<geom::Point> ShdgpSolution::tour_coordinates(
    const ShdgpInstance& instance) const {
  std::vector<geom::Point> all;
  all.reserve(polling_points.size() + 1);
  all.push_back(instance.sink());
  all.insert(all.end(), polling_points.begin(), polling_points.end());
  return tour.to_points(all);
}

bool ShdgpSolution::uses_relays() const {
  return std::any_of(relay_paths.begin(), relay_paths.end(),
                     [](const std::vector<std::size_t>& path) {
                       return !path.empty();
                     });
}

std::size_t ShdgpSolution::upload_hops(std::size_t s) const {
  if (relay_hops == 0) {
    return 0;
  }
  if (s < relay_paths.size()) {
    return relay_paths[s].size() + 1;
  }
  return 1;
}

std::size_t ShdgpSolution::max_upload_hops() const {
  std::size_t worst = 0;
  for (std::size_t s = 0; s < assignment.size(); ++s) {
    worst = std::max(worst, upload_hops(s));
  }
  return worst;
}

std::size_t ShdgpSolution::relayed_sensor_count() const {
  std::size_t count = 0;
  for (const std::vector<std::size_t>& path : relay_paths) {
    count += path.empty() ? 0 : 1;
  }
  return count;
}

std::vector<std::size_t> ShdgpSolution::pp_loads() const {
  std::vector<std::size_t> loads(polling_points.size(), 0);
  for (std::size_t slot : assignment) {
    MDG_REQUIRE(slot < loads.size(), "assignment references a missing PP");
    ++loads[slot];
  }
  return loads;
}

std::size_t ShdgpSolution::max_pp_load() const {
  const auto loads = pp_loads();
  return loads.empty() ? 0 : *std::max_element(loads.begin(), loads.end());
}

double ShdgpSolution::avg_pp_load() const {
  if (polling_points.empty()) {
    return 0.0;
  }
  return static_cast<double>(assignment.size()) /
         static_cast<double>(polling_points.size());
}

double ShdgpSolution::mean_upload_distance(
    const ShdgpInstance& instance) const {
  if (assignment.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (std::size_t s = 0; s < assignment.size(); ++s) {
    sum += geom::distance(instance.network().position(s),
                          polling_points[assignment[s]]);
  }
  return sum / static_cast<double>(assignment.size());
}

void ShdgpSolution::validate(const ShdgpInstance& instance) const {
  const auto& network = instance.network();
  const auto& matrix = instance.coverage();

  MDG_ASSERT(polling_candidates.size() == polling_points.size(),
             "candidate ids and positions must be parallel");
  for (std::size_t i = 0; i < polling_candidates.size(); ++i) {
    const std::size_t c = polling_candidates[i];
    if (c == kFreeformCandidate) {
      continue;  // free position: range feasibility is checked below
    }
    MDG_ASSERT(c < matrix.candidate_count(), "unknown candidate id");
    MDG_ASSERT(matrix.candidate(c) == polling_points[i],
               "polling point position does not match its candidate");
  }

  MDG_ASSERT(assignment.size() == network.size(),
             "every sensor needs an assignment");
  MDG_ASSERT(relay_paths.empty() || relay_paths.size() == network.size(),
             "relay_paths must be empty or cover every sensor");
  const std::size_t budget = std::max<std::size_t>(relay_hops, 1);
  for (std::size_t s = 0; s < assignment.size(); ++s) {
    MDG_ASSERT(assignment[s] < polling_points.size(),
               "assignment out of range");
    const geom::Point pp = polling_points[assignment[s]];
    const std::vector<std::size_t> no_path;
    const std::vector<std::size_t>& path =
        s < relay_paths.size() ? relay_paths[s] : no_path;
    MDG_ASSERT(path.size() + 1 <= budget,
               "relay path exceeds the relay-hop budget");
    if (relay_hops == 0) {
      MDG_ASSERT(path.empty() && network.position(s) == pp,
                 "relay-hops 0 requires the collector to pause at the "
                 "sensor");
      continue;
    }
    // Walk the chain sensor -> relays -> polling point; every leg must
    // be a valid radio hop.
    geom::Point from = network.position(s);
    for (std::size_t r : path) {
      MDG_ASSERT(r < network.size(), "relay id out of range");
      MDG_ASSERT(r != s, "a sensor cannot relay its own packet");
      MDG_ASSERT(geom::within_range(from, network.position(r),
                                    network.range()),
                 "relay leg exceeds the transmission range");
      from = network.position(r);
    }
    MDG_ASSERT(geom::within_range(from, pp, network.range()),
               "upload chain cannot reach the polling point");
  }

  // Tour over sink + PPs with the sink at position 0.
  MDG_ASSERT(tour.size() == polling_points.size() + 1,
             "tour must visit the sink and every PP exactly once");
  MDG_ASSERT(tour.at(0) == 0, "tour must start at the sink");
  std::vector<geom::Point> all;
  all.push_back(instance.sink());
  all.insert(all.end(), polling_points.begin(), polling_points.end());
  const double measured = tour.length(all);
  MDG_ASSERT(std::abs(measured - tour_length) <= 1e-6 * (1.0 + measured),
             "recorded tour length is stale");
}

void route_collector(const ShdgpInstance& instance, ShdgpSolution& solution,
                     tsp::TspEffort effort) {
  route_collector(instance, solution, tsp::TspSolveOptions{.effort = effort});
}

void route_collector(const ShdgpInstance& instance, ShdgpSolution& solution,
                     const tsp::TspSolveOptions& options) {
  OBS_SPAN(obs::metric::kRouteCollector);
  std::vector<geom::Point> all;
  all.reserve(solution.polling_points.size() + 1);
  all.push_back(instance.sink());
  all.insert(all.end(), solution.polling_points.begin(),
             solution.polling_points.end());
  tsp::TspResult routed = tsp::solve_tsp(all, options);
  solution.tour = std::move(routed.tour);
  solution.tour_length = routed.length;
}

}  // namespace mdg::core

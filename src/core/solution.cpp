#include "core/solution.h"

#include <algorithm>
#include <cmath>

#include "obs/names.h"
#include "obs/span.h"
#include "util/assert.h"

namespace mdg::core {

std::vector<geom::Point> ShdgpSolution::tour_coordinates(
    const ShdgpInstance& instance) const {
  std::vector<geom::Point> all;
  all.reserve(polling_points.size() + 1);
  all.push_back(instance.sink());
  all.insert(all.end(), polling_points.begin(), polling_points.end());
  return tour.to_points(all);
}

std::vector<std::size_t> ShdgpSolution::pp_loads() const {
  std::vector<std::size_t> loads(polling_points.size(), 0);
  for (std::size_t slot : assignment) {
    MDG_REQUIRE(slot < loads.size(), "assignment references a missing PP");
    ++loads[slot];
  }
  return loads;
}

std::size_t ShdgpSolution::max_pp_load() const {
  const auto loads = pp_loads();
  return loads.empty() ? 0 : *std::max_element(loads.begin(), loads.end());
}

double ShdgpSolution::avg_pp_load() const {
  if (polling_points.empty()) {
    return 0.0;
  }
  return static_cast<double>(assignment.size()) /
         static_cast<double>(polling_points.size());
}

double ShdgpSolution::mean_upload_distance(
    const ShdgpInstance& instance) const {
  if (assignment.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (std::size_t s = 0; s < assignment.size(); ++s) {
    sum += geom::distance(instance.network().position(s),
                          polling_points[assignment[s]]);
  }
  return sum / static_cast<double>(assignment.size());
}

void ShdgpSolution::validate(const ShdgpInstance& instance) const {
  const auto& network = instance.network();
  const auto& matrix = instance.coverage();

  MDG_ASSERT(polling_candidates.size() == polling_points.size(),
             "candidate ids and positions must be parallel");
  for (std::size_t i = 0; i < polling_candidates.size(); ++i) {
    const std::size_t c = polling_candidates[i];
    if (c == kFreeformCandidate) {
      continue;  // free position: range feasibility is checked below
    }
    MDG_ASSERT(c < matrix.candidate_count(), "unknown candidate id");
    MDG_ASSERT(matrix.candidate(c) == polling_points[i],
               "polling point position does not match its candidate");
  }

  MDG_ASSERT(assignment.size() == network.size(),
             "every sensor needs an assignment");
  for (std::size_t s = 0; s < assignment.size(); ++s) {
    MDG_ASSERT(assignment[s] < polling_points.size(),
               "assignment out of range");
    MDG_ASSERT(geom::within_range(network.position(s),
                                  polling_points[assignment[s]],
                                  network.range()),
               "sensor cannot reach its polling point in one hop");
  }

  // Tour over sink + PPs with the sink at position 0.
  MDG_ASSERT(tour.size() == polling_points.size() + 1,
             "tour must visit the sink and every PP exactly once");
  MDG_ASSERT(tour.at(0) == 0, "tour must start at the sink");
  std::vector<geom::Point> all;
  all.push_back(instance.sink());
  all.insert(all.end(), polling_points.begin(), polling_points.end());
  const double measured = tour.length(all);
  MDG_ASSERT(std::abs(measured - tour_length) <= 1e-6 * (1.0 + measured),
             "recorded tour length is stale");
}

void route_collector(const ShdgpInstance& instance, ShdgpSolution& solution,
                     tsp::TspEffort effort) {
  route_collector(instance, solution, tsp::TspSolveOptions{.effort = effort});
}

void route_collector(const ShdgpInstance& instance, ShdgpSolution& solution,
                     const tsp::TspSolveOptions& options) {
  OBS_SPAN(obs::metric::kRouteCollector);
  std::vector<geom::Point> all;
  all.reserve(solution.polling_points.size() + 1);
  all.push_back(instance.sink());
  all.insert(all.end(), solution.polling_points.begin(),
             solution.polling_points.end());
  tsp::TspResult routed = tsp::solve_tsp(all, options);
  solution.tour = std::move(routed.tour);
  solution.tour_length = routed.length;
}

}  // namespace mdg::core

#include "core/spanning_tour_planner.h"

#include <algorithm>
#include <limits>

#include "cover/set_cover.h"
#include "obs/names.h"
#include "obs/span.h"
#include "util/assert.h"

namespace mdg::core {
namespace {

/// Sorted-vector intersection.
std::vector<std::size_t> intersect(const std::vector<std::size_t>& a,
                                   const std::vector<std::size_t>& b) {
  std::vector<std::size_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

/// Candidate from `pool` nearest to `target`.
std::size_t nearest_candidate(const cover::CoverageMatrix& matrix,
                              const std::vector<std::size_t>& pool,
                              geom::Point target) {
  MDG_ASSERT(!pool.empty(), "cannot pick from an empty candidate pool");
  std::size_t best = pool.front();
  double best_d2 = std::numeric_limits<double>::infinity();
  for (std::size_t c : pool) {
    const double d2 = geom::distance_sq(matrix.candidate(c), target);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = c;
    }
  }
  return best;
}

}  // namespace

ShdgpSolution SpanningTourPlanner::plan(const ShdgpInstance& instance) const {
  OBS_SPAN(obs::metric::kPlanSpanningTour);
  const auto& network = instance.network();
  const auto& matrix = instance.coverage();
  const std::size_t n = network.size();

  ShdgpSolution solution;
  solution.planner = name();
  if (n == 0) {
    solution.assignment.clear();
    route_collector(instance, solution, options_.final_tsp_effort);
    return solution;
  }

  // --- Step 1: visiting order over all sensors (sink as depot). ---
  std::vector<geom::Point> all_points;
  all_points.reserve(n + 1);
  all_points.push_back(instance.sink());
  all_points.insert(all_points.end(), network.positions().begin(),
                    network.positions().end());
  const tsp::TspResult initial =
      tsp::solve_tsp(all_points, options_.initial_tsp_effort);
  // Sensor visit sequence (tour indices shifted by the sink slot).
  std::vector<std::size_t> sequence;
  sequence.reserve(n);
  for (std::size_t pos = 0; pos < initial.tour.size(); ++pos) {
    const std::size_t idx = initial.tour.at(pos);
    if (idx != 0) {
      sequence.push_back(idx - 1);
    }
  }

  // --- Step 2: COMBINE consecutive sensors while a single candidate can
  // cover the whole group. ---
  std::vector<std::size_t> selected;  // candidate ids, possibly duplicated
  std::vector<std::size_t> group;     // sensors of the open group
  std::vector<std::size_t> pool;      // candidates covering the open group
  const auto close_group = [&] {
    if (group.empty()) {
      return;
    }
    std::vector<geom::Point> members;
    members.reserve(group.size());
    for (std::size_t s : group) {
      members.push_back(network.position(s));
    }
    selected.push_back(
        nearest_candidate(matrix, pool, geom::centroid(members)));
    group.clear();
    pool.clear();
  };
  for (std::size_t s : sequence) {
    if (group.empty()) {
      group.push_back(s);
      pool = matrix.covering(s);
      continue;
    }
    if (options_.combine) {
      std::vector<std::size_t> narrowed = intersect(pool, matrix.covering(s));
      if (!narrowed.empty()) {
        group.push_back(s);
        pool = std::move(narrowed);
        continue;
      }
    }
    close_group();
    group.push_back(s);
    pool = matrix.covering(s);
  }
  close_group();

  // Deduplicate selections (two groups may agree on one candidate).
  std::sort(selected.begin(), selected.end());
  selected.erase(std::unique(selected.begin(), selected.end()),
                 selected.end());

  // cnt[s] = number of selected candidates covering sensor s.
  std::vector<std::size_t> cnt(n, 0);
  const auto recount = [&] {
    std::fill(cnt.begin(), cnt.end(), 0);
    for (std::size_t c : selected) {
      for (std::size_t s : matrix.covered_by(c)) {
        ++cnt[s];
      }
    }
  };
  recount();

  // --- Step 3: SKIP redundant polling points. ---
  if (options_.skip) {
    bool removed = true;
    while (removed) {
      removed = false;
      // Try the least-loaded points first: they are the cheapest to lose.
      std::vector<std::size_t> order(selected.size());
      for (std::size_t i = 0; i < order.size(); ++i) {
        order[i] = i;
      }
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return matrix.covered_by(selected[a]).size() <
               matrix.covered_by(selected[b]).size();
      });
      for (std::size_t slot : order) {
        const std::size_t c = selected[slot];
        const auto& covered = matrix.covered_by(c);
        const bool removable =
            std::all_of(covered.begin(), covered.end(),
                        [&](std::size_t s) { return cnt[s] >= 2; });
        if (removable) {
          for (std::size_t s : covered) {
            --cnt[s];
          }
          selected.erase(selected.begin() +
                         static_cast<std::ptrdiff_t>(slot));
          removed = true;
          break;  // indices shifted; restart the sweep
        }
      }
    }
  }

  // --- Step 4: SUBSTITUTE points to shorten the local detour. ---
  if (options_.substitute && !selected.empty()) {
    for (std::size_t pass = 0; pass < options_.substitute_passes; ++pass) {
      // Route over the current selection to know each point's neighbours.
      std::vector<geom::Point> stops;
      stops.reserve(selected.size() + 1);
      stops.push_back(instance.sink());
      for (std::size_t c : selected) {
        stops.push_back(matrix.candidate(c));
      }
      const tsp::TspResult routed =
          tsp::solve_tsp(stops, tsp::TspEffort::kTwoOpt);

      bool changed = false;
      for (std::size_t pos = 0; pos < routed.tour.size(); ++pos) {
        const std::size_t stop_idx = routed.tour.at(pos);
        if (stop_idx == 0) {
          continue;  // the sink is immovable
        }
        const std::size_t slot = stop_idx - 1;
        const std::size_t current = selected[slot];
        // Private sensors: only `current` covers them among selected.
        std::vector<std::size_t> privates;
        for (std::size_t s : matrix.covered_by(current)) {
          if (cnt[s] == 1) {
            privates.push_back(s);
          }
        }
        // Replacement pool: candidates covering all private sensors.
        std::vector<std::size_t> pool2;
        if (privates.empty()) {
          continue;  // skip pass already decides these
        }
        pool2 = matrix.covering(privates.front());
        for (std::size_t i = 1; i < privates.size() && !pool2.empty(); ++i) {
          pool2 = intersect(pool2, matrix.covering(privates[i]));
        }
        if (pool2.size() <= 1) {
          continue;
        }
        const geom::Point prev =
            stops[routed.tour.at((pos + routed.tour.size() - 1) %
                                 routed.tour.size())];
        const geom::Point next = stops[routed.tour.at(routed.tour.next_pos(pos))];
        const auto detour = [&](geom::Point p) {
          return geom::distance(prev, p) + geom::distance(p, next);
        };
        std::size_t best = current;
        double best_detour = detour(matrix.candidate(current)) - 1e-12;
        for (std::size_t c : pool2) {
          if (c == current) {
            continue;
          }
          const double d = detour(matrix.candidate(c));
          if (d < best_detour) {
            best_detour = d;
            best = c;
          }
        }
        if (best != current &&
            std::find(selected.begin(), selected.end(), best) ==
                selected.end()) {
          selected[slot] = best;
          recount();
          changed = true;
        }
      }
      if (!changed) {
        break;
      }
    }
  }

  // --- Step 5: final routing + nearest assignment. ---
  solution.polling_candidates = selected;
  solution.polling_points.reserve(selected.size());
  for (std::size_t c : selected) {
    solution.polling_points.push_back(matrix.candidate(c));
  }
  solution.assignment =
      cover::assign_nearest(matrix, network, solution.polling_candidates);
  route_collector(instance, solution, options_.final_tsp_effort);
  return solution;
}

}  // namespace mdg::core

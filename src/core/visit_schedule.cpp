#include "core/visit_schedule.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace mdg::core {
namespace {

double leg_time(double distance, const ScheduleConfig& config) {
  const double v = config.speed_m_per_s;
  const double a = config.accel_m_per_s2;
  if (a == 0.0) {
    return distance / v;
  }
  const double ramp = v * v / a;
  return distance >= ramp ? distance / v + v / a
                          : 2.0 * std::sqrt(distance / a);
}

}  // namespace

VisitSchedule::VisitSchedule(const ShdgpInstance& instance,
                             const ShdgpSolution& solution,
                             ScheduleConfig config)
    : config_(config) {
  MDG_REQUIRE(config.speed_m_per_s > 0.0, "collector speed must be positive");
  MDG_REQUIRE(config.accel_m_per_s2 >= 0.0,
              "acceleration cannot be negative");
  MDG_REQUIRE(config.packet_upload_s >= 0.0, "upload time cannot be negative");
  MDG_REQUIRE(config.guard_s >= 0.0, "guard cannot be negative");
  solution.validate(instance);

  const std::size_t n = instance.sensor_count();
  wake_.assign(n, 0.0);
  sleep_.assign(n, 0.0);

  // Affiliations per polling-point slot, deterministic upload order.
  std::vector<std::vector<std::size_t>> by_slot(
      solution.polling_points.size());
  for (std::size_t s = 0; s < n; ++s) {
    by_slot[solution.assignment[s]].push_back(s);
  }

  std::vector<geom::Point> all{instance.sink()};
  all.insert(all.end(), solution.polling_points.begin(),
             solution.polling_points.end());

  double clock = 0.0;
  geom::Point where = instance.sink();
  for (std::size_t pos = 1; pos < solution.tour.size(); ++pos) {
    const std::size_t idx = solution.tour.at(pos);
    StopVisit visit;
    visit.position = all[idx];
    visit.sensors = by_slot[idx - 1];
    clock += leg_time(geom::distance(where, visit.position), config_);
    visit.arrival_s = clock;
    // Upload slots in order: sensor i's slot ends at arrival + (i+1)*t.
    for (std::size_t i = 0; i < visit.sensors.size(); ++i) {
      const std::size_t s = visit.sensors[i];
      wake_[s] = std::max(0.0, visit.arrival_s - config_.guard_s);
      sleep_[s] = visit.arrival_s +
                  static_cast<double>(i + 1) * config_.packet_upload_s +
                  config_.guard_s;
    }
    clock += static_cast<double>(visit.sensors.size()) *
             config_.packet_upload_s;
    visit.departure_s = clock;
    where = visit.position;
    stops_.push_back(std::move(visit));
  }
  clock += leg_time(geom::distance(where, instance.sink()), config_);
  round_duration_ = clock;

  // Clamp listen windows into the round.
  for (std::size_t s = 0; s < n; ++s) {
    sleep_[s] = std::min(sleep_[s], round_duration_);
  }
}

double VisitSchedule::wake_time(std::size_t sensor) const {
  MDG_REQUIRE(sensor < wake_.size(), "sensor index out of range");
  return wake_[sensor];
}

double VisitSchedule::sleep_time(std::size_t sensor) const {
  MDG_REQUIRE(sensor < sleep_.size(), "sensor index out of range");
  return sleep_[sensor];
}

double VisitSchedule::duty_cycle(std::size_t sensor) const {
  MDG_REQUIRE(sensor < wake_.size(), "sensor index out of range");
  if (round_duration_ <= 0.0) {
    return 1.0;
  }
  return (sleep_[sensor] - wake_[sensor]) / round_duration_;
}

double VisitSchedule::average_duty_cycle() const {
  if (wake_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (std::size_t s = 0; s < wake_.size(); ++s) {
    sum += duty_cycle(s);
  }
  return sum / static_cast<double>(wake_.size());
}

}  // namespace mdg::core

// Planner interface: every SHDGP algorithm maps an instance to a
// validated solution.
#pragma once

#include <memory>
#include <string>

#include "core/instance.h"
#include "core/solution.h"

namespace mdg::core {

class Planner {
 public:
  virtual ~Planner() = default;

  /// Human-readable algorithm name (used in tables).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Produces a feasible SHDGP solution. Implementations must return a
  /// solution that passes ShdgpSolution::validate.
  [[nodiscard]] virtual ShdgpSolution plan(
      const ShdgpInstance& instance) const = 0;
};

}  // namespace mdg::core

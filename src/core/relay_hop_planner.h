// Bounded-relay-hop SHDGP planner (d-hop SHDGP / BRH-DGP).
//
// The follow-up literature generalizes single-hop data gathering: a
// sensor may forward its packet through up to d - 1 intermediate
// sensors to the paused collector, so the polling points only need to
// form a *d-hop dominating set* of the communication graph. Fewer
// stops, shorter tour — paid for in per-sensor relay energy (the trade
// bench_b1_relay sweeps).
//
// The planner reuses the existing machinery end to end: the d-hop
// coverage relation is cover::CoverageMatrix::expand_relay_hops over
// the CSR connectivity graph (src/graph/khop), polling points come from
// the same lazy-greedy set cover as GreedyCoverPlanner, and the tour is
// routed by the unchanged construction/improve stack. The regression
// anchor (CI-gated): with relay_hops = 1 the d-hop relation *is* the
// single-hop relation, so the planner's canonical plan bytes are
// byte-identical to GreedyCoverPlanner's on every instance.
#pragma once

#include "core/planner.h"
#include "tsp/solve.h"

namespace mdg::core {

struct RelayHopPlannerOptions {
  /// Relay budget d (total hops sensor -> collector). 1 = single-hop
  /// SHDGP, byte-identical to GreedyCoverPlanner; 0 = pause at every
  /// sensor site; >= 2 enables relaying.
  std::size_t relay_hops = 1;
  tsp::TspEffort tsp_effort = tsp::TspEffort::kFull;
  /// Multi-start portfolio width for the routing phase (0/1 = single).
  std::size_t tsp_multi_starts = 0;
  /// Prefer candidates closer to the sink among equal-coverage ones.
  bool tie_break_toward_sink = true;
  /// Upper bound on sensors affiliated with one polling point (0 = no
  /// bound), counting relayed sensors against their polling point.
  std::size_t max_pp_load = 0;
};

class RelayHopPlanner final : public Planner {
 public:
  explicit RelayHopPlanner(RelayHopPlannerOptions options = {})
      : options_(options) {}

  [[nodiscard]] std::string name() const override { return "relay-hop"; }
  [[nodiscard]] ShdgpSolution plan(
      const ShdgpInstance& instance) const override;

  [[nodiscard]] const RelayHopPlannerOptions& options() const {
    return options_;
  }

 private:
  RelayHopPlannerOptions options_;
};

}  // namespace mdg::core

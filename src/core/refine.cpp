#include "core/refine.h"

#include <algorithm>
#include <vector>

#include "obs/names.h"
#include "obs/span.h"
#include "util/assert.h"

namespace mdg::core {
namespace {

/// Closest point to p on the segment ab.
geom::Point project_onto_segment(geom::Point p, geom::Point a,
                                 geom::Point b) {
  const geom::Point ab = b - a;
  const double len2 = geom::dot(ab, ab);
  if (len2 == 0.0) {
    return a;
  }
  const double t = std::clamp(geom::dot(p - a, ab) / len2, 0.0, 1.0);
  return a + ab * t;
}

}  // namespace

std::size_t refine_polling_positions(const ShdgpInstance& instance,
                                     ShdgpSolution& solution,
                                     const RefineOptions& options) {
  OBS_SPAN(obs::metric::kRefineSlide);
  MDG_REQUIRE(options.passes >= 1, "need at least one pass");
  MDG_REQUIRE(options.tolerance > 0.0 && options.tolerance < 1.0,
              "tolerance must be in (0, 1)");
  solution.validate(instance);
  const auto& network = instance.network();
  const double rs = network.range();

  // Sensors per polling-point slot.
  std::vector<std::vector<std::size_t>> assigned(
      solution.polling_points.size());
  for (std::size_t s = 0; s < solution.assignment.size(); ++s) {
    assigned[solution.assignment[s]].push_back(s);
  }
  const auto covers_all = [&](geom::Point p, std::size_t slot) {
    for (std::size_t s : assigned[slot]) {
      if (!geom::within_range(network.position(s), p, rs)) {
        return false;
      }
    }
    return true;
  };

  // Stop coordinates in tour order: index 0 is the sink.
  std::vector<geom::Point> coords{instance.sink()};
  coords.insert(coords.end(), solution.polling_points.begin(),
                solution.polling_points.end());

  std::size_t moves = 0;
  for (std::size_t pass = 0; pass < options.passes; ++pass) {
    bool changed = false;
    for (std::size_t pos = 0; pos < solution.tour.size(); ++pos) {
      const std::size_t idx = solution.tour.at(pos);
      if (idx == 0) {
        continue;  // the sink is immovable
      }
      const std::size_t slot = idx - 1;
      const geom::Point prev =
          coords[solution.tour.at((pos + solution.tour.size() - 1) %
                                  solution.tour.size())];
      const geom::Point next = coords[solution.tour.at(
          solution.tour.next_pos(pos))];
      const geom::Point current = coords[idx];
      // The detour-optimal position for fixed neighbours is the
      // projection of the current point onto the chord prev-next. The
      // feasibility region (disk intersection) is convex and contains
      // `current`, so the feasible part of the segment
      // current -> target is a prefix: binary search the farthest
      // feasible step.
      const geom::Point target = project_onto_segment(current, prev, next);
      if (geom::distance_sq(target, current) < 1e-12) {
        continue;
      }
      double lo = 0.0;  // feasible
      double hi = 1.0;
      if (covers_all(target, slot)) {
        lo = 1.0;
      } else {
        while (hi - lo > options.tolerance) {
          const double mid = (lo + hi) / 2.0;
          if (covers_all(geom::lerp(current, target, mid), slot)) {
            lo = mid;
          } else {
            hi = mid;
          }
        }
      }
      if (lo <= 0.0) {
        continue;
      }
      const geom::Point moved = geom::lerp(current, target, lo);
      const double before = geom::distance(prev, current) +
                            geom::distance(current, next);
      const double after =
          geom::distance(prev, moved) + geom::distance(moved, next);
      if (after + 1e-9 < before) {
        coords[idx] = moved;
        solution.polling_points[slot] = moved;
        solution.polling_candidates[slot] =
            ShdgpSolution::kFreeformCandidate;
        ++moves;
        changed = true;
      }
    }
    if (changed && options.reoptimize_tour) {
      // The slide changed the stop geometry; hand the tour back to the
      // shared improvement kernel before the next slide pass.
      tsp::improve(solution.tour, coords, options.improve);
    }
    if (!changed) {
      break;
    }
  }

  solution.tour_length = solution.tour.length(coords);
  solution.validate(instance);
  MDG_OBS_COUNT(obs::metric::kRefineMoves, moves);
  return moves;
}

}  // namespace mdg::core

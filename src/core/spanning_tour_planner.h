// Spanning-tour SHDGP planner (combine / skip / substitute).
//
// Tour-first reconstruction of the paper's heuristic family:
//   1. Build a tour over *all* sensor sites (the direct-visit tour).
//   2. COMBINE consecutive sensors along the tour into groups while one
//      candidate position can still cover the whole group; each group
//      yields one polling point.
//   3. SKIP polling points whose sensors are all covered by other
//      selected points.
//   4. SUBSTITUTE each polling point by the candidate that still covers
//      its private sensors while minimising the local tour detour.
//   5. Re-route the collector over the surviving polling points.
// Steps 2-4 are individually toggleable for the A2 ablation bench.
#pragma once

#include "core/planner.h"
#include "tsp/solve.h"

namespace mdg::core {

struct SpanningTourPlannerOptions {
  bool combine = true;
  bool skip = true;
  bool substitute = true;
  /// Effort for the initial all-sensors tour (kept cheap by default: the
  /// tour only seeds grouping).
  tsp::TspEffort initial_tsp_effort = tsp::TspEffort::kTwoOpt;
  /// Effort for the final collector tour.
  tsp::TspEffort final_tsp_effort = tsp::TspEffort::kFull;
  /// Maximum substitute sweeps.
  std::size_t substitute_passes = 3;
};

class SpanningTourPlanner final : public Planner {
 public:
  explicit SpanningTourPlanner(SpanningTourPlannerOptions options = {})
      : options_(options) {}

  [[nodiscard]] std::string name() const override { return "spanning-tour"; }
  [[nodiscard]] ShdgpSolution plan(
      const ShdgpInstance& instance) const override;

 private:
  SpanningTourPlannerOptions options_;
};

}  // namespace mdg::core

#include "core/plan_many.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/span.h"
#include "util/thread_pool.h"

namespace mdg::core {

namespace {

/// Below this many instances the pool handoff costs more than it saves.
constexpr std::size_t kParallelPlanBelow = 2;

}  // namespace

std::vector<ShdgpSolution> plan_many(const Planner& planner,
                                     std::span<const ShdgpInstance> instances) {
  OBS_SPAN(obs::metric::kPlanMany);
  const std::size_t threads =
      instances.size() >= kParallelPlanBelow
          ? std::min(planning_threads(), instances.size())
          : 1;
  MDG_OBS_GAUGE(obs::metric::kPlanManyThreads, static_cast<double>(threads));
  std::vector<ShdgpSolution> results(instances.size());
  if (threads <= 1) {
    for (std::size_t i = 0; i < instances.size(); ++i) {
      results[i] = planner.plan(instances[i]);
    }
  } else {
    parallel_for(instances.size(),
                 [&](std::size_t i) { results[i] = planner.plan(instances[i]); });
  }
  return results;
}

}  // namespace mdg::core

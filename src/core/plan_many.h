// Batch planning: fan a set of SHDGP instances across the planning
// thread pool.
//
// Bench sweeps and Monte-Carlo harnesses plan hundreds of independent
// instances back to back; plan_many runs them concurrently while
// keeping the output deterministic — results[i] is exactly what
// planner.plan(instances[i]) returns serially, because every worker
// writes only its own slot and planners are stateless by contract.
#pragma once

#include <span>
#include <vector>

#include "core/planner.h"

namespace mdg::core {

/// Plans every instance with `planner`; results[i] corresponds to
/// instances[i]. Uses up to planning_threads() workers (serial below a
/// small batch cutoff — see ALGORITHMS.md §cutoffs). The planner must be
/// safe to call concurrently from several threads (every in-tree planner
/// is: plan() is const and the planners hold only configuration).
[[nodiscard]] std::vector<ShdgpSolution> plan_many(
    const Planner& planner, std::span<const ShdgpInstance> instances);

}  // namespace mdg::core

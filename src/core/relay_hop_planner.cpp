#include "core/relay_hop_planner.h"

#include <algorithm>
#include <optional>

#include "cover/set_cover.h"
#include "graph/bfs.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/span.h"
#include "util/assert.h"

namespace mdg::core {
namespace {

/// Shortest relay paths for every sensor of one polling point: a
/// multi-source BFS from the candidate's single-hop cover set (the
/// sensors that can upload to the paused collector directly) assigns
/// each relayed sensor the parent chain toward the nearest such sensor.
/// Sources are sorted ascending, the CSR adjacency is deterministic,
/// and the rows are slot-exclusive — byte-identical at any thread count.
void assign_relay_paths(const ShdgpInstance& instance,
                        ShdgpSolution& solution, std::size_t relay_hops) {
  const net::SensorNetwork& network = instance.network();
  const cover::CoverageMatrix& base = instance.coverage();
  solution.relay_paths.assign(network.size(), {});

  // Sensors grouped by assigned polling-point slot.
  std::vector<std::vector<std::size_t>> by_slot(
      solution.polling_candidates.size());
  for (std::size_t s = 0; s < solution.assignment.size(); ++s) {
    by_slot[solution.assignment[s]].push_back(s);
  }

  const graph::Graph& g = network.connectivity();
  for (std::size_t slot = 0; slot < by_slot.size(); ++slot) {
    const std::size_t c = solution.polling_candidates[slot];
    MDG_ASSERT(c != ShdgpSolution::kFreeformCandidate,
               "relay planning selects concrete candidates");
    const std::vector<std::size_t>& direct = base.covered_by(c);
    // Does anyone at this stop need a relay at all?
    const bool all_direct = std::all_of(
        by_slot[slot].begin(), by_slot[slot].end(), [&](std::size_t s) {
          return std::binary_search(direct.begin(), direct.end(), s);
        });
    if (all_direct) {
      continue;
    }
    const graph::BfsResult bfs = graph::bfs_multi(g, direct);
    for (std::size_t s : by_slot[slot]) {
      if (std::binary_search(direct.begin(), direct.end(), s)) {
        continue;  // single-hop upload
      }
      MDG_ASSERT(bfs.reachable(s) && bfs.hops[s] + 1 <= relay_hops,
                 "assigned sensor is outside the d-hop coverage of its "
                 "polling point");
      std::vector<std::size_t>& path = solution.relay_paths[s];
      std::size_t v = s;
      while (bfs.hops[v] > 0) {
        v = bfs.parent[v];
        path.push_back(v);
      }
    }
  }
  if (!solution.uses_relays()) {
    solution.relay_paths.clear();  // legacy representation
  }
}

}  // namespace

ShdgpSolution RelayHopPlanner::plan(const ShdgpInstance& instance) const {
  OBS_SPAN(obs::metric::kPlanRelayHop);
  const std::size_t d = options_.relay_hops;

  // d = 1 uses the instance's own matrix — the byte-identity anchor
  // shares every structure with GreedyCoverPlanner, not a copy of it.
  const cover::CoverageMatrix* matrix = &instance.coverage();
  std::optional<cover::CoverageMatrix> expanded;
  if (d != 1) {
    expanded = cover::CoverageMatrix::expand_relay_hops(
        instance.coverage(), instance.network(), d);
    matrix = &*expanded;
  }

  cover::GreedyOptions greedy;
  greedy.tie_break_toward_anchor = options_.tie_break_toward_sink;
  greedy.anchor = instance.sink();
  const cover::SetCoverResult cover_result =
      cover::greedy_set_cover(*matrix, instance.network(), greedy);

  ShdgpSolution solution;
  solution.planner = name();
  solution.relay_hops = d;
  solution.polling_candidates = cover_result.selected;
  solution.assignment = cover_result.assignment;
  if (options_.max_pp_load > 0) {
    cover::CapacitatedCoverResult capped = cover::enforce_capacity(
        *matrix, instance.network(), cover_result.selected,
        options_.max_pp_load);
    solution.polling_candidates = std::move(capped.selected);
    solution.assignment = std::move(capped.assignment);
  }
  solution.polling_points.reserve(solution.polling_candidates.size());
  for (std::size_t c : solution.polling_candidates) {
    solution.polling_points.push_back(instance.coverage().candidate(c));
  }
  if (d >= 2) {
    assign_relay_paths(instance, solution, d);
  }
  route_collector(instance, solution,
                  tsp::TspSolveOptions{.effort = options_.tsp_effort,
                                       .multi_starts =
                                           options_.tsp_multi_starts});
  MDG_OBS_COUNT(obs::metric::kRelayRelayedSensors,
                solution.relayed_sensor_count());
  MDG_OBS_GAUGE(obs::metric::kRelayMaxHopsUsed,
                static_cast<double>(solution.max_upload_hops()));
  return solution;
}

}  // namespace mdg::core

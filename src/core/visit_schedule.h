// Visit schedule and duty cycling.
//
// The collector's tour is deterministic, so every sensor can be told in
// advance *when* its polling point will be served and sleep the rest of
// the round — the radio listens only inside a guard window around the
// visit. Static multihop networks cannot do this: relays must listen
// continuously for unpredictable forwarded traffic. This module computes
// the per-stop timetable and the resulting per-sensor duty cycles; the
// duty-cycled lifetime comparison is experiment E5.
#pragma once

#include <cstddef>
#include <vector>

#include "core/instance.h"
#include "core/solution.h"

namespace mdg::core {

struct ScheduleConfig {
  double speed_m_per_s = 1.0;
  /// Trapezoidal profile (0 = ideal cruise; see sim::MobileSimConfig).
  double accel_m_per_s2 = 0.0;
  double packet_upload_s = 0.05;  ///< airtime per packet upload
  /// Sensors wake this long before the collector's nominal arrival (and
  /// keep listening this long after their upload slot) to absorb jitter.
  double guard_s = 5.0;
};

struct StopVisit {
  geom::Point position;      ///< the polling point
  double arrival_s = 0.0;    ///< nominal arrival (from round start)
  double departure_s = 0.0;  ///< arrival + service for all uploads
  std::vector<std::size_t> sensors;  ///< affiliated, in upload order
};

class VisitSchedule {
 public:
  /// Builds the timetable for one gathering round of `solution`.
  VisitSchedule(const ShdgpInstance& instance, const ShdgpSolution& solution,
                ScheduleConfig config = {});

  [[nodiscard]] const std::vector<StopVisit>& stops() const { return stops_; }
  /// Full round duration (return to the sink included).
  [[nodiscard]] double round_duration_s() const { return round_duration_; }

  /// Sensor's listen window [wake, sleep] within the round: guard before
  /// its stop's arrival until its upload slot ends plus guard.
  [[nodiscard]] double wake_time(std::size_t sensor) const;
  [[nodiscard]] double sleep_time(std::size_t sensor) const;

  /// Fraction of the round the sensor's radio is awake, in (0, 1].
  [[nodiscard]] double duty_cycle(std::size_t sensor) const;

  /// Mean duty cycle across all sensors (0 when the network is empty).
  [[nodiscard]] double average_duty_cycle() const;

 private:
  ScheduleConfig config_;
  std::vector<StopVisit> stops_;
  double round_duration_ = 0.0;
  std::vector<double> wake_;
  std::vector<double> sleep_;
};

}  // namespace mdg::core

// Incremental replanning under churn: apply a typed delta to a live
// network and repair the existing plan in place instead of replanning
// from scratch.
//
// The pipeline papers assume a static deployment, but real gatherings
// churn: sensors die, new ones are dropped in, nodes are repositioned,
// the radio range is retuned. Rebuilding the SHDGP instance and
// replanning costs O(n log n) grid/graph construction plus the full
// cover + TSP pipeline; a handful of local edits should cost work
// proportional to the damage, not the deployment. core::apply_delta
// delivers that in three layers:
//
//   1. dynamic set cover — damaged sensors first re-affiliate with the
//      nearest surviving polling point in range; the leftovers run the
//      shared greedy sub-cover kernel (cover/repair.h) over a live
//      geom::RemovalGrid view of the mutated network, and polling
//      points serving nobody are dropped;
//   2. incremental geometry — DynamicInstance keeps a RemovalGrid in
//      sync with the churn (O(1) removal, amortised-O(1) insertion), so
//      coverage queries never rebuild a CoverageMatrix;
//   3. localized tour splicing — departed stops leave the tour and new
//      stops enter at the cheapest edge (tsp/splice.h), then a windowed
//      don't-look-bit 2-opt/Or-opt pass (tsp::improve_window) polishes
//      only the splice neighbourhood.
//
// Quality is guarded, not assumed: when the damage exceeds a dispatch
// threshold, the plan predates an incompatible candidate policy, or the
// repaired tour is worse than max_repair_ratio times a from-scratch
// plan (checked on small instances, or always under force_ratio_check),
// apply_delta falls back to a full replan and says so in the result.
//
// Determinism: the repair path is strictly sequential and the fallback
// planner honours the library-wide byte-determinism contract, so
// repaired plans are byte-identical at any MDG_THREADS (DESIGN.md
// §determinism-under-deltas).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/greedy_cover_planner.h"
#include "core/instance.h"
#include "core/solution.h"
#include "core/status.h"
#include "geom/aabb.h"
#include "geom/point.h"
#include "geom/removal_grid.h"
#include "net/radio.h"
#include "net/sensor_network.h"
#include "tsp/improve.h"

namespace mdg::core {

/// A live, mutable view of a sensor deployment. Sensor ids are dense
/// [0, size()): removal renumbers by swapping the last sensor into the
/// freed id (the cheap dense-id convention the fault simulator also
/// uses). A RemovalGrid tracks the churn so spatial queries stay
/// incremental; the immutable net::SensorNetwork / ShdgpInstance views
/// (needed by the full-replan fallback and the ratio guard) are
/// materialised lazily and invalidated by every mutation.
class DynamicInstance {
 public:
  /// Starts from an existing network (positions are copied; the
  /// candidate policy of instance() is kSensorSites).
  explicit DynamicInstance(const net::SensorNetwork& network);

  DynamicInstance(std::vector<geom::Point> positions, geom::Point sink,
                  geom::Aabb field, double range,
                  net::RadioModel radio = net::RadioModel{});

  [[nodiscard]] std::size_t size() const { return positions_.size(); }
  [[nodiscard]] geom::Point position(std::size_t s) const;
  [[nodiscard]] const std::vector<geom::Point>& positions() const {
    return positions_;
  }
  [[nodiscard]] geom::Point sink() const { return sink_; }
  [[nodiscard]] const geom::Aabb& field() const { return field_; }
  [[nodiscard]] double range() const { return range_; }

  /// Adds a sensor (must lie inside the field) and returns its id
  /// (== the old size()). Amortised O(1).
  std::size_t add_sensor(geom::Point p);

  /// Removes sensor `s`; the last sensor (old id size()-1) takes id `s`.
  /// O(1) plus the grid removal.
  void remove_sensor(std::size_t s);

  /// Moves sensor `s` to `p` (inside the field).
  void move_sensor(std::size_t s, geom::Point p);

  /// Retunes the common transmission range (must be positive).
  void set_range(double range);

  /// Live sensor ids within `radius` of `center` (within_range
  /// semantics), sorted ascending. Expected O(live in the query box).
  void sensors_within(geom::Point center, double radius,
                      std::vector<std::size_t>& out) const;

  /// Immutable network over the current sensors. Materialised lazily —
  /// the first call after a mutation pays a full network build; the
  /// incremental repair path never calls it.
  [[nodiscard]] const net::SensorNetwork& network() const;

  /// SHDGP instance over network() with sensor-site candidates, so
  /// candidate id == sensor id exactly as the repair path assumes.
  [[nodiscard]] const ShdgpInstance& instance() const;

 private:
  void invalidate();

  std::vector<geom::Point> positions_;
  geom::Point sink_;
  geom::Aabb field_;
  double range_;
  net::RadioModel radio_;
  geom::RemovalGrid grid_;
  std::vector<std::size_t> grid_index_;  ///< sensor id -> grid index
  std::vector<std::size_t> owner_;       ///< grid index -> sensor id
  mutable std::unique_ptr<net::SensorNetwork> network_;
  mutable std::unique_ptr<ShdgpInstance> instance_;
};

// --- delta grammar --------------------------------------------------------

enum class DeltaOpKind {
  kAddSensor,     ///< drop a new sensor at `position`
  kRemoveSensor,  ///< sensor `sensor` dies (dense renumbering)
  kMoveSensor,    ///< sensor `sensor` relocates to `position`
  kSetRange,      ///< the common transmission range becomes `range`
};

[[nodiscard]] const char* to_string(DeltaOpKind kind);

struct DeltaOp {
  DeltaOpKind kind = DeltaOpKind::kAddSensor;
  std::size_t sensor = 0;
  geom::Point position{};
  double range = 0.0;

  [[nodiscard]] static DeltaOp add_sensor(geom::Point p) {
    return {DeltaOpKind::kAddSensor, 0, p, 0.0};
  }
  [[nodiscard]] static DeltaOp remove_sensor(std::size_t s) {
    return {DeltaOpKind::kRemoveSensor, s, {}, 0.0};
  }
  [[nodiscard]] static DeltaOp move_sensor(std::size_t s, geom::Point p) {
    return {DeltaOpKind::kMoveSensor, s, p, 0.0};
  }
  [[nodiscard]] static DeltaOp set_range(double r) {
    return {DeltaOpKind::kSetRange, 0, {}, r};
  }

  [[nodiscard]] bool operator==(const DeltaOp&) const = default;
};

/// A batch of ops applied in order as one replanning event. Ops are
/// validated together up front — an invalid batch changes nothing.
struct Delta {
  std::vector<DeltaOp> ops;
};

struct DeltaOptions {
  /// Adopt the from-scratch plan when the repaired tour exceeds this
  /// multiple of its length (checked per ratio_check_below /
  /// force_ratio_check).
  double max_repair_ratio = 1.05;
  /// Full replan outright when more than this fraction of the live
  /// sensors is damaged — beyond local repair's sweet spot.
  double damage_dispatch_fraction = 0.25;
  /// Run the ratio guard whenever the live deployment is at most this
  /// big (a fresh plan is cheap there). 0 disables the size trigger.
  std::size_t ratio_check_below = 512;
  /// Always run the ratio guard, whatever the size.
  bool force_ratio_check = false;
  /// The improve window covers every tour stop within this multiple of
  /// the transmission range of a churn site.
  double window_radius_factor = 2.0;
  /// Planner used by the full-replan fallback and the ratio guard.
  GreedyCoverPlannerOptions fallback;
  /// Knobs for the windowed polish over the splice neighbourhood.
  tsp::ImproveOptions window_improve;
};

struct DeltaResult {
  std::size_t ops_applied = 0;
  /// Sensors whose affiliation the delta invalidated (including
  /// newly added sensors, which start unaffiliated).
  std::size_t damaged = 0;
  std::size_t pps_added = 0;
  std::size_t pps_removed = 0;
  /// True when the result came from the fallback planner instead of
  /// local repair; `full_replan_reason` says why ("policy", "damage",
  /// "ratio").
  bool full_replan = false;
  std::string full_replan_reason;
  /// repaired length / from-scratch length when the ratio guard ran,
  /// else 0.
  double repair_ratio = 0.0;
};

/// Applies `delta` to `instance` and repairs `solution` in place.
/// `solution` must be a valid plan for the pre-delta deployment; on any
/// validation error (bad sensor id, non-finite or out-of-field
/// coordinates, non-positive range, mismatched solution) neither the
/// instance nor the solution is touched and an error Status is
/// returned. On success both reflect the post-delta state and the
/// repaired plan passes ShdgpSolution::validate against
/// instance.instance().
[[nodiscard]] StatusOr<DeltaResult> apply_delta(DynamicInstance& instance,
                                                const Delta& delta,
                                                ShdgpSolution& solution,
                                                const DeltaOptions& options = {});

}  // namespace mdg::core

#include "core/greedy_cover_planner.h"

#include "cover/set_cover.h"
#include "obs/names.h"
#include "obs/span.h"

namespace mdg::core {

ShdgpSolution GreedyCoverPlanner::plan(const ShdgpInstance& instance) const {
  OBS_SPAN(obs::metric::kPlanGreedyCover);
  cover::GreedyOptions greedy;
  greedy.tie_break_toward_anchor = options_.tie_break_toward_sink;
  greedy.anchor = instance.sink();
  const cover::SetCoverResult cover_result = cover::greedy_set_cover(
      instance.coverage(), instance.network(), greedy);

  ShdgpSolution solution;
  solution.planner = name();
  solution.polling_candidates = cover_result.selected;
  solution.assignment = cover_result.assignment;
  if (options_.max_pp_load > 0) {
    cover::CapacitatedCoverResult capped = cover::enforce_capacity(
        instance.coverage(), instance.network(), cover_result.selected,
        options_.max_pp_load);
    solution.polling_candidates = std::move(capped.selected);
    solution.assignment = std::move(capped.assignment);
  }
  solution.polling_points.reserve(solution.polling_candidates.size());
  for (std::size_t c : solution.polling_candidates) {
    solution.polling_points.push_back(instance.coverage().candidate(c));
  }
  route_collector(instance, solution,
                  tsp::TspSolveOptions{.effort = options_.tsp_effort,
                                       .multi_starts =
                                           options_.tsp_multi_starts});
  return solution;
}

}  // namespace mdg::core

// SHDGP solution: selected polling points, sensor affiliation, and the
// collector tour.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/instance.h"
#include "geom/point.h"
#include "tsp/solve.h"
#include "tsp/tour.h"

namespace mdg::core {

struct ShdgpSolution {
  /// Candidate id marking a polling point at a free (non-candidate)
  /// position — produced by refine_polling_positions when the collector
  /// may pause anywhere (the "storage node" flexibility the literature
  /// discusses). Such entries skip the candidate-consistency checks.
  static constexpr std::size_t kFreeformCandidate =
      static_cast<std::size_t>(-1);

  std::string planner;  ///< which algorithm produced this

  /// Candidate ids (into the instance's CoverageMatrix) selected as
  /// polling points, and their positions (parallel arrays).
  std::vector<std::size_t> polling_candidates;
  std::vector<geom::Point> polling_points;

  /// assignment[s] = index into polling_points of sensor s's PP.
  std::vector<std::size_t> assignment;

  /// Relay budget d: the maximum total hops a sensor's packet may take
  /// to the paused collector. 1 is the classic single-hop SHDGP (the
  /// default for every legacy planner); 0 forces the collector to pause
  /// exactly at each sensor's position; d >= 2 lets a sensor forward
  /// through up to d - 1 intermediate sensors.
  std::size_t relay_hops = 1;

  /// relay_paths[s] = the intermediate sensors sensor s's packet
  /// traverses, in forwarding order; the last entry uploads to the
  /// polling point. An empty inner vector means s uploads directly.
  /// An empty outer vector means no sensor relays at all — the legacy
  /// representation every d <= 1 plan uses.
  std::vector<std::vector<std::size_t>> relay_paths;

  /// True when any sensor actually forwards through a relay.
  [[nodiscard]] bool uses_relays() const;
  /// Hops sensor s's upload takes (1 = direct; 0 only when d = 0).
  [[nodiscard]] std::size_t upload_hops(std::size_t s) const;
  /// Largest upload_hops over all sensors (0 for the empty network).
  [[nodiscard]] std::size_t max_upload_hops() const;
  /// Number of sensors whose upload traverses at least one relay.
  [[nodiscard]] std::size_t relayed_sensor_count() const;

  /// Visiting order over {sink} ∪ polling_points: index 0 is the sink,
  /// index i >= 1 is polling_points[i-1]. Depot pinned at position 0.
  tsp::Tour tour;
  double tour_length = 0.0;

  bool provably_optimal = false;  ///< set only by the exact planner

  /// The tour as actual coordinates (sink first).
  [[nodiscard]] std::vector<geom::Point> tour_coordinates(
      const ShdgpInstance& instance) const;

  /// Number of sensors affiliated with each polling point.
  [[nodiscard]] std::vector<std::size_t> pp_loads() const;
  [[nodiscard]] std::size_t max_pp_load() const;
  [[nodiscard]] double avg_pp_load() const;

  /// Mean single-hop upload distance sensor -> its polling point.
  [[nodiscard]] double mean_upload_distance(
      const ShdgpInstance& instance) const;

  /// Checks every SHDGP invariant: ids valid, positions consistent,
  /// every sensor's upload chain reaches its PP within the relay budget
  /// (each leg within range, paths no longer than relay_hops - 1), tour
  /// a permutation over sink+PPs with the sink at position 0, recorded
  /// length correct. Throws InvariantError with a description when
  /// violated.
  void validate(const ShdgpInstance& instance) const;
};

/// Builds the tour over sink ∪ `polling_points` with the requested
/// effort, fills tour/tour_length of `solution`.
void route_collector(const ShdgpInstance& instance, ShdgpSolution& solution,
                     tsp::TspEffort effort);

/// Options overload: same, but with the full TSP solve options (notably
/// the multi-start portfolio width).
void route_collector(const ShdgpInstance& instance, ShdgpSolution& solution,
                     const tsp::TspSolveOptions& options);

}  // namespace mdg::core

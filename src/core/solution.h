// SHDGP solution: selected polling points, sensor affiliation, and the
// collector tour.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/instance.h"
#include "geom/point.h"
#include "tsp/solve.h"
#include "tsp/tour.h"

namespace mdg::core {

struct ShdgpSolution {
  /// Candidate id marking a polling point at a free (non-candidate)
  /// position — produced by refine_polling_positions when the collector
  /// may pause anywhere (the "storage node" flexibility the literature
  /// discusses). Such entries skip the candidate-consistency checks.
  static constexpr std::size_t kFreeformCandidate =
      static_cast<std::size_t>(-1);

  std::string planner;  ///< which algorithm produced this

  /// Candidate ids (into the instance's CoverageMatrix) selected as
  /// polling points, and their positions (parallel arrays).
  std::vector<std::size_t> polling_candidates;
  std::vector<geom::Point> polling_points;

  /// assignment[s] = index into polling_points of sensor s's PP.
  std::vector<std::size_t> assignment;

  /// Visiting order over {sink} ∪ polling_points: index 0 is the sink,
  /// index i >= 1 is polling_points[i-1]. Depot pinned at position 0.
  tsp::Tour tour;
  double tour_length = 0.0;

  bool provably_optimal = false;  ///< set only by the exact planner

  /// The tour as actual coordinates (sink first).
  [[nodiscard]] std::vector<geom::Point> tour_coordinates(
      const ShdgpInstance& instance) const;

  /// Number of sensors affiliated with each polling point.
  [[nodiscard]] std::vector<std::size_t> pp_loads() const;
  [[nodiscard]] std::size_t max_pp_load() const;
  [[nodiscard]] double avg_pp_load() const;

  /// Mean single-hop upload distance sensor -> its polling point.
  [[nodiscard]] double mean_upload_distance(
      const ShdgpInstance& instance) const;

  /// Checks every SHDGP invariant: ids valid, positions consistent,
  /// every sensor assigned to a PP within range, tour a permutation over
  /// sink+PPs with the sink at position 0, recorded length correct.
  /// Throws InvariantError with a description when violated.
  void validate(const ShdgpInstance& instance) const;
};

/// Builds the tour over sink ∪ `polling_points` with the requested
/// effort, fills tour/tour_length of `solution`.
void route_collector(const ShdgpInstance& instance, ShdgpSolution& solution,
                     tsp::TspEffort effort);

/// Options overload: same, but with the full TSP solve options (notably
/// the multi-start portfolio width).
void route_collector(const ShdgpInstance& instance, ShdgpSolution& solution,
                     const tsp::TspSolveOptions& options);

}  // namespace mdg::core

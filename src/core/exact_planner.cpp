#include "core/exact_planner.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>

#include "core/greedy_cover_planner.h"
#include "core/spanning_tour_planner.h"
#include "cover/set_cover.h"
#include "obs/names.h"
#include "obs/span.h"
#include "tsp/exact.h"
#include "util/assert.h"
#include "util/log.h"

namespace mdg::core {
namespace {

struct SearchState {
  const ShdgpInstance* instance = nullptr;
  std::vector<std::uint64_t> cover_mask;  // per candidate
  std::uint64_t full_mask = 0;
  std::size_t node_limit = 0;
  std::size_t max_pps = 0;

  std::size_t nodes = 0;
  bool exhausted = false;  // node limit hit

  double best_length = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> best_selection;

  std::vector<std::size_t> chosen;
  std::vector<geom::Point> chosen_points;  // sink + chosen, kept in sync
};

/// Optimal tour length over the points chosen so far (sink included) —
/// a valid lower bound for every completion of this subset.
double partial_bound(const SearchState& state) {
  if (state.chosen_points.size() <= 2) {
    // Sink alone or sink+1: the "tour" is 0 or an out-and-back; both are
    // handled exactly by held_karp_length as well, but short-circuit the
    // trivial case.
    if (state.chosen_points.size() < 2) {
      return 0.0;
    }
  }
  return tsp::held_karp_length(state.chosen_points);
}

void search(SearchState& state, std::uint64_t covered) {
  if (state.nodes >= state.node_limit) {
    state.exhausted = true;
    return;
  }
  ++state.nodes;
  if (state.nodes % 100'000 == 0) {
    MDG_LOG(kDebug) << "exact search: " << state.nodes
                    << " nodes, incumbent " << state.best_length << " m with "
                    << state.best_selection.size() << " polling points";
  }

  const double bound = partial_bound(state);
  if (bound >= state.best_length - 1e-9) {
    return;  // even the already-chosen points route no better
  }
  if (covered == state.full_mask) {
    // Feasible: `bound` IS the optimal tour length for this selection.
    state.best_length = bound;
    state.best_selection = state.chosen;
    return;
  }
  if (state.chosen.size() >= state.max_pps) {
    return;
  }

  const auto& matrix = state.instance->coverage();
  // Branch on the uncovered sensor with the fewest covering candidates.
  const std::size_t n = state.instance->sensor_count();
  std::size_t branch_sensor = n;
  std::size_t branch_width = std::numeric_limits<std::size_t>::max();
  for (std::size_t s = 0; s < n; ++s) {
    if (covered & (std::uint64_t{1} << s)) {
      continue;
    }
    const std::size_t width = matrix.covering(s).size();
    if (width < branch_width) {
      branch_width = width;
      branch_sensor = s;
    }
  }
  MDG_ASSERT(branch_sensor != n, "no uncovered sensor despite covered != full");

  // Order children by how many *new* sensors they cover (most first).
  std::vector<std::pair<std::size_t, std::size_t>> children;  // (-gain, c)
  for (std::size_t c : matrix.covering(branch_sensor)) {
    const std::uint64_t gained = state.cover_mask[c] & ~covered;
    if (gained == 0) {
      continue;  // covers nothing new; adding it can only lengthen the tour
    }
    children.push_back({static_cast<std::size_t>(
                            std::popcount(gained)),
                        c});
  }
  std::sort(children.begin(), children.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  for (const auto& [gain, c] : children) {
    state.chosen.push_back(c);
    state.chosen_points.push_back(matrix.candidate(c));
    search(state, covered | state.cover_mask[c]);
    state.chosen.pop_back();
    state.chosen_points.pop_back();
    if (state.exhausted) {
      return;
    }
  }
}

}  // namespace

ShdgpSolution ExactPlanner::plan(const ShdgpInstance& instance) const {
  OBS_SPAN(obs::metric::kPlanExact);
  const auto& network = instance.network();
  const auto& matrix = instance.coverage();
  MDG_REQUIRE(network.size() <= 64,
              "ExactPlanner handles at most 64 sensors");
  MDG_REQUIRE(options_.max_polling_points + 1 <= tsp::kMaxExactTsp,
              "max_polling_points exceeds the exact TSP limit");

  ShdgpSolution solution;
  solution.planner = name();
  if (network.size() == 0) {
    route_collector(instance, solution, tsp::TspEffort::kExactIfSmall);
    solution.provably_optimal = true;
    return solution;
  }

  SearchState state;
  state.instance = &instance;
  state.node_limit = options_.node_limit;
  state.max_pps = options_.max_polling_points;
  state.full_mask = network.size() == 64
                        ? ~std::uint64_t{0}
                        : (std::uint64_t{1} << network.size()) - 1;
  state.cover_mask.resize(matrix.candidate_count(), 0);
  for (std::size_t c = 0; c < matrix.candidate_count(); ++c) {
    for (std::size_t s : matrix.covered_by(c)) {
      state.cover_mask[c] |= std::uint64_t{1} << s;
    }
  }
  state.chosen_points.push_back(instance.sink());

  // Seed the incumbent with the better of the two heuristics so pruning
  // bites from the start.
  {
    const GreedyCoverPlanner greedy;
    const SpanningTourPlanner spanning;
    for (const ShdgpSolution& seed :
         {greedy.plan(instance), spanning.plan(instance)}) {
      if (seed.polling_points.size() <= options_.max_polling_points &&
          seed.tour_length < state.best_length) {
        // Re-route exactly so the incumbent is consistent with leaf costs.
        std::vector<geom::Point> pts;
        pts.push_back(instance.sink());
        pts.insert(pts.end(), seed.polling_points.begin(),
                   seed.polling_points.end());
        if (pts.size() <= tsp::kMaxExactTsp) {
          const double exact_len = tsp::held_karp_length(pts);
          if (exact_len < state.best_length) {
            state.best_length = exact_len;
            state.best_selection = seed.polling_candidates;
          }
        }
      }
    }
  }

  search(state, 0);
  MDG_LOG(kInfo) << "exact planner: " << state.nodes << " nodes, "
                 << (state.exhausted ? "node limit hit" : "proved optimal")
                 << ", tour " << state.best_length << " m";

  if (state.best_selection.empty()) {
    // No feasible selection within max_polling_points (very sparse
    // network): fall back to the greedy heuristic, not provably optimal.
    ShdgpSolution fallback = GreedyCoverPlanner().plan(instance);
    fallback.planner = name();
    fallback.provably_optimal = false;
    return fallback;
  }
  solution.polling_candidates = state.best_selection;
  for (std::size_t c : solution.polling_candidates) {
    solution.polling_points.push_back(matrix.candidate(c));
  }
  solution.assignment =
      cover::assign_nearest(matrix, network, solution.polling_candidates);
  route_collector(instance, solution, tsp::TspEffort::kExactIfSmall);
  solution.provably_optimal = !state.exhausted;
  return solution;
}

}  // namespace mdg::core

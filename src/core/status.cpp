#include "core/status.h"

namespace mdg::core {

const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kFailedPrecondition:
      return "failed-precondition";
    case StatusCode::kDataLoss:
      return "data-loss";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (is_ok()) {
    return "ok";
  }
  return std::string(core::to_string(code_)) + ": " + message_;
}

}  // namespace mdg::core

// SHDGP instance: the Single-Hop Data Gathering Problem.
//
// Given a sensor network, a static data sink and a candidate-position
// policy, choose polling points such that every sensor can upload to a
// paused collector in one hop, and the closed collector tour
// sink -> polling points -> sink is as short as possible.
#pragma once

#include <cstddef>

#include "cover/coverage.h"
#include "net/sensor_network.h"

namespace mdg::core {

class ShdgpInstance {
 public:
  /// Binds to `network` (which must outlive the instance) and builds the
  /// candidate coverage relation.
  explicit ShdgpInstance(const net::SensorNetwork& network,
                         cover::CandidateOptions candidates = {});

  [[nodiscard]] const net::SensorNetwork& network() const { return *network_; }
  [[nodiscard]] const cover::CoverageMatrix& coverage() const {
    return coverage_;
  }
  [[nodiscard]] const cover::CandidateOptions& candidate_options() const {
    return candidate_options_;
  }
  [[nodiscard]] geom::Point sink() const { return network_->sink(); }
  [[nodiscard]] std::size_t sensor_count() const { return network_->size(); }

 private:
  const net::SensorNetwork* network_;
  cover::CandidateOptions candidate_options_;
  cover::CoverageMatrix coverage_;
};

}  // namespace mdg::core

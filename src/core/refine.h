// Continuous polling-position refinement (the "storage node" upgrade).
//
// The baseline planners restrict polling points to discrete candidates
// (sensor sites, grid cells). When the collector may pause *anywhere* —
// the special-device scenario the literature discusses — each polling
// point can slide inside its feasibility region (the intersection of the
// Rs-disks around its affiliated sensors, a convex set) toward the
// chord between its tour neighbours, shortening the tour without
// touching coverage or the visiting order.
#pragma once

#include <cstddef>

#include "core/instance.h"
#include "core/solution.h"
#include "tsp/improve.h"

namespace mdg::core {

struct RefineOptions {
  /// Sweeps over the tour (each sweep revisits every polling point with
  /// its neighbours' updated positions).
  std::size_t passes = 4;
  /// Binary-search resolution along the slide direction (fraction of
  /// the full step).
  double tolerance = 1e-3;
  /// Re-run the shared tour-improvement kernel (tsp::improve) whenever a
  /// slide pass moved a polling point: sliding changes the geometry, so
  /// a different visiting order may now be shorter. Disable to keep the
  /// incoming visiting order untouched (pure position refinement).
  bool reoptimize_tour = false;
  /// Kernel knobs for the reoptimization passes.
  tsp::ImproveOptions improve;
};

/// Slides each polling point toward the straight line between its tour
/// predecessor and successor as far as coverage of its assigned sensors
/// allows. Keeps the visiting order unless reoptimize_tour is set;
/// updates positions, marks moved points as kFreeformCandidate, and
/// refreshes tour_length. Never lengthens the tour. Returns the number
/// of position updates applied.
std::size_t refine_polling_positions(const ShdgpInstance& instance,
                                     ShdgpSolution& solution,
                                     const RefineOptions& options = {});

}  // namespace mdg::core

#include "core/delta.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "cover/repair.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/span.h"
#include "tsp/splice.h"
#include "tsp/tour.h"
#include "util/assert.h"

namespace mdg::core {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

double checked_range(double range) {
  MDG_REQUIRE(std::isfinite(range) && range > 0.0,
              "transmission range must be positive");
  return range;
}

/// CoverView (cover/repair.h) answering coverage queries from the live
/// DynamicInstance grid instead of a CoverageMatrix. Sensor-site policy:
/// candidate id == sensor id, so covered(c) and covering(s) are the
/// same within-range query, memoized per id.
class GridCoverView {
 public:
  explicit GridCoverView(const DynamicInstance& dyn)
      : dyn_(dyn), lists_(dyn.size()), have_(dyn.size(), 0) {}

  [[nodiscard]] std::size_t universe() const { return dyn_.size(); }
  [[nodiscard]] std::size_t candidate_limit() const { return dyn_.size(); }
  [[nodiscard]] geom::Point position(std::size_t c) const {
    return dyn_.position(c);
  }
  [[nodiscard]] geom::Point sensor_position(std::size_t s) const {
    return dyn_.position(s);
  }
  [[nodiscard]] const std::vector<std::size_t>& covered(std::size_t c) {
    return list(c);
  }
  [[nodiscard]] const std::vector<std::size_t>& covering(std::size_t s) {
    return list(s);
  }

 private:
  [[nodiscard]] const std::vector<std::size_t>& list(std::size_t s) {
    if (!have_[s]) {
      dyn_.sensors_within(dyn_.position(s), dyn_.range(), lists_[s]);
      have_[s] = 1;
    }
    return lists_[s];
  }

  const DynamicInstance& dyn_;
  std::vector<std::vector<std::size_t>> lists_;
  std::vector<char> have_;
};

void apply_ops_to_instance(DynamicInstance& dyn,
                           std::span<const DeltaOp> ops) {
  for (const DeltaOp& op : ops) {
    switch (op.kind) {
      case DeltaOpKind::kAddSensor:
        dyn.add_sensor(op.position);
        break;
      case DeltaOpKind::kRemoveSensor:
        dyn.remove_sensor(op.sensor);
        break;
      case DeltaOpKind::kMoveSensor:
        dyn.move_sensor(op.sensor, op.position);
        break;
      case DeltaOpKind::kSetRange:
        dyn.set_range(op.range);
        break;
    }
  }
}

/// The plan for a deployment with no sensors: no polling points, the
/// collector never leaves the sink.
void make_empty_solution(ShdgpSolution& solution) {
  solution.polling_candidates.clear();
  solution.polling_points.clear();
  solution.assignment.clear();
  solution.tour = tsp::Tour(std::vector<std::size_t>{0});
  solution.tour_length = 0.0;
  solution.provably_optimal = true;
}

}  // namespace

// --- DynamicInstance ------------------------------------------------------

DynamicInstance::DynamicInstance(std::vector<geom::Point> positions,
                                 geom::Point sink, geom::Aabb field,
                                 double range, net::RadioModel radio)
    : positions_(std::move(positions)),
      sink_(sink),
      field_(field),
      range_(checked_range(range)),
      radio_(radio),
      grid_(positions_, range, field) {
  grid_index_.resize(positions_.size());
  owner_.resize(positions_.size());
  for (std::size_t s = 0; s < positions_.size(); ++s) {
    grid_index_[s] = s;
    owner_[s] = s;
  }
}

DynamicInstance::DynamicInstance(const net::SensorNetwork& network)
    : DynamicInstance(network.positions(), network.sink(), network.field(),
                      network.range(), network.radio()) {}

geom::Point DynamicInstance::position(std::size_t s) const {
  MDG_REQUIRE(s < positions_.size(), "sensor id out of range");
  return positions_[s];
}

std::size_t DynamicInstance::add_sensor(geom::Point p) {
  MDG_REQUIRE(field_.contains(p), "sensor position outside the field");
  const std::size_t s = positions_.size();
  positions_.push_back(p);
  const std::size_t g = grid_.insert(p);
  grid_index_.push_back(g);
  owner_.resize(grid_.size(), kNone);
  owner_[g] = s;
  invalidate();
  return s;
}

void DynamicInstance::remove_sensor(std::size_t s) {
  MDG_REQUIRE(s < positions_.size(), "sensor id out of range");
  const std::size_t last = positions_.size() - 1;
  grid_.remove(grid_index_[s]);
  owner_[grid_index_[s]] = kNone;
  if (s != last) {
    positions_[s] = positions_[last];
    grid_index_[s] = grid_index_[last];
    owner_[grid_index_[s]] = s;
  }
  positions_.pop_back();
  grid_index_.pop_back();
  invalidate();
}

void DynamicInstance::move_sensor(std::size_t s, geom::Point p) {
  MDG_REQUIRE(s < positions_.size(), "sensor id out of range");
  MDG_REQUIRE(field_.contains(p), "sensor position outside the field");
  grid_.remove(grid_index_[s]);
  owner_[grid_index_[s]] = kNone;
  positions_[s] = p;
  const std::size_t g = grid_.insert(p);
  grid_index_[s] = g;
  owner_.resize(grid_.size(), kNone);
  owner_[g] = s;
  invalidate();
}

void DynamicInstance::set_range(double range) {
  MDG_REQUIRE(std::isfinite(range) && range > 0.0,
              "transmission range must be positive");
  range_ = range;
  invalidate();
}

void DynamicInstance::sensors_within(geom::Point center, double radius,
                                     std::vector<std::size_t>& out) const {
  std::vector<std::size_t> hits;
  grid_.collect_within(center, radius, hits);
  out.clear();
  out.reserve(hits.size());
  for (std::size_t g : hits) {
    MDG_ASSERT(owner_[g] != kNone, "live grid entry without an owner");
    out.push_back(owner_[g]);
  }
  std::sort(out.begin(), out.end());
}

const net::SensorNetwork& DynamicInstance::network() const {
  if (!network_) {
    network_ = std::make_unique<net::SensorNetwork>(positions_, sink_, field_,
                                                    range_, radio_);
  }
  return *network_;
}

const ShdgpInstance& DynamicInstance::instance() const {
  if (!instance_) {
    instance_ = std::make_unique<ShdgpInstance>(network(),
                                                cover::CandidateOptions{});
  }
  return *instance_;
}

void DynamicInstance::invalidate() {
  instance_.reset();  // holds a pointer into network_ — must go first
  network_.reset();
}

// --- delta grammar --------------------------------------------------------

const char* to_string(DeltaOpKind kind) {
  switch (kind) {
    case DeltaOpKind::kAddSensor:
      return "add";
    case DeltaOpKind::kRemoveSensor:
      return "remove";
    case DeltaOpKind::kMoveSensor:
      return "move";
    case DeltaOpKind::kSetRange:
      return "range";
  }
  return "?";
}

// --- apply_delta ----------------------------------------------------------

StatusOr<DeltaResult> apply_delta(DynamicInstance& dyn, const Delta& delta,
                                  ShdgpSolution& solution,
                                  const DeltaOptions& options) {
  OBS_SPAN(obs::metric::kDeltaApply);

  // Validate the whole batch before mutating anything: an invalid delta
  // must leave both the instance and the solution untouched.
  {
    std::size_t n = dyn.size();
    for (std::size_t i = 0; i < delta.ops.size(); ++i) {
      const DeltaOp& op = delta.ops[i];
      const std::string at = "delta op " + std::to_string(i);
      switch (op.kind) {
        case DeltaOpKind::kAddSensor:
        case DeltaOpKind::kMoveSensor:
          if (!std::isfinite(op.position.x) || !std::isfinite(op.position.y)) {
            return Status::invalid_argument(at + ": non-finite coordinates");
          }
          if (!dyn.field().contains(op.position)) {
            return Status::invalid_argument(at + ": position outside the field");
          }
          if (op.kind == DeltaOpKind::kMoveSensor && op.sensor >= n) {
            return Status::invalid_argument(at + ": sensor id out of range");
          }
          if (op.kind == DeltaOpKind::kAddSensor) {
            ++n;
          }
          break;
        case DeltaOpKind::kRemoveSensor:
          if (op.sensor >= n) {
            return Status::invalid_argument(at + ": sensor id out of range");
          }
          --n;
          break;
        case DeltaOpKind::kSetRange:
          if (!std::isfinite(op.range) || op.range <= 0.0) {
            return Status::invalid_argument(at +
                                            ": range must be positive and finite");
          }
          break;
      }
    }
  }

  // The solution must describe the pre-delta deployment.
  const std::size_t n0 = dyn.size();
  const std::size_t pp_count = solution.polling_points.size();
  if (solution.assignment.size() != n0 ||
      solution.polling_candidates.size() != pp_count ||
      solution.tour.size() != pp_count + 1 || solution.tour.at(0) != 0) {
    return Status::failed_precondition(
        "solution does not match the instance (sensor or polling-point "
        "counts disagree)");
  }
  for (std::size_t a : solution.assignment) {
    if (a >= pp_count) {
      return Status::failed_precondition(
          "solution assignment references a polling point that does not "
          "exist");
    }
  }

  DeltaResult result;
  result.ops_applied = delta.ops.size();
  MDG_OBS_COUNT(obs::metric::kDeltaOps, delta.ops.size());

  if (delta.ops.empty()) {
    return result;  // empty delta: byte-identical no-op by construction
  }

  const auto full_replan = [&](const char* why) {
    result.full_replan = true;
    result.full_replan_reason = why;
    result.pps_added = 0;
    result.pps_removed = 0;
    MDG_OBS_COUNT(obs::metric::kDeltaFullReplans, 1);
    if (dyn.size() == 0) {
      make_empty_solution(solution);
      solution.planner = "delta-replan";
      return;
    }
    const GreedyCoverPlanner planner(options.fallback);
    solution = planner.plan(dyn.instance());
  };

  // Local repair only understands plans whose polling points sit on
  // sensor sites (candidate id == sensor id, the kSensorSites policy).
  // Grid/intersection candidates and freeform refined positions fall
  // back to a full replan — a quality decision, not an error.
  bool must_full = false;
  for (std::size_t k = 0; k < pp_count; ++k) {
    const std::size_t c = solution.polling_candidates[k];
    if (c == ShdgpSolution::kFreeformCandidate || c >= n0 ||
        !(solution.polling_points[k] == dyn.position(c))) {
      must_full = true;
      break;
    }
  }
  if (must_full) {
    apply_ops_to_instance(dyn, delta.ops);
    full_replan("policy");
    return result;
  }

  // ---- working state for the incremental path ----------------------------
  // Slots stay fixed while ops land (dead ones are tombstoned with
  // kNone and compacted at the end); the tour is kept as a raw city
  // order (city 0 = sink, city k+1 = slot k) so splice_insert/remove
  // can edit it while it is not a permutation of a dense range.
  std::vector<std::size_t> pp_of = solution.assignment;  // sensor -> slot
  std::vector<char> damaged(n0, 0);
  std::vector<std::size_t> cand = solution.polling_candidates;  // slot -> host
  std::vector<geom::Point> ppos = solution.polling_points;
  std::vector<std::size_t> slot_of_host(n0, kNone);
  for (std::size_t k = 0; k < cand.size(); ++k) {
    slot_of_host[cand[k]] = k;
  }
  std::vector<geom::Point> pts;  // city coordinates (stale slots unused)
  pts.reserve(ppos.size() + 1);
  pts.push_back(dyn.sink());
  pts.insert(pts.end(), ppos.begin(), ppos.end());
  std::vector<std::size_t> order = solution.tour.order();
  std::vector<geom::Point> touched;  // churn sites anchoring the window

  const auto kill_slot = [&](std::size_t k) {
    for (std::size_t t = 0; t < pp_of.size(); ++t) {
      if (pp_of[t] == k) {
        pp_of[t] = kNone;
        damaged[t] = 1;
        touched.push_back(dyn.position(t));
      }
    }
    tsp::splice_remove(order, k + 1);
    touched.push_back(ppos[k]);
    slot_of_host[cand[k]] = kNone;
    cand[k] = kNone;
    ++result.pps_removed;
  };

  for (const DeltaOp& op : delta.ops) {
    switch (op.kind) {
      case DeltaOpKind::kAddSensor: {
        touched.push_back(op.position);
        dyn.add_sensor(op.position);
        pp_of.push_back(kNone);
        damaged.push_back(1);
        slot_of_host.push_back(kNone);
        break;
      }
      case DeltaOpKind::kRemoveSensor: {
        const std::size_t s = op.sensor;
        const std::size_t last = dyn.size() - 1;
        touched.push_back(dyn.position(s));
        if (slot_of_host[s] != kNone) {
          kill_slot(slot_of_host[s]);
        }
        if (s != last) {
          pp_of[s] = pp_of[last];
          damaged[s] = damaged[last];
          if (slot_of_host[last] != kNone) {
            cand[slot_of_host[last]] = s;
          }
          slot_of_host[s] = slot_of_host[last];
        }
        pp_of.pop_back();
        damaged.pop_back();
        slot_of_host.pop_back();
        dyn.remove_sensor(s);
        break;
      }
      case DeltaOpKind::kMoveSensor: {
        const std::size_t s = op.sensor;
        touched.push_back(dyn.position(s));
        touched.push_back(op.position);
        if (slot_of_host[s] != kNone) {
          kill_slot(slot_of_host[s]);
        }
        dyn.move_sensor(s, op.position);
        if (pp_of[s] == kNone) {
          damaged[s] = 1;
        } else if (!geom::within_range(op.position, ppos[pp_of[s]],
                                       dyn.range())) {
          pp_of[s] = kNone;
          damaged[s] = 1;
        }
        break;
      }
      case DeltaOpKind::kSetRange: {
        const double old_range = dyn.range();
        dyn.set_range(op.range);
        if (op.range < old_range) {
          // Shrinking can strand any affiliation; growing never does.
          for (std::size_t t = 0; t < pp_of.size(); ++t) {
            if (pp_of[t] != kNone &&
                !geom::within_range(dyn.position(t), ppos[pp_of[t]],
                                    op.range)) {
              pp_of[t] = kNone;
              damaged[t] = 1;
              touched.push_back(dyn.position(t));
            }
          }
        }
        break;
      }
    }
  }

  const std::size_t live_n = dyn.size();
  std::vector<std::size_t> damage_list;
  for (std::size_t t = 0; t < live_n; ++t) {
    if (damaged[t]) {
      damage_list.push_back(t);
    }
  }
  result.damaged = damage_list.size();
  MDG_OBS_COUNT(obs::metric::kDeltaDamaged, damage_list.size());

  if (live_n == 0) {
    make_empty_solution(solution);
    return result;
  }
  if (static_cast<double>(damage_list.size()) >
      options.damage_dispatch_fraction * static_cast<double>(live_n)) {
    full_replan("damage");
    return result;
  }

  // ---- layer 1: dynamic set-cover repair ---------------------------------
  // First the cheap patch: each damaged sensor re-affiliates with the
  // nearest surviving polling point in range (ascending host id with a
  // strict '<' keeps ties on the lower candidate id, the library-wide
  // rule). Leftovers get new polling points from the shared greedy
  // sub-cover kernel, anchored toward the sink like the planner.
  std::vector<std::size_t> leftovers;
  std::vector<std::size_t> near;
  for (std::size_t t : damage_list) {
    dyn.sensors_within(dyn.position(t), dyn.range(), near);
    std::size_t best_slot = kNone;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t h : near) {
      const std::size_t k = slot_of_host[h];
      if (k == kNone) {
        continue;
      }
      const double d = geom::distance(dyn.position(t), ppos[k]);
      if (d < best_d) {
        best_d = d;
        best_slot = k;
      }
    }
    if (best_slot != kNone) {
      pp_of[t] = best_slot;
    } else {
      leftovers.push_back(t);
    }
  }

  if (!leftovers.empty()) {
    GridCoverView view(dyn);
    const cover::PartialCoverResult part =
        cover::greedy_partial_cover(view, leftovers, dyn.sink());
    MDG_ASSERT(part.uncovered.empty(),
               "sensor-site candidates always cover themselves");
    const std::vector<std::vector<std::size_t>> members =
        cover::affiliate_nearest(view, leftovers, part.selected);
    for (std::size_t i = 0; i < part.selected.size(); ++i) {
      const std::size_t c = part.selected[i];
      const std::size_t k = cand.size();
      cand.push_back(c);
      ppos.push_back(dyn.position(c));
      slot_of_host[c] = k;
      pts.push_back(dyn.position(c));
      tsp::splice_insert(order, pts, k + 1);  // layer 3: cheapest edge
      touched.push_back(dyn.position(c));
      ++result.pps_added;
      for (std::size_t t : members[i]) {
        pp_of[t] = k;
      }
    }
  }

  // Drop polling points the churn left serving nobody.
  {
    std::vector<std::size_t> load(cand.size(), 0);
    for (std::size_t t = 0; t < live_n; ++t) {
      MDG_ASSERT(pp_of[t] != kNone, "repair left a sensor unaffiliated");
      ++load[pp_of[t]];
    }
    for (std::size_t k = 0; k < cand.size(); ++k) {
      if (cand[k] != kNone && load[k] == 0) {
        kill_slot(k);  // marks nobody (load 0), just splices and tombs
      }
    }
  }

  // ---- compact slots and rebuild the solution ----------------------------
  std::vector<std::size_t> slot_to_new(cand.size(), kNone);
  std::vector<std::size_t> new_cand;
  std::vector<geom::Point> new_ppos;
  for (std::size_t k = 0; k < cand.size(); ++k) {
    if (cand[k] != kNone) {
      slot_to_new[k] = new_cand.size();
      new_cand.push_back(cand[k]);
      new_ppos.push_back(ppos[k]);
    }
  }
  std::vector<std::size_t> new_order;
  new_order.reserve(order.size());
  for (std::size_t city : order) {
    if (city == 0) {
      new_order.push_back(0);
    } else {
      MDG_ASSERT(slot_to_new[city - 1] != kNone, "dead slot left on the tour");
      new_order.push_back(slot_to_new[city - 1] + 1);
    }
  }
  std::vector<std::size_t> new_assign(live_n);
  for (std::size_t t = 0; t < live_n; ++t) {
    new_assign[t] = slot_to_new[pp_of[t]];
  }
  std::vector<geom::Point> coords;
  coords.reserve(new_ppos.size() + 1);
  coords.push_back(dyn.sink());
  coords.insert(coords.end(), new_ppos.begin(), new_ppos.end());
  tsp::Tour tour(std::move(new_order));

  // ---- layer 3: windowed polish over the splice neighbourhood ------------
  const double wr = options.window_radius_factor * dyn.range();
  std::vector<std::size_t> window;
  for (std::size_t j = 0; j < new_ppos.size(); ++j) {
    for (const geom::Point& q : touched) {
      if (geom::distance_sq(new_ppos[j], q) <= wr * wr) {
        window.push_back(j + 1);
        break;
      }
    }
  }
  if (!window.empty()) {
    (void)tsp::improve_window(tour, coords, window, options.window_improve);
  }
  const double repaired = tour.length(coords);

  // ---- quality guard: compare against a from-scratch plan ----------------
  const bool check_ratio =
      options.force_ratio_check ||
      (options.ratio_check_below > 0 && live_n <= options.ratio_check_below);
  if (check_ratio) {
    const GreedyCoverPlanner planner(options.fallback);
    ShdgpSolution fresh = planner.plan(dyn.instance());
    result.repair_ratio =
        fresh.tour_length > 0.0 ? repaired / fresh.tour_length : 1.0;
    MDG_OBS_GAUGE(obs::metric::kDeltaRepairRatio, result.repair_ratio);
    if (repaired > options.max_repair_ratio * fresh.tour_length) {
      solution = std::move(fresh);
      result.full_replan = true;
      result.full_replan_reason = "ratio";
      MDG_OBS_COUNT(obs::metric::kDeltaFullReplans, 1);
      return result;
    }
  }

  solution.polling_candidates = std::move(new_cand);
  solution.polling_points = std::move(new_ppos);
  solution.assignment = std::move(new_assign);
  solution.tour = std::move(tour);
  solution.tour_length = repaired;
  solution.provably_optimal = false;
  return result;
}

}  // namespace mdg::core

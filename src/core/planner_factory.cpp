#include "core/planner_factory.h"

#include "baselines/direct_visit.h"
#include "core/greedy_cover_planner.h"
#include "core/relay_hop_planner.h"
#include "core/spanning_tour_planner.h"
#include "dist/election_planner.h"

namespace mdg::core {

const std::vector<std::string>& planner_names() {
  static const std::vector<std::string> kNames = {
      "spanning", "greedy", "relay", "direct", "election"};
  return kNames;
}

StatusOr<std::unique_ptr<Planner>> make_planner(const PlannerSpec& spec) {
  if (spec.name == "spanning") {
    return std::unique_ptr<Planner>(std::make_unique<SpanningTourPlanner>());
  }
  if (spec.name == "greedy") {
    GreedyCoverPlannerOptions options;
    options.max_pp_load = spec.max_pp_load;
    if (spec.multi_starts > 1) {
      options.tsp_multi_starts = spec.multi_starts;
    }
    return std::unique_ptr<Planner>(
        std::make_unique<GreedyCoverPlanner>(options));
  }
  if (spec.name == "relay") {
    RelayHopPlannerOptions options;
    options.relay_hops = spec.relay_hops;
    options.max_pp_load = spec.max_pp_load;
    if (spec.multi_starts > 1) {
      options.tsp_multi_starts = spec.multi_starts;
    }
    return std::unique_ptr<Planner>(
        std::make_unique<RelayHopPlanner>(options));
  }
  if (spec.name == "direct") {
    return std::unique_ptr<Planner>(
        std::make_unique<baselines::DirectVisitPlanner>());
  }
  if (spec.name == "election") {
    return std::unique_ptr<Planner>(
        std::make_unique<dist::ElectionPlanner>());
  }
  std::string accepted;
  for (const std::string& name : planner_names()) {
    accepted += accepted.empty() ? name : "|" + name;
  }
  return Status::invalid_argument("unknown planner '" + spec.name + "' (" +
                                  accepted + ")");
}

}  // namespace mdg::core

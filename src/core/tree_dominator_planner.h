// Tree-dominator SHDGP planner.
//
// With sensor-site candidates, a feasible polling set is exactly a
// dominating set of the connectivity graph (every sensor is a polling
// point or adjacent to one). This planner runs the classic greedy
// dominating-set rule on breadth-first trees rooted near the sink:
// repeatedly take a deepest unresolved leaf and select its tree parent —
// the parent dominates the leaf, its other children and itself, and
// sits one hop closer to the sink, so the selection drifts inward.
// Disconnected deployments are handled with one tree per component
// (rooted at the component's sink-nearest sensor).
//
// Complements the coverage-greedy and tour-first planners with the
// routing-structure-driven selection style of the SPT-based heuristics
// in this literature.
#pragma once

#include "core/planner.h"
#include "tsp/solve.h"

namespace mdg::core {

struct TreeDominatorPlannerOptions {
  tsp::TspEffort tsp_effort = tsp::TspEffort::kFull;
};

class TreeDominatorPlanner final : public Planner {
 public:
  explicit TreeDominatorPlanner(TreeDominatorPlannerOptions options = {})
      : options_(options) {}

  [[nodiscard]] std::string name() const override { return "tree-dominator"; }

  /// Requires sensor-site candidates (the dominators are sensors).
  [[nodiscard]] ShdgpSolution plan(
      const ShdgpInstance& instance) const override;

 private:
  TreeDominatorPlannerOptions options_;
};

}  // namespace mdg::core

// Online recovery after a mid-tour collector breakdown.
//
// When the collector dies partway through a round, a replacement (or the
// repaired vehicle) continues from the breakdown position: re-cover the
// still-live, still-unserved sensors with a fresh greedy sub-cover,
// order the recovery stops nearest-neighbour from the breakdown point,
// and finish at the sink. Deterministic (no RNG) and total: when some
// sensors cannot be re-covered the plan degrades gracefully — it serves
// what it can, lists the rest in `uncovered`, and still routes home.
#pragma once

#include <cstddef>
#include <vector>

#include "core/instance.h"
#include "geom/point.h"

namespace mdg::core {

struct RecoveryPlan {
  /// True when every requested sensor is covered by some recovery stop.
  bool feasible = true;

  /// Recovery stops in visiting order, starting from the breakdown
  /// position (not included) and ending before the sink (not included).
  std::vector<geom::Point> stops;
  /// Candidate ids of the recovery stops (parallel to `stops`).
  std::vector<std::size_t> stop_candidates;
  /// Sensors served at each recovery stop (parallel to `stops`; sorted).
  std::vector<std::vector<std::size_t>> stop_sensors;

  /// Sensors that no candidate position covers (graceful-degradation
  /// residue; empty in practice because every sensor covers itself).
  std::vector<std::size_t> uncovered;

  /// Breakdown position -> stops -> sink driving distance (metres).
  double length_m = 0.0;
};

/// Plans the recovery tour for `unserved` (sensor ids, any order,
/// duplicates ignored) from `breakdown_position`. An empty `unserved`
/// yields the direct drive home.
[[nodiscard]] RecoveryPlan replan_remaining(
    const ShdgpInstance& instance, geom::Point breakdown_position,
    const std::vector<std::size_t>& unserved);

}  // namespace mdg::core

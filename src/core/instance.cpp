#include "core/instance.h"

namespace mdg::core {

ShdgpInstance::ShdgpInstance(const net::SensorNetwork& network,
                             cover::CandidateOptions candidates)
    : network_(&network),
      candidate_options_(candidates),
      coverage_(network, candidates) {}

}  // namespace mdg::core

// Multiple-collector extension: split a single gathering tour into k
// balanced subtours, one per M-collector, all anchored at the data sink.
//
// Splitting follows Frederickson–Hecht–Kim's k-SPLITOUR (the classic
// (e + 1 - 1/k)-approximation for min-max k-tours given an e-approximate
// tour), followed by a boundary-shift rebalancing pass and per-subtour
// re-optimisation. The deadline sizing answers the paper's operational
// question: how many collectors must be fielded so a full gathering round
// completes within a latency budget.
#pragma once

#include <cstddef>
#include <vector>

#include "core/solution.h"
#include "geom/point.h"
#include "tsp/solve.h"

namespace mdg::core {

/// One collector's route: sink -> stops... -> sink.
struct Subtour {
  std::vector<geom::Point> stops;  ///< polling points only (sink excluded)
  double length = 0.0;             ///< closed length including the sink legs
};

struct MultiTourPlan {
  std::vector<Subtour> subtours;
  double max_length = 0.0;
  double total_length = 0.0;

  [[nodiscard]] std::size_t collector_count() const { return subtours.size(); }
};

struct MultiCollectorOptions {
  /// Re-run local search on each subtour after splitting.
  bool reoptimize_subtours = true;
  /// Boundary rebalancing sweeps (0 disables).
  std::size_t rebalance_passes = 8;
  tsp::TspEffort subtour_tsp_effort = tsp::TspEffort::kFull;
};

class MultiCollectorPlanner {
 public:
  explicit MultiCollectorPlanner(MultiCollectorOptions options = {})
      : options_(options) {}

  /// Splits `solution`'s tour into k >= 1 subtours anchored at the sink.
  /// Empty subtours are possible when k exceeds the number of polling
  /// points (those collectors simply stay home).
  [[nodiscard]] MultiTourPlan split(const ShdgpInstance& instance,
                                    const ShdgpSolution& solution,
                                    std::size_t k) const;

  /// Minimum number of collectors so that the slowest round
  ///   max_subtour_length / speed + stops_on_it * service_time
  /// fits within `deadline_seconds`. Returns 0 when even one collector
  /// per polling point cannot meet the deadline.
  [[nodiscard]] std::size_t collectors_for_deadline(
      const ShdgpInstance& instance, const ShdgpSolution& solution,
      double deadline_seconds, double speed_m_per_s,
      double service_time_s_per_stop) const;

 private:
  MultiCollectorOptions options_;
};

/// Closed length sink -> stops -> sink.
[[nodiscard]] double subtour_length(geom::Point sink,
                                    std::span<const geom::Point> stops);

}  // namespace mdg::core

// Name -> Planner construction, shared by mdg_cli and mdg_serve.
//
// Both front-ends accept a planner by name plus the small set of
// knobs the paper's experiments vary (polling-point load cap,
// multi-start width). Centralizing the mapping keeps the two
// surfaces agreeing on names and defaults, and gives the serve layer
// a Status-returning path (a daemon must reject an unknown planner
// with an error reply, not an exception).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/planner.h"
#include "core/status.h"

namespace mdg::core {

/// What to build. `name` is one of planner_names(); the knobs apply
/// only to planners that understand them (greedy), others ignore them.
struct PlannerSpec {
  std::string name = "greedy";
  /// Cap on sensors per polling point; 0 = uncapped.
  std::size_t max_pp_load = 0;
  /// Construction multi-start width; 0/1 = single start.
  std::size_t multi_starts = 0;
  /// Relay budget d for the "relay" planner (total hops sensor ->
  /// collector). 1 = single-hop SHDGP; other planners ignore it.
  std::size_t relay_hops = 1;
};

/// The accepted `PlannerSpec::name` values, in documentation order.
[[nodiscard]] const std::vector<std::string>& planner_names();

/// Builds the named planner, or kInvalidArgument naming the accepted
/// set when `spec.name` is unknown.
[[nodiscard]] StatusOr<std::unique_ptr<Planner>> make_planner(
    const PlannerSpec& spec);

}  // namespace mdg::core

// Error taxonomy for the untrusted boundary (file loaders, CLI input,
// fault configs).
//
// Library-internal contracts keep using MDG_REQUIRE / MDG_ASSERT — a
// violated invariant is a programming error and should fail loudly. Data
// that crosses the process boundary (instance files, solution files,
// fault configs, flags) is *expected* to be malformed sometimes; those
// paths return a Status / StatusOr<T> so callers can print a diagnostic
// and exit nonzero instead of aborting. See docs/FAULTS.md §error
// handling.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "util/assert.h"

namespace mdg::core {

enum class StatusCode {
  kOk = 0,
  /// The input is syntactically or semantically malformed (NaN
  /// coordinates, duplicate sensors, negative range, bad token...).
  kInvalidArgument,
  /// A named resource (file, flag target) does not exist or cannot be
  /// opened.
  kNotFound,
  /// The input parsed but describes a state the operation cannot work
  /// from (e.g. a solution that does not match its instance).
  kFailedPrecondition,
  /// The input ended early or was corrupted mid-stream.
  kDataLoss,
  /// A should-not-happen failure surfaced through the Status channel.
  kInternal,
};

[[nodiscard]] const char* to_string(StatusCode code);

/// Value-semantic success/error result. Default-constructed Status is OK.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status ok() { return {}; }
  [[nodiscard]] static Status invalid_argument(std::string message) {
    return {StatusCode::kInvalidArgument, std::move(message)};
  }
  [[nodiscard]] static Status not_found(std::string message) {
    return {StatusCode::kNotFound, std::move(message)};
  }
  [[nodiscard]] static Status failed_precondition(std::string message) {
    return {StatusCode::kFailedPrecondition, std::move(message)};
  }
  [[nodiscard]] static Status data_loss(std::string message) {
    return {StatusCode::kDataLoss, std::move(message)};
  }
  [[nodiscard]] static Status internal(std::string message) {
    return {StatusCode::kInternal, std::move(message)};
  }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// Prepends "context: " to the message (error-path breadcrumbs).
  [[nodiscard]] Status with_context(const std::string& context) const {
    if (is_ok()) {
      return *this;
    }
    return {code_, context + ": " + message_};
  }

  /// "ok" or "<code>: <message>".
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] bool operator==(const Status&) const = default;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A T or the Status explaining why there is no T. Accessing value() on
/// an error is a caller-side contract violation (MDG_REQUIRE).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value) : state_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  StatusOr(Status status) : state_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    MDG_REQUIRE(!std::get<Status>(state_).is_ok(),
                "StatusOr built from an OK status carries no value");
  }

  [[nodiscard]] bool is_ok() const { return std::holds_alternative<T>(state_); }

  [[nodiscard]] Status status() const {
    return is_ok() ? Status::ok() : std::get<Status>(state_);
  }

  [[nodiscard]] const T& value() const& {
    MDG_REQUIRE(is_ok(), "StatusOr::value() on error: " + status().to_string());
    return std::get<T>(state_);
  }
  [[nodiscard]] T& value() & {
    MDG_REQUIRE(is_ok(), "StatusOr::value() on error: " + status().to_string());
    return std::get<T>(state_);
  }
  [[nodiscard]] T&& value() && {
    MDG_REQUIRE(is_ok(), "StatusOr::value() on error: " + status().to_string());
    return std::get<T>(std::move(state_));
  }

  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T* operator->() { return &value(); }

 private:
  std::variant<T, Status> state_;
};

}  // namespace mdg::core

// Greedy-cover SHDGP planner: select polling points by greedy maximum
// coverage (tie-broken toward the sink), then route the collector with a
// TSP heuristic. The classic two-phase decomposition of SHDGP.
#pragma once

#include "core/planner.h"
#include "tsp/solve.h"

namespace mdg::core {

struct GreedyCoverPlannerOptions {
  tsp::TspEffort tsp_effort = tsp::TspEffort::kFull;
  /// Multi-start portfolio width for the routing phase (0/1 = single
  /// start). See tsp::TspSolveOptions::multi_starts.
  std::size_t tsp_multi_starts = 0;
  /// Prefer candidates closer to the sink among equal-coverage ones;
  /// pulls the tour inward.
  bool tie_break_toward_sink = true;
  /// Upper bound on sensors affiliated with one polling point (0 = no
  /// bound). Models bounded collector dwell time / bounded per-stop
  /// contention; extra polling points are added when the bound binds.
  std::size_t max_pp_load = 0;
};

class GreedyCoverPlanner final : public Planner {
 public:
  explicit GreedyCoverPlanner(GreedyCoverPlannerOptions options = {})
      : options_(options) {}

  [[nodiscard]] std::string name() const override { return "greedy-cover"; }
  [[nodiscard]] ShdgpSolution plan(
      const ShdgpInstance& instance) const override;

 private:
  GreedyCoverPlannerOptions options_;
};

}  // namespace mdg::core

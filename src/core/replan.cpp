#include "core/replan.h"

#include <algorithm>
#include <limits>

#include "util/assert.h"

namespace mdg::core {

RecoveryPlan replan_remaining(const ShdgpInstance& instance,
                              geom::Point breakdown_position,
                              const std::vector<std::size_t>& unserved) {
  const cover::CoverageMatrix& matrix = instance.coverage();
  RecoveryPlan plan;

  // Deduplicate and bound-check the request.
  std::vector<std::size_t> targets = unserved;
  std::sort(targets.begin(), targets.end());
  targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
  for (std::size_t s : targets) {
    MDG_REQUIRE(s < instance.sensor_count(), "unserved sensor out of range");
  }

  // Greedy sub-cover over the target set only: repeatedly pick the
  // candidate covering the most still-uncovered targets, tie-broken
  // toward the breakdown position (shorter recovery legs) and then by
  // candidate id (determinism).
  std::vector<bool> wanted(instance.sensor_count(), false);
  for (std::size_t s : targets) {
    wanted[s] = true;
  }
  std::size_t remaining = targets.size();
  std::vector<std::size_t> selected;
  while (remaining > 0) {
    std::size_t best = matrix.candidate_count();
    std::size_t best_gain = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    // Only candidates covering some target can gain; scan via the
    // per-sensor covering lists to avoid a full candidate sweep.
    std::vector<std::size_t> contenders;
    for (std::size_t s : targets) {
      if (!wanted[s]) {
        continue;
      }
      const auto& covering = matrix.covering(s);
      contenders.insert(contenders.end(), covering.begin(), covering.end());
    }
    std::sort(contenders.begin(), contenders.end());
    contenders.erase(std::unique(contenders.begin(), contenders.end()),
                     contenders.end());
    for (std::size_t c : contenders) {
      std::size_t gain = 0;
      for (std::size_t s : matrix.covered_by(c)) {
        if (wanted[s]) {
          ++gain;
        }
      }
      if (gain == 0) {
        continue;
      }
      const double dist =
          geom::distance(matrix.candidate(c), breakdown_position);
      if (gain > best_gain ||
          (gain == best_gain && (dist < best_dist ||
                                 (dist == best_dist && c < best)))) {
        best = c;
        best_gain = gain;
        best_dist = dist;
      }
    }
    if (best == matrix.candidate_count()) {
      break;  // nothing covers the rest — degrade, don't crash
    }
    selected.push_back(best);
    for (std::size_t s : matrix.covered_by(best)) {
      if (wanted[s]) {
        wanted[s] = false;
        --remaining;
      }
    }
  }
  for (std::size_t s : targets) {
    if (wanted[s]) {
      plan.uncovered.push_back(s);
    }
  }
  plan.feasible = plan.uncovered.empty();

  // Affiliation: each covered target uploads at the nearest selected
  // recovery stop that covers it.
  const net::SensorNetwork& network = instance.network();
  std::vector<std::vector<std::size_t>> sensors_of(selected.size());
  for (std::size_t s : targets) {
    double nearest = std::numeric_limits<double>::infinity();
    std::size_t pick = selected.size();
    for (std::size_t i = 0; i < selected.size(); ++i) {
      const auto& covered = matrix.covered_by(selected[i]);
      if (!std::binary_search(covered.begin(), covered.end(), s)) {
        continue;
      }
      const double d =
          geom::distance(network.position(s), matrix.candidate(selected[i]));
      if (d < nearest || (d == nearest && pick < selected.size() &&
                          selected[i] < selected[pick])) {
        nearest = d;
        pick = i;
      }
    }
    if (pick < selected.size()) {
      sensors_of[pick].push_back(s);
    }
  }

  // Order the stops nearest-neighbour from the breakdown position; the
  // recovery tour is open (it ends at the sink, not back at the
  // breakdown point). Stops whose targets all got affiliated elsewhere
  // are still visited only if they serve someone.
  std::vector<bool> used(selected.size(), false);
  geom::Point cursor = breakdown_position;
  for (;;) {
    std::size_t pick = selected.size();
    double nearest = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < selected.size(); ++i) {
      if (used[i] || sensors_of[i].empty()) {
        continue;
      }
      const double d = geom::distance(cursor, matrix.candidate(selected[i]));
      if (d < nearest || (d == nearest && pick < selected.size() &&
                          selected[i] < selected[pick])) {
        nearest = d;
        pick = i;
      }
    }
    if (pick == selected.size()) {
      break;
    }
    used[pick] = true;
    plan.stop_candidates.push_back(selected[pick]);
    plan.stops.push_back(matrix.candidate(selected[pick]));
    plan.stop_sensors.push_back(sensors_of[pick]);
    plan.length_m += nearest;
    cursor = plan.stops.back();
  }
  plan.length_m += geom::distance(cursor, instance.sink());
  return plan;
}

}  // namespace mdg::core

#include "core/replan.h"

#include <algorithm>

#include "cover/repair.h"
#include "util/assert.h"

namespace mdg::core {

namespace {

/// cover::CoverView over the instance's prebuilt coverage matrix.
class MatrixCoverView {
 public:
  explicit MatrixCoverView(const ShdgpInstance& instance)
      : matrix_(instance.coverage()), network_(instance.network()) {}

  [[nodiscard]] std::size_t universe() const { return matrix_.sensor_count(); }
  [[nodiscard]] std::size_t candidate_limit() const {
    return matrix_.candidate_count();
  }
  [[nodiscard]] geom::Point position(std::size_t c) const {
    return matrix_.candidate(c);
  }
  [[nodiscard]] geom::Point sensor_position(std::size_t s) const {
    return network_.position(s);
  }
  [[nodiscard]] const std::vector<std::size_t>& covered(std::size_t c) const {
    return matrix_.covered_by(c);
  }
  [[nodiscard]] const std::vector<std::size_t>& covering(std::size_t s) const {
    return matrix_.covering(s);
  }

 private:
  const cover::CoverageMatrix& matrix_;
  const net::SensorNetwork& network_;
};

}  // namespace

RecoveryPlan replan_remaining(const ShdgpInstance& instance,
                              geom::Point breakdown_position,
                              const std::vector<std::size_t>& unserved) {
  RecoveryPlan plan;

  // Deduplicate and bound-check the request.
  std::vector<std::size_t> targets = unserved;
  std::sort(targets.begin(), targets.end());
  targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
  for (std::size_t s : targets) {
    MDG_REQUIRE(s < instance.sensor_count(), "unserved sensor out of range");
  }

  // The three shared repair kernels (cover/repair.h): greedy sub-cover
  // over the target set tie-broken toward the breakdown position,
  // nearest-stop affiliation, nearest-neighbour stop ordering. The
  // delta path (core::apply_delta) runs the same kernels over a live
  // grid view; here the view is the instance's coverage matrix.
  MatrixCoverView view(instance);
  const cover::PartialCoverResult cover =
      cover::greedy_partial_cover(view, targets, breakdown_position);
  plan.uncovered = cover.uncovered;
  plan.feasible = plan.uncovered.empty();

  const std::vector<std::vector<std::size_t>> sensors_of =
      cover::affiliate_nearest(view, targets, cover.selected);

  // Order the stops nearest-neighbour from the breakdown position; the
  // recovery tour is open (it ends at the sink, not back at the
  // breakdown point). Stops whose targets all got affiliated elsewhere
  // are still visited only if they serve someone.
  const cover::OrderedStops ordered =
      cover::order_stops_nearest(view, cover.selected, sensors_of,
                                 breakdown_position);
  for (std::size_t slot : ordered.order) {
    plan.stop_candidates.push_back(cover.selected[slot]);
    plan.stops.push_back(view.position(cover.selected[slot]));
    plan.stop_sensors.push_back(sensors_of[slot]);
  }
  plan.length_m = ordered.length;
  plan.length_m += geom::distance(ordered.cursor, instance.sink());
  return plan;
}

}  // namespace mdg::core

#include "serve/snapshot.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/report.h"
#include "serve/plan_cache.h"

namespace mdg::serve {
namespace {

constexpr std::string_view kMagicLine = "mdg-cache-snapshot 1";

std::string to_hex16(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return std::string(buf, 16);
}

/// Consumes one '\n'-terminated line starting at `pos`; false when the
/// bytes end before a newline (torn file).
bool take_line(const std::string& bytes, std::size_t& pos,
               std::string& line) {
  const std::size_t nl = bytes.find('\n', pos);
  if (nl == std::string::npos) {
    return false;
  }
  line.assign(bytes, pos, nl - pos);
  pos = nl + 1;
  return true;
}

core::Status parse_count(const std::string& text, std::uint64_t& out) {
  if (text.empty() || text.size() > 19) {
    return core::Status::data_loss("snapshot: bad count '" + text + "'");
  }
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      return core::Status::data_loss("snapshot: bad count '" + text + "'");
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = value;
  return core::Status::ok();
}

}  // namespace

std::string build_snapshot(const std::vector<SnapshotEntry>& entries) {
  std::ostringstream out;
  out << kMagicLine << "\n";
  out << "build " << obs::current_git_describe() << "\n";
  out << "entries " << entries.size() << "\n";
  for (const SnapshotEntry& entry : entries) {
    out << "entry " << entry.request_payload.size() << " "
        << entry.reply_payload.size() << "\n";
    out << entry.request_payload << "\n";
    out << entry.reply_payload << "\n";
  }
  std::string bytes = out.str();
  bytes += "checksum " + to_hex16(fnv1a64(bytes)) + "\n";
  return bytes;
}

core::StatusOr<std::size_t> save_snapshot(
    const std::string& path, const std::vector<SnapshotEntry>& entries) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) {
      return core::Status::internal("snapshot: cannot open '" + tmp +
                                    "' for writing");
    }
    const std::string bytes = build_snapshot(entries);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out.good()) {
      std::remove(tmp.c_str());
      return core::Status::internal("snapshot: write to '" + tmp +
                                    "' failed");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string reason = std::strerror(errno);
    std::remove(tmp.c_str());
    return core::Status::internal("snapshot: rename to '" + path +
                                  "' failed: " + reason);
  }
  return entries.size();
}

core::StatusOr<std::vector<SnapshotEntry>> parse_snapshot(
    const std::string& bytes) {
  std::size_t pos = 0;
  std::string line;
  if (!take_line(bytes, pos, line)) {
    return core::Status::data_loss("snapshot: empty or torn header");
  }
  if (line != kMagicLine) {
    return core::Status::invalid_argument(
        "snapshot: bad magic/version line '" + line + "' (expected '" +
        std::string(kMagicLine) + "')");
  }
  if (!take_line(bytes, pos, line) || line.rfind("build ", 0) != 0) {
    return core::Status::data_loss("snapshot: missing build line");
  }
  const std::string build = line.substr(6);
  if (build != obs::current_git_describe()) {
    return core::Status::invalid_argument(
        "snapshot: stale build '" + build + "' (this build is '" +
        obs::current_git_describe() +
        "'; replies may not be byte-identical)");
  }
  if (!take_line(bytes, pos, line) || line.rfind("entries ", 0) != 0) {
    return core::Status::data_loss("snapshot: missing entries line");
  }
  std::uint64_t count = 0;
  if (core::Status s = parse_count(line.substr(8), count); !s.is_ok()) {
    return s;
  }
  std::vector<SnapshotEntry> entries;
  entries.reserve(static_cast<std::size_t>(
      count < 4096 ? count : 4096));  // don't trust a hostile count
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!take_line(bytes, pos, line) || line.rfind("entry ", 0) != 0) {
      return core::Status::data_loss("snapshot: torn at entry " +
                                     std::to_string(i));
    }
    std::istringstream head(line.substr(6));
    std::uint64_t req_len = 0;
    std::uint64_t reply_len = 0;
    std::string req_text;
    std::string reply_text;
    if (!(head >> req_text >> reply_text) || !(head >> std::ws).eof()) {
      return core::Status::data_loss("snapshot: bad entry header '" + line +
                                     "'");
    }
    if (core::Status s = parse_count(req_text, req_len); !s.is_ok()) {
      return s;
    }
    if (core::Status s = parse_count(reply_text, reply_len); !s.is_ok()) {
      return s;
    }
    // Each payload is followed by one '\n' separator.
    if (req_len + 1 > bytes.size() - pos ||
        reply_len + 1 > bytes.size() - pos - req_len - 1) {
      return core::Status::data_loss("snapshot: entry " + std::to_string(i) +
                                     " runs past end of file");
    }
    SnapshotEntry entry;
    entry.request_payload.assign(bytes, pos, req_len);
    pos += req_len;
    if (bytes[pos] != '\n') {
      return core::Status::data_loss("snapshot: entry " + std::to_string(i) +
                                     " request not newline-terminated");
    }
    ++pos;
    entry.reply_payload.assign(bytes, pos, reply_len);
    pos += reply_len;
    if (bytes[pos] != '\n') {
      return core::Status::data_loss("snapshot: entry " + std::to_string(i) +
                                     " reply not newline-terminated");
    }
    ++pos;
    entries.push_back(std::move(entry));
  }
  const std::size_t checksum_at = pos;
  if (!take_line(bytes, pos, line) || line.rfind("checksum ", 0) != 0) {
    return core::Status::data_loss("snapshot: missing checksum line");
  }
  if (pos != bytes.size()) {
    return core::Status::data_loss("snapshot: trailing bytes after checksum");
  }
  const std::string expected =
      to_hex16(fnv1a64(std::string_view(bytes.data(), checksum_at)));
  if (line.substr(9) != expected) {
    return core::Status::data_loss("snapshot: checksum mismatch (stored " +
                                   line.substr(9) + ", computed " + expected +
                                   ")");
  }
  return entries;
}

core::StatusOr<std::vector<SnapshotEntry>> load_snapshot(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return core::Status::not_found("snapshot: no file at '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return core::Status::data_loss("snapshot: read of '" + path + "' failed");
  }
  return parse_snapshot(buffer.str());
}

}  // namespace mdg::serve

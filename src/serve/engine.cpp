#include "serve/engine.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <sstream>
#include <utility>

#include "core/delta.h"
#include "core/greedy_cover_planner.h"
#include "core/instance.h"
#include "io/delta_io.h"
#include "core/planner_factory.h"
#include "core/refine.h"
#include "io/serialize.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/span.h"
#include "sim/energy.h"
#include "sim/mobile_sim.h"
#include "tsp/improve.h"
#include "util/log.h"
#include "util/thread_pool.h"
#include "verify/canonical.h"
#include "verify/check.h"

namespace mdg::serve {
namespace {

using Clock = std::chrono::steady_clock;

Frame ok_reply(std::uint32_t id, std::uint32_t flags, std::string payload) {
  return Frame{FrameType::kReplyOk, id, flags, std::move(payload)};
}

Frame error_reply(std::uint32_t id, const core::Status& status) {
  return Frame{FrameType::kReplyError, id, 0, build_error_payload(status)};
}

/// Hexfloat (exact, locale-free) emission for hashing geometry.
void emit_hex_point(std::ostream& out, geom::Point p) {
  out << std::hexfloat << p.x << ' ' << p.y << '\n' << std::defaultfloat;
}

bool point_less(geom::Point a, geom::Point b) {
  return a.x < b.x || (a.x == b.x && a.y < b.y);
}

/// The warm index key: load cap + sink + the *sorted* polling-point
/// set. Requests that differ only in multi-start width or deadline
/// produce the same cover and therefore the same signature.
std::uint64_t warm_signature_of(std::size_t max_load, geom::Point sink,
                                std::vector<geom::Point> points) {
  std::sort(points.begin(), points.end(), point_less);
  std::ostringstream out;
  out << "max-load " << max_load << '\n';
  emit_hex_point(out, sink);
  for (const geom::Point p : points) {
    emit_hex_point(out, p);
  }
  return fnv1a64(out.str());
}

/// The options half of the canonical cache key. Everything that can
/// change the reply bytes must appear here; in particular the deadline
/// is part of the key so a deadline-truncated plan can never answer a
/// request that allowed more time. `warm` is deliberately absent: only
/// cold plans are ever inserted, and cold-plan bytes do not depend on
/// whether the request allowed warm-starting.
std::string options_fingerprint(const PlanRequestOptions& options) {
  std::ostringstream out;
  out << "planner " << options.planner << '\n'
      << "max-load " << options.max_load << '\n'
      << "multi-start " << options.multi_start << '\n'
      << "refine " << (options.refine ? 1 : 0) << '\n'
      << "deadline-ms " << options.deadline_ms << '\n'
      << "relay-hops " << options.relay_hops << '\n';
  return out.str();
}

std::string plan_reply_payload(const core::ShdgpSolution& solution) {
  return "mdg-reply 1\nop plan\n" + io::to_text(solution);
}

/// Re-indexes a tour over [sink] + local points into the cache's
/// sorted-point index space (or back, when `invert`).
std::vector<std::size_t> sorted_order_of(const core::ShdgpSolution& solution) {
  const std::vector<geom::Point>& points = solution.polling_points;
  std::vector<std::size_t> by_point(points.size());
  for (std::size_t i = 0; i < by_point.size(); ++i) {
    by_point[i] = i;
  }
  std::sort(by_point.begin(), by_point.end(),
            [&](std::size_t a, std::size_t b) {
              return point_less(points[a], points[b]);
            });
  // local_to_sorted[local] = rank of that point in sorted order.
  std::vector<std::size_t> local_to_sorted(points.size());
  for (std::size_t rank = 0; rank < by_point.size(); ++rank) {
    local_to_sorted[by_point[rank]] = rank;
  }
  std::vector<std::size_t> order;
  order.reserve(solution.tour.size());
  for (const std::size_t idx : solution.tour.order()) {
    order.push_back(idx == 0 ? 0 : 1 + local_to_sorted[idx - 1]);
  }
  return order;
}

/// Recovers the solution a cached plan reply carries (the payload is
/// "mdg-reply 1\nop plan\n" + io::to_text(solution)). nullopt means the
/// entry is not a plan reply — callers fall back to cold planning.
std::optional<core::ShdgpSolution> solution_from_plan_reply(
    const std::string& payload) {
  std::istringstream in(payload);
  std::string line;
  if (!std::getline(in, line) || line != "mdg-reply 1") {
    return std::nullopt;
  }
  if (!std::getline(in, line) || line != "op plan") {
    return std::nullopt;
  }
  auto solution = io::try_read_solution(in);
  if (!solution.is_ok()) {
    return std::nullopt;
  }
  return std::move(solution).value();
}

CachedPlan make_cached_plan(const core::ShdgpInstance& instance,
                            const core::ShdgpSolution& solution,
                            std::string reply_payload) {
  CachedPlan cached;
  cached.reply_payload = std::move(reply_payload);
  cached.sink = instance.sink();
  cached.sorted_points = solution.polling_points;
  std::sort(cached.sorted_points.begin(), cached.sorted_points.end(),
            point_less);
  cached.canonical_tour = sorted_order_of(solution);
  return cached;
}

}  // namespace

Engine::Engine(EngineOptions options)
    : options_(options), cache_(options.cache_capacity) {}

Frame Engine::handle(const Frame& request) { return handle(request, {}); }

Frame Engine::handle(const Frame& request, const HandleContext& ctx) {
  OBS_SPAN(obs::metric::kServeRequest);
  requests_.fetch_add(1, std::memory_order_relaxed);
  MDG_OBS_COUNT(obs::metric::kServeRequests, 1);
  switch (request.type) {
    case FrameType::kPlanRequest:
      return handle_plan(request, ctx);
    case FrameType::kDeltaRequest:
      return handle_delta(request);
    case FrameType::kSimulateRequest:
      return handle_simulate(request);
    case FrameType::kStatsRequest:
      return handle_stats(request);
    case FrameType::kPing:
      return Frame{FrameType::kPong, request.id, 0, {}};
    case FrameType::kShutdown:
      shutdown_.store(true, std::memory_order_release);
      return ok_reply(request.id, 0, "mdg-reply 1\nop shutdown\n");
    default: {
      errors_.fetch_add(1, std::memory_order_relaxed);
      MDG_OBS_COUNT(obs::metric::kServeErrors, 1);
      return error_reply(request.id,
                         core::Status::invalid_argument(
                             "reply frame type sent as a request"));
    }
  }
}

Frame Engine::handle_plan(const Frame& request, const HandleContext& ctx) {
  // Fast path: the byte-identical request was answered before. No
  // parsing, no planning — one hash over the payload.
  const std::uint64_t raw_key = fnv1a64(request.payload);
  if (const auto hit = cache_.find_raw(raw_key)) {
    hits_exact_.fetch_add(1, std::memory_order_relaxed);
    MDG_OBS_COUNT(obs::metric::kServeHitsExact, 1);
    return ok_reply(request.id, kFlagCacheExact, hit->reply_payload);
  }

  auto parsed = parse_plan_request(request.payload);
  if (!parsed.is_ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    MDG_OBS_COUNT(obs::metric::kServeErrors, 1);
    return error_reply(request.id, parsed.status());
  }
  PlanRequest req = std::move(parsed).value();

  // Canonical path: a differently-spelled payload for the same
  // instance + options reuses the cached reply and registers this
  // spelling as a raw alias.
  const std::uint64_t canonical_key =
      fnv1a64(verify::canonical_network_bytes(req.network),
              fnv1a64(options_fingerprint(req.options)));
  if (const auto hit = cache_.find_canonical(canonical_key)) {
    cache_.alias_raw(raw_key, canonical_key);
    hits_exact_.fetch_add(1, std::memory_order_relaxed);
    MDG_OBS_COUNT(obs::metric::kServeHitsExact, 1);
    return ok_reply(request.id, kFlagCacheExact, hit->reply_payload);
  }

  core::PlannerSpec spec;
  spec.name = req.options.planner;
  spec.max_pp_load = req.options.max_load;
  spec.multi_starts = req.options.multi_start;
  spec.relay_hops = req.options.relay_hops;
  auto planner = core::make_planner(spec);
  if (!planner.is_ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    MDG_OBS_COUNT(obs::metric::kServeErrors, 1);
    return error_reply(request.id, planner.status());
  }

  const core::ShdgpInstance instance(req.network);

  // Brownout degradation (docs/SERVE.md §Operations): under sustained
  // overload the greedy planner serves a construction-only tour — the
  // deterministic "cheap answer" — flagged kFlagBrownout and never
  // cached, so the cache only ever holds full-effort bytes. Cache hits
  // above were still served at full quality (they cost nothing);
  // non-degradable planners fall through to the normal path.
  if (ctx.brownout && req.options.planner == "greedy") {
    core::GreedyCoverPlannerOptions degraded;
    degraded.tsp_effort = tsp::TspEffort::kConstructionOnly;
    degraded.max_pp_load = req.options.max_load;
    core::ShdgpSolution cheap =
        core::GreedyCoverPlanner(degraded).plan(instance);
    if (req.options.refine) {
      core::refine_polling_positions(instance, cheap, {});
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    MDG_OBS_COUNT(obs::metric::kServeMisses, 1);
    brownout_served_.fetch_add(1, std::memory_order_relaxed);
    MDG_OBS_COUNT(obs::metric::kServeBrownoutServed, 1);
    return ok_reply(request.id, kFlagCacheMiss | kFlagBrownout,
                    plan_reply_payload(cheap));
  }

  const bool has_deadline = req.options.deadline_ms > 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(req.options.deadline_ms);

  // Warm-start rule (ALGORITHMS.md §Serving): greedy planner, no
  // refinement. The cover phase is deterministic and cheap relative to
  // routing, so run it as a probe; when a cached plan covers the same
  // polling-point set, re-map its tour and improve from there instead
  // of constructing from scratch.
  const bool warm_eligible = req.options.warm &&
                             req.options.planner == "greedy" &&
                             !req.options.refine &&
                             req.options.relay_hops == 1;
  std::uint64_t signature = PlanCache::kNoKey;
  core::ShdgpSolution solution;
  bool planned = false;
  bool deadline_hit = false;
  std::uint32_t cache_flags = kFlagCacheMiss;
  if (warm_eligible) {
    core::GreedyCoverPlannerOptions probe_options;
    probe_options.tsp_effort = tsp::TspEffort::kConstructionOnly;
    probe_options.max_pp_load = req.options.max_load;
    core::ShdgpSolution probe =
        core::GreedyCoverPlanner(probe_options).plan(instance);
    signature = warm_signature_of(req.options.max_load, instance.sink(),
                                  probe.polling_points);
    if (const auto donor = cache_.find_warm(signature)) {
      std::vector<geom::Point> sorted = probe.polling_points;
      std::sort(sorted.begin(), sorted.end(), point_less);
      const bool same_cover = donor->sink == instance.sink() &&
                              donor->sorted_points == sorted &&
                              donor->canonical_tour.size() ==
                                  probe.tour.size();
      if (same_cover) {
        // Invert the sort: sorted rank -> this request's local index.
        std::vector<std::size_t> by_point(probe.polling_points.size());
        for (std::size_t i = 0; i < by_point.size(); ++i) {
          by_point[i] = i;
        }
        std::sort(by_point.begin(), by_point.end(),
                  [&](std::size_t a, std::size_t b) {
                    return point_less(probe.polling_points[a],
                                      probe.polling_points[b]);
                  });
        std::vector<std::size_t> order;
        order.reserve(donor->canonical_tour.size());
        for (const std::size_t idx : donor->canonical_tour) {
          order.push_back(idx == 0 ? 0 : 1 + by_point[idx - 1]);
        }
        probe.tour = tsp::Tour(std::move(order));
        std::vector<geom::Point> all;
        all.reserve(probe.polling_points.size() + 1);
        all.push_back(instance.sink());
        all.insert(all.end(), probe.polling_points.begin(),
                   probe.polling_points.end());
        {
          std::optional<tsp::ScopedImproveDeadline> scope;
          if (has_deadline) {
            scope.emplace(deadline);
          }
          tsp::improve(probe.tour, all);
          deadline_hit = has_deadline && tsp::improve_deadline_expired();
        }
        probe.tour_length = probe.tour.length(all);
        if (verify::check_solution(instance, probe).is_ok()) {
          solution = std::move(probe);
          planned = true;
          cache_flags = kFlagCacheWarm;
          hits_warm_.fetch_add(1, std::memory_order_relaxed);
          MDG_OBS_COUNT(obs::metric::kServeHitsWarm, 1);
        }
        // A failed check falls through to the cold path below — the
        // donor stays cached (it checked out when inserted).
      }
    }
  }

  if (!planned) {
    std::optional<tsp::ScopedImproveDeadline> scope;
    if (has_deadline) {
      scope.emplace(deadline);
    }
    solution = planner.value()->plan(instance);
    if (req.options.refine) {
      core::refine_polling_positions(instance, solution, {});
    }
    deadline_hit = has_deadline && tsp::improve_deadline_expired();
    misses_.fetch_add(1, std::memory_order_relaxed);
    MDG_OBS_COUNT(obs::metric::kServeMisses, 1);
  }

  if (deadline_hit) {
    deadline_expired_.fetch_add(1, std::memory_order_relaxed);
    MDG_OBS_COUNT(obs::metric::kServeDeadlineExpired, 1);
  }

  std::string payload = plan_reply_payload(solution);
  // Only cold plans enter the cache. Deadline-truncated plans are
  // valid but time-dependent; caching them would let one slow moment
  // answer forever. Warm-started plans converge to a donor-dependent
  // local optimum whose bytes can differ from the cold plan's, so
  // inserting them under the raw/canonical keys would break the
  // byte-identical contract (docs/SERVE.md) and make exact-hit replies
  // depend on server traffic history. Their donor stays cached.
  if (!deadline_hit && cache_flags == kFlagCacheMiss) {
    const std::uint64_t donate_signature =
        (req.options.planner == "greedy" && !req.options.refine)
            ? (signature != PlanCache::kNoKey
                   ? signature
                   : warm_signature_of(req.options.max_load, instance.sink(),
                                       solution.polling_points))
            : PlanCache::kNoKey;
    CachedPlan cached = make_cached_plan(instance, solution, payload);
    // Cold plan-path entries are snapshot-eligible: remember the
    // request payload so the crash-recovery snapshot can persist the
    // (request, reply) pair (serve/snapshot.h).
    cached.request_payload = request.payload;
    cache_.insert(raw_key, canonical_key, donate_signature,
                  std::move(cached));
    MDG_OBS_GAUGE(obs::metric::kServeCacheEntries,
                  static_cast<double>(cache_.size()));
  }
  return ok_reply(request.id,
                  cache_flags | (deadline_hit ? kFlagDeadlineHit : 0),
                  std::move(payload));
}

Frame Engine::handle_delta(const Frame& request) {
  delta_requests_.fetch_add(1, std::memory_order_relaxed);
  MDG_OBS_COUNT(obs::metric::kServeDeltaRequests, 1);

  // Exact hit on the full delta request (base identity + delta bytes):
  // the repaired reply was computed before and is byte-deterministic.
  const std::uint64_t raw_key = fnv1a64(request.payload);
  if (const auto hit = cache_.find_raw(raw_key)) {
    hits_exact_.fetch_add(1, std::memory_order_relaxed);
    MDG_OBS_COUNT(obs::metric::kServeHitsExact, 1);
    return ok_reply(request.id, kFlagCacheExact, hit->reply_payload);
  }

  auto parsed = parse_delta_request(request.payload);
  if (!parsed.is_ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    MDG_OBS_COUNT(obs::metric::kServeErrors, 1);
    return error_reply(request.id, parsed.status());
  }
  DeltaRequest req = std::move(parsed).value();

  // The incremental repair path has no relay semantics: apply_delta's
  // set-cover repair is single-hop. Reject rather than silently produce
  // a plan under the wrong budget.
  if (req.options.relay_hops != 1) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    MDG_OBS_COUNT(obs::metric::kServeErrors, 1);
    return error_reply(request.id,
                       core::Status::invalid_argument(
                           "op delta does not support relay-hops != 1"));
  }

  // Canonical identity: delta replies live in their own "delta\n" key
  // namespace so they can never be confused with a plan reply for the
  // post-delta network (their payloads carry repair stats).
  const std::string fingerprint = options_fingerprint(req.options);
  const std::uint64_t base_canonical =
      fnv1a64(verify::canonical_network_bytes(req.network),
              fnv1a64(fingerprint));
  const std::uint64_t delta_canonical =
      fnv1a64(io::to_text(req.delta), fnv1a64("delta\n", base_canonical));
  if (const auto hit = cache_.find_canonical(delta_canonical)) {
    cache_.alias_raw(raw_key, delta_canonical);
    hits_exact_.fetch_add(1, std::memory_order_relaxed);
    MDG_OBS_COUNT(obs::metric::kServeHitsExact, 1);
    return ok_reply(request.id, kFlagCacheExact, hit->reply_payload);
  }

  // The base plan shares the plan path's canonical identity: a prior
  // `op plan` for the same network and options is reused directly, and
  // a base planned here is inserted under the key the equivalent plan
  // request would look up.
  const core::ShdgpInstance base_instance(req.network);
  core::ShdgpSolution base;
  bool base_from_cache = false;
  if (const auto hit = cache_.find_canonical(base_canonical)) {
    if (auto solution = solution_from_plan_reply(hit->reply_payload)) {
      base = std::move(*solution);
      base_from_cache = true;
    }
  }
  bool deadline_hit = false;
  if (!base_from_cache) {
    core::PlannerSpec spec;
    spec.name = req.options.planner;
    spec.max_pp_load = req.options.max_load;
    spec.multi_starts = req.options.multi_start;
    spec.relay_hops = req.options.relay_hops;
    auto planner = core::make_planner(spec);
    if (!planner.is_ok()) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      MDG_OBS_COUNT(obs::metric::kServeErrors, 1);
      return error_reply(request.id, planner.status());
    }
    const bool has_deadline = req.options.deadline_ms > 0;
    {
      std::optional<tsp::ScopedImproveDeadline> scope;
      if (has_deadline) {
        scope.emplace(Clock::now() +
                      std::chrono::milliseconds(req.options.deadline_ms));
      }
      base = planner.value()->plan(base_instance);
      if (req.options.refine) {
        core::refine_polling_positions(base_instance, base, {});
      }
      deadline_hit = has_deadline && tsp::improve_deadline_expired();
    }
    delta_base_plans_.fetch_add(1, std::memory_order_relaxed);
    MDG_OBS_COUNT(obs::metric::kServeDeltaBasePlans, 1);
    if (deadline_hit) {
      deadline_expired_.fetch_add(1, std::memory_order_relaxed);
      MDG_OBS_COUNT(obs::metric::kServeDeadlineExpired, 1);
    } else {
      // Donate the base plan to the plan path (same insertion rule as
      // handle_plan's cold branch, including the warm signature and
      // snapshot eligibility).
      std::string base_payload = plan_reply_payload(base);
      std::string base_request = build_plan_request(req.options, req.network);
      const std::uint64_t base_raw = fnv1a64(base_request);
      const std::uint64_t signature =
          (req.options.planner == "greedy" && !req.options.refine)
              ? warm_signature_of(req.options.max_load, base_instance.sink(),
                                  base.polling_points)
              : PlanCache::kNoKey;
      CachedPlan cached =
          make_cached_plan(base_instance, base, std::move(base_payload));
      cached.request_payload = std::move(base_request);
      cache_.insert(base_raw, base_canonical, signature, std::move(cached));
    }
  }

  // Incremental repair. The full-replan fallback inherits the
  // request's base-plan knobs so a dispatched replan matches what a
  // fresh plan request would produce.
  core::DynamicInstance dyn(req.network);
  core::DeltaOptions delta_options;
  delta_options.fallback.max_pp_load = req.options.max_load;
  delta_options.fallback.tsp_multi_starts = req.options.multi_start;
  auto result = core::apply_delta(dyn, req.delta, base, delta_options);
  if (!result.is_ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    MDG_OBS_COUNT(obs::metric::kServeErrors, 1);
    return error_reply(request.id, result.status());
  }
  if (!result->full_replan) {
    delta_repaired_.fetch_add(1, std::memory_order_relaxed);
    MDG_OBS_COUNT(obs::metric::kServeDeltaRepaired, 1);
  }

  std::ostringstream out;
  out << "mdg-reply 1\n"
      << "op delta\n"
      << "ops " << result->ops_applied << "\n"
      << "damaged " << result->damaged << "\n"
      << "pps-added " << result->pps_added << "\n"
      << "pps-removed " << result->pps_removed << "\n"
      << "full-replan " << (result->full_replan ? 1 : 0) << "\n"
      << "solution\n"
      << io::to_text(base);
  std::string payload = out.str();
  if (!deadline_hit) {
    cache_.insert(raw_key, delta_canonical, PlanCache::kNoKey,
                  make_cached_plan(dyn.instance(), base, payload));
    MDG_OBS_GAUGE(obs::metric::kServeCacheEntries,
                  static_cast<double>(cache_.size()));
  }
  const std::uint32_t cache_flags =
      base_from_cache ? kFlagCacheRepaired : kFlagCacheMiss;
  return ok_reply(request.id,
                  cache_flags | (deadline_hit ? kFlagDeadlineHit : 0),
                  std::move(payload));
}

Frame Engine::handle_simulate(const Frame& request) {
  auto parsed = parse_simulate_request(request.payload);
  if (!parsed.is_ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    MDG_OBS_COUNT(obs::metric::kServeErrors, 1);
    return error_reply(request.id, parsed.status());
  }
  SimulateRequest req = std::move(parsed).value();
  const core::ShdgpInstance instance(req.network);
  const core::Status valid = verify::check_solution(instance, req.solution);
  if (!valid.is_ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    MDG_OBS_COUNT(obs::metric::kServeErrors, 1);
    return error_reply(
        request.id,
        core::Status::failed_precondition(
            "solution does not fit the network: " + valid.message()));
  }

  sim::MobileSimConfig config;
  config.speed_m_per_s = req.speed;
  config.initial_battery_j = req.battery;
  config.loss_seed = req.seed;
  sim::MobileCollectionSim sim(instance, req.solution, config);
  sim::EnergyLedger ledger(req.network.size(), req.battery);
  double clock = 0.0;
  std::size_t delivered = 0;
  std::size_t offered = 0;
  for (std::size_t r = 0; r < req.rounds; ++r) {
    const sim::MobileRoundReport round = sim.run_round(ledger, clock);
    clock += round.duration_s;
    delivered += round.delivered;
    offered += round.offered;
  }
  std::ostringstream out;
  out.precision(17);
  out << "mdg-reply 1\n"
      << "op simulate\n"
      << "rounds " << req.rounds << "\n"
      << "duration-s " << clock << "\n"
      << "delivered " << delivered << "\n"
      << "offered " << offered << "\n"
      << "alive " << ledger.alive_count() << "\n";
  return ok_reply(request.id, 0, out.str());
}

Frame Engine::handle_stats(const Frame& request) {
  const EngineStats stats = this->stats();
  std::ostringstream out;
  out << "mdg-reply 1\n"
      << "op stats\n"
      << "requests " << stats.requests << "\n"
      << "hits-exact " << stats.hits_exact << "\n"
      << "hits-warm " << stats.hits_warm << "\n"
      << "misses " << stats.misses << "\n"
      << "errors " << stats.errors << "\n"
      << "deadline-expired " << stats.deadline_expired << "\n"
      << "rejected " << stats.rejected << "\n"
      << "cache-entries " << stats.cache_entries << "\n";
  return ok_reply(request.id, 0, out.str());
}

std::vector<Frame> Engine::handle_many(std::span<const Frame> requests) {
  std::vector<Frame> replies(requests.size());
  mdg::parallel_for(requests.size(), [&](std::size_t i) {
    replies[i] = handle(requests[i]);
  });
  return replies;
}

std::vector<SnapshotEntry> Engine::snapshot_entries() const {
  std::vector<SnapshotEntry> out;
  for (const std::shared_ptr<const CachedPlan>& plan :
       cache_.entries_oldest_first()) {
    if (plan->request_payload.empty()) {
      continue;  // in-memory-only entry (e.g. a delta reply)
    }
    out.push_back(SnapshotEntry{plan->request_payload, plan->reply_payload});
  }
  return out;
}

std::size_t Engine::restore_cache(const std::vector<SnapshotEntry>& entries) {
  std::size_t restored = 0;
  std::size_t dropped = 0;
  for (const SnapshotEntry& entry : entries) {
    // A snapshot is data, not authority: every entry re-runs the exact
    // gates a live cold insert runs. Parse the request from scratch...
    auto parsed = parse_plan_request(entry.request_payload);
    if (!parsed.is_ok()) {
      ++dropped;
      MDG_LOG(kWarning) << "snapshot entry dropped (bad request): "
                        << parsed.status().message();
      continue;
    }
    const PlanRequest& req = parsed.value();
    // ... recover the solution the reply claims to carry ...
    auto solution = solution_from_plan_reply(entry.reply_payload);
    if (!solution.has_value()) {
      ++dropped;
      MDG_LOG(kWarning) << "snapshot entry dropped: reply is not a "
                           "well-formed plan reply";
      continue;
    }
    // ... and re-gate it against the instance before trusting it.
    const core::ShdgpInstance instance(req.network);
    if (const core::Status valid = verify::check_solution(instance, *solution);
        !valid.is_ok()) {
      ++dropped;
      MDG_LOG(kWarning) << "snapshot entry dropped (failed verification): "
                        << valid.message();
      continue;
    }
    const std::uint64_t raw_key = fnv1a64(entry.request_payload);
    const std::uint64_t canonical_key =
        fnv1a64(verify::canonical_network_bytes(req.network),
                fnv1a64(options_fingerprint(req.options)));
    const std::uint64_t signature =
        (req.options.planner == "greedy" && !req.options.refine &&
         req.options.relay_hops == 1)
            ? warm_signature_of(req.options.max_load, instance.sink(),
                                solution->polling_points)
            : PlanCache::kNoKey;
    CachedPlan cached =
        make_cached_plan(instance, *solution, entry.reply_payload);
    cached.request_payload = entry.request_payload;
    cache_.insert(raw_key, canonical_key, signature, std::move(cached));
    ++restored;
  }
  snapshot_restored_.fetch_add(restored, std::memory_order_relaxed);
  snapshot_dropped_.fetch_add(dropped, std::memory_order_relaxed);
  MDG_OBS_GAUGE(obs::metric::kServeSnapshotRestored,
                static_cast<double>(restored));
  MDG_OBS_GAUGE(obs::metric::kServeSnapshotDropped,
                static_cast<double>(dropped));
  MDG_OBS_GAUGE(obs::metric::kServeCacheEntries,
                static_cast<double>(cache_.size()));
  return restored;
}

EngineStats Engine::stats() const {
  EngineStats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.hits_exact = hits_exact_.load(std::memory_order_relaxed);
  stats.hits_warm = hits_warm_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.errors = errors_.load(std::memory_order_relaxed);
  stats.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.cache_entries = cache_.size();
  stats.delta_requests = delta_requests_.load(std::memory_order_relaxed);
  stats.delta_repaired = delta_repaired_.load(std::memory_order_relaxed);
  stats.delta_base_plans = delta_base_plans_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.brownout_served = brownout_served_.load(std::memory_order_relaxed);
  stats.conn_timeout = conn_timeout_.load(std::memory_order_relaxed);
  stats.snapshot_restored =
      snapshot_restored_.load(std::memory_order_relaxed);
  stats.snapshot_dropped = snapshot_dropped_.load(std::memory_order_relaxed);
  return stats;
}

obs::RunReport Engine::run_report() const {
  const EngineStats stats = this->stats();
  obs::RunReport report;
  report.command = "serve";
  report.planner = "-";
  report.git_describe = obs::current_git_describe();
  report.params = {
      {"cache-capacity", std::to_string(options_.cache_capacity)}};
  report.capture_metrics(obs::MetricsRegistry::instance());
  // Lifetime counters as gauges — authoritative even when the
  // MetricsRegistry is disabled (they override captured same-name
  // entries).
  const std::pair<const char*, double> lifetime[] = {
      {"serve.brownout_served", static_cast<double>(stats.brownout_served)},
      {"serve.cache_entries", static_cast<double>(stats.cache_entries)},
      {"serve.conn_timeout", static_cast<double>(stats.conn_timeout)},
      {"serve.deadline_expired", static_cast<double>(stats.deadline_expired)},
      {"serve.delta_base_plans", static_cast<double>(stats.delta_base_plans)},
      {"serve.delta_repaired", static_cast<double>(stats.delta_repaired)},
      {"serve.delta_requests", static_cast<double>(stats.delta_requests)},
      {"serve.errors", static_cast<double>(stats.errors)},
      {"serve.hits_exact", static_cast<double>(stats.hits_exact)},
      {"serve.hits_warm", static_cast<double>(stats.hits_warm)},
      {"serve.misses", static_cast<double>(stats.misses)},
      {"serve.rejected", static_cast<double>(stats.rejected)},
      {"serve.requests", static_cast<double>(stats.requests)},
      {"serve.shed", static_cast<double>(stats.shed)},
      {"serve.snapshot_dropped",
       static_cast<double>(stats.snapshot_dropped)},
      {"serve.snapshot_restored",
       static_cast<double>(stats.snapshot_restored)},
  };
  for (const auto& [name, value] : lifetime) {
    bool replaced = false;
    for (obs::RunReport::Gauge& gauge : report.gauges) {
      if (gauge.name == name) {
        gauge.value = value;
        replaced = true;
        break;
      }
    }
    if (!replaced) {
      report.gauges.push_back({name, value});
    }
  }
  std::sort(report.gauges.begin(), report.gauges.end(),
            [](const obs::RunReport::Gauge& a, const obs::RunReport::Gauge& b) {
              return a.name < b.name;
            });
  return report;
}

}  // namespace mdg::serve

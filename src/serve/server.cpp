#include "serve/server.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <iostream>
#include <istream>
#include <list>
#include <memory>
#include <mutex>
#include <ostream>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/names.h"
#include "serve/snapshot.h"
#include "util/log.h"
#include "util/thread_pool.h"

#if defined(__unix__) || defined(__APPLE__)
#define MDG_SERVE_HAVE_SOCKETS 1
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "serve/fd_stream.h"
#else
#define MDG_SERVE_HAVE_SOCKETS 0
#endif

namespace mdg::serve {
namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The process-global drain flag. A signal handler owns the store side,
/// so this must stay a lone lock-free atomic.
std::atomic<bool> g_drain{false};

}  // namespace

void request_drain() { g_drain.store(true, std::memory_order_release); }

bool drain_requested() { return g_drain.load(std::memory_order_acquire); }

void reset_drain_for_tests() { g_drain.store(false, std::memory_order_release); }

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      engine_(options_.engine),
      start_ms_(now_ms()) {}

void Server::maybe_report(bool force) {
  if (options_.report_path.empty()) {
    return;
  }
  std::lock_guard<std::mutex> lock(report_mutex_);
  ++handled_since_report_;
  if (!force && (options_.report_every == 0 ||
                 handled_since_report_ < options_.report_every)) {
    return;
  }
  handled_since_report_ = 0;
  obs::RunReport report = engine_.run_report();
  report.wall_ms = now_ms() - start_ms_;
  report.save(options_.report_path);
}

core::StatusOr<std::size_t> Server::load_snapshot() {
  if (options_.snapshot_path.empty()) {
    return std::size_t{0};
  }
  auto entries = serve::load_snapshot(options_.snapshot_path);
  if (!entries.is_ok()) {
    return entries.status();
  }
  return engine_.restore_cache(entries.value());
}

core::StatusOr<std::size_t> Server::save_snapshot() {
  if (options_.snapshot_path.empty()) {
    return std::size_t{0};
  }
  auto saved =
      serve::save_snapshot(options_.snapshot_path, engine_.snapshot_entries());
  if (saved.is_ok()) {
    MDG_OBS_GAUGE(obs::metric::kServeSnapshotSaved,
                  static_cast<double>(saved.value()));
  }
  return saved;
}

void Server::save_snapshot_logged() {
  if (auto saved = save_snapshot(); !saved.is_ok()) {
    MDG_LOG(kWarning) << "cache snapshot not written: "
                      << saved.status().to_string();
  }
}

int Server::serve_stdio(std::istream& in, std::ostream& out) {
  const ReadFrameOptions read_options{options_.max_payload_bytes};
  while (true) {
    if (drain_requested()) {
      break;  // graceful: stop between requests, keep the exit clean
    }
    auto frame = read_frame(in, read_options);
    if (!frame.is_ok()) {
      // The byte stream is unsynchronized past this point; report the
      // problem in-protocol and on stderr, then stop. No snapshot —
      // only graceful exits persist the cache.
      write_frame(out, Frame{FrameType::kReplyError, 0, 0,
                             build_error_payload(frame.status())});
      out.flush();
      std::cerr << "mdg_serve: protocol error on stdio stream: "
                << frame.status().to_string() << "\n";
      maybe_report(true);
      return 3;
    }
    if (!frame.value().has_value()) {
      break;  // clean EOF
    }
    const Frame reply = engine_.handle(**frame);
    write_frame(out, reply);
    out.flush();
    maybe_report(false);
    if (engine_.shutdown_requested()) {
      break;
    }
  }
  save_snapshot_logged();
  maybe_report(true);
  return 0;
}

#if MDG_SERVE_HAVE_SOCKETS

namespace {

/// One accepted connection; jobs in flight keep it alive via
/// shared_ptr.
struct Connection {
  explicit Connection(int fd) : fd(fd), out_buf(fd), out(&out_buf) {}
  ~Connection() { ::close(fd); }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Sends one frame. Returns false when the peer is gone or stalled
  /// past the write deadline; the socket is shut down so the reader
  /// side unblocks too (a worker must never wedge on a dead client).
  bool send(const Frame& frame) {
    std::lock_guard<std::mutex> lock(write_mutex);
    if (send_failed) {
      return false;
    }
    write_frame(out, frame);
    out.flush();
    if (!out.good()) {
      send_failed = true;
      ::shutdown(fd, SHUT_RDWR);
      return false;
    }
    return true;
  }

  int fd;
  FdStreambuf out_buf;
  std::ostream out;
  std::mutex write_mutex;
  bool send_failed = false;  ///< guarded by write_mutex
};

struct Job {
  Frame frame;
  std::shared_ptr<Connection> connection;
  bool degraded = false;  ///< admission said brownout effort
};

/// One per-connection reader thread plus the flag it raises when its
/// loop ends, so the accept loop can join finished readers instead of
/// letting them pile up for the lifetime of the daemon.
struct Reader {
  std::thread thread;
  std::atomic<bool> done{false};
};

timeval to_timeval(std::uint32_t ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  return tv;
}

}  // namespace

core::StatusOr<int> Server::serve_tcp(std::uint16_t port) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    return core::Status::internal("socket() failed");
  }
  const int reuse = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd, 16) != 0) {
    ::close(listen_fd);
    return core::Status::internal("cannot listen on 127.0.0.1:" +
                                  std::to_string(port));
  }

  std::mutex queue_mutex;
  std::condition_variable queue_cv;
  std::deque<Job> queue;
  bool stopping = false;
  // Admission state shares the queue lock: every (frame, depth)
  // observation and decision happens under it, so the decision trace
  // is a deterministic function of arrival order regardless of
  // MDG_THREADS or worker count.
  AdmissionOptions admission_options = options_.admission;
  admission_options.backlog = options_.backlog;
  AdmissionController admission(admission_options);
  // Exactly one thread may shutdown() the listen socket, and only
  // while the fd is still open — a second shutdown() after close()
  // could hit a recycled fd number belonging to unrelated I/O.
  std::atomic<bool> listen_shutdown{false};

  const std::size_t workers =
      options_.workers > 0 ? options_.workers : planning_threads();
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      while (true) {
        Job job;
        {
          std::unique_lock<std::mutex> lock(queue_mutex);
          queue_cv.wait(lock, [&] { return stopping || !queue.empty(); });
          if (queue.empty()) {
            return;  // stopping and drained
          }
          job = std::move(queue.front());
          queue.pop_front();
          // Re-evaluate brownout as the queue recedes so recovery does
          // not wait for the next arrival.
          admission.observe_depth(queue.size());
          MDG_OBS_GAUGE(obs::metric::kServeQueueDepth,
                        static_cast<double>(queue.size()));
          MDG_OBS_GAUGE(obs::metric::kServeBrownout,
                        admission.brownout() ? 1.0 : 0.0);
        }
        HandleContext ctx;
        ctx.brownout = job.degraded;
        job.connection->send(engine_.handle(job.frame, ctx));
        maybe_report(false);
        if (engine_.shutdown_requested() &&
            !listen_shutdown.exchange(true)) {
          // Unblock accept() so the main loop can wind down. listen_fd
          // stays open until after the pool joins, so this can never
          // target a recycled descriptor.
          ::shutdown(listen_fd, SHUT_RDWR);
        }
      }
    });
  }

  std::list<std::unique_ptr<Reader>> readers;
  std::mutex connections_mutex;
  std::vector<std::weak_ptr<Connection>> connections;
  // Joins every reader whose loop has ended (all of them when `all`),
  // so a long-running daemon reclaims reader stacks as connections
  // close instead of accreting one zombie thread per connection ever
  // served.
  const auto reap_readers = [&readers](bool all) {
    for (auto it = readers.begin(); it != readers.end();) {
      if (all || (*it)->done.load(std::memory_order_acquire)) {
        (*it)->thread.join();
        it = readers.erase(it);
      } else {
        ++it;
      }
    }
  };
  const ReadFrameOptions read_options{options_.max_payload_bytes};
  while (!engine_.shutdown_requested() && !drain_requested()) {
    const int conn_fd = ::accept(listen_fd, nullptr, nullptr);
    if (conn_fd < 0) {
      if (engine_.shutdown_requested() || drain_requested()) {
        break;  // a signal (SIGTERM drain) interrupts accept with EINTR
      }
      if (errno == EINTR) {
        continue;
      }
      // Persistent failures (EMFILE, ENFILE, ...) would otherwise
      // busy-spin this loop at 100% CPU; back off and retry.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    // Slow-client defense: a peer that stalls a read or write past the
    // deadline surfaces as a timed-out stream error instead of pinning
    // this connection's reader (or a worker writing the reply) forever.
    if (options_.read_timeout_ms > 0) {
      const timeval tv = to_timeval(options_.read_timeout_ms);
      ::setsockopt(conn_fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    }
    if (options_.write_timeout_ms > 0) {
      const timeval tv = to_timeval(options_.write_timeout_ms);
      ::setsockopt(conn_fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    reap_readers(false);
    {
      std::lock_guard<std::mutex> lock(connections_mutex);
      std::erase_if(connections, [](const std::weak_ptr<Connection>& weak) {
        return weak.expired();
      });
    }
    auto connection = std::make_shared<Connection>(conn_fd);
    {
      std::lock_guard<std::mutex> lock(connections_mutex);
      connections.push_back(connection);
    }
    auto reader = std::make_unique<Reader>();
    Reader* const self = reader.get();
    reader->thread = std::thread([&, connection, self] {
      FdStreambuf in_buf(connection->fd);
      std::istream in(&in_buf);
      std::uint64_t payload_bytes = 0;
      while (true) {
        auto frame = read_frame(in, read_options);
        if (!frame.is_ok()) {
          if (in_buf.timed_out()) {
            // Slowloris: a partial frame then silence. Count it and
            // drop the connection; the error reply is best-effort.
            engine_.note_conn_timeout();
            MDG_OBS_COUNT(obs::metric::kServeConnTimeout, 1);
          }
          connection->send(Frame{FrameType::kReplyError, 0, 0,
                                 build_error_payload(frame.status())});
          break;  // unsynchronized stream; drop the connection
        }
        if (!frame.value().has_value()) {
          if (in_buf.timed_out()) {
            // Idle past the read deadline between frames.
            engine_.note_conn_timeout();
            MDG_OBS_COUNT(obs::metric::kServeConnTimeout, 1);
          }
          break;  // peer closed (or timed out)
        }
        payload_bytes += (**frame).payload.size();
        if (options_.max_conn_bytes > 0 &&
            payload_bytes > options_.max_conn_bytes) {
          connection->send(
              Frame{FrameType::kReplyError, (**frame).id, 0,
                    build_error_payload(core::Status::failed_precondition(
                        "connection payload budget exhausted"))});
          break;
        }
        AdmitDecision decision;
        std::size_t depth;
        bool draining;
        {
          std::lock_guard<std::mutex> lock(queue_mutex);
          if (drain_requested() && !admission.draining()) {
            admission.begin_drain();
          }
          depth = queue.size();
          decision = admission.admit((**frame).type, depth);
          draining = admission.draining();
          if (decision != AdmitDecision::kShed) {
            queue.push_back(Job{std::move(**frame), connection,
                                decision == AdmitDecision::kDegraded});
            MDG_OBS_GAUGE(obs::metric::kServeQueueDepth,
                          static_cast<double>(queue.size()));
          }
          MDG_OBS_GAUGE(obs::metric::kServeBrownout,
                        admission.brownout() ? 1.0 : 0.0);
        }
        if (decision == AdmitDecision::kShed) {
          // Typed refusal, connection intact: the client backs off and
          // retries (serve/client.h honors the hint).
          engine_.note_shed();
          engine_.note_rejected();
          MDG_OBS_COUNT(obs::metric::kServeShed, 1);
          MDG_OBS_COUNT(obs::metric::kServeRejected, 1);
          OverloadInfo info;
          info.retry_after_ms = admission.retry_after_ms(depth);
          info.queue_depth = depth;
          info.draining = draining;
          connection->send(Frame{FrameType::kReplyOverloaded, (**frame).id, 0,
                                 build_overloaded_payload(info)});
        } else {
          queue_cv.notify_one();
        }
        if (engine_.shutdown_requested()) {
          break;  // the shutdown frame is already queued
        }
      }
      self->done.store(true, std::memory_order_release);
    });
    readers.push_back(std::move(reader));
  }
  // Unblock readers parked on idle connections so they can observe
  // the shutdown (their next read returns EOF). Received-but-unread
  // bytes are still readable after SHUT_RD, so frames already in
  // flight get their typed draining refusal rather than silence.
  {
    std::lock_guard<std::mutex> lock(queue_mutex);
    admission.begin_drain();
  }
  {
    std::lock_guard<std::mutex> lock(connections_mutex);
    for (const std::weak_ptr<Connection>& weak : connections) {
      if (const auto connection = weak.lock()) {
        ::shutdown(connection->fd, SHUT_RD);
      }
    }
  }
  reap_readers(true);
  {
    std::lock_guard<std::mutex> lock(queue_mutex);
    stopping = true;
  }
  queue_cv.notify_all();
  for (std::thread& worker : pool) {
    worker.join();
  }
  // Only now is it safe to retire the fd number: no worker can still
  // reach the shutdown() above.
  ::close(listen_fd);
  // Every queued job has completed and its reply is on the wire: this
  // is the graceful-drain point the snapshot contract promises.
  save_snapshot_logged();
  maybe_report(true);
  return 0;
}

#else  // !MDG_SERVE_HAVE_SOCKETS

core::StatusOr<int> Server::serve_tcp(std::uint16_t) {
  return core::Status::internal(
      "TCP mode requires POSIX sockets; use --stdio on this platform");
}

#endif

}  // namespace mdg::serve

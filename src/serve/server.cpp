#include "serve/server.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <istream>
#include <list>
#include <memory>
#include <mutex>
#include <ostream>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/names.h"
#include "util/thread_pool.h"

#if defined(__unix__) || defined(__APPLE__)
#define MDG_SERVE_HAVE_SOCKETS 1
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define MDG_SERVE_HAVE_SOCKETS 0
#endif

namespace mdg::serve {
namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      engine_(options_.engine),
      start_ms_(now_ms()) {}

void Server::maybe_report(bool force) {
  if (options_.report_path.empty()) {
    return;
  }
  std::lock_guard<std::mutex> lock(report_mutex_);
  ++handled_since_report_;
  if (!force && (options_.report_every == 0 ||
                 handled_since_report_ < options_.report_every)) {
    return;
  }
  handled_since_report_ = 0;
  obs::RunReport report = engine_.run_report();
  report.wall_ms = now_ms() - start_ms_;
  report.save(options_.report_path);
}

int Server::serve_stdio(std::istream& in, std::ostream& out) {
  const ReadFrameOptions read_options{options_.max_payload_bytes};
  while (true) {
    auto frame = read_frame(in, read_options);
    if (!frame.is_ok()) {
      // The byte stream is unsynchronized past this point; report the
      // problem in-protocol, then stop.
      write_frame(out, Frame{FrameType::kReplyError, 0, 0,
                             build_error_payload(frame.status())});
      out.flush();
      maybe_report(true);
      return 3;
    }
    if (!frame.value().has_value()) {
      break;  // clean EOF
    }
    const Frame reply = engine_.handle(**frame);
    write_frame(out, reply);
    out.flush();
    maybe_report(false);
    if (engine_.shutdown_requested()) {
      break;
    }
  }
  maybe_report(true);
  return 0;
}

#if MDG_SERVE_HAVE_SOCKETS

namespace {

/// Minimal streambuf over a file descriptor (one for reading, one for
/// writing per connection).
class FdStreambuf final : public std::streambuf {
 public:
  explicit FdStreambuf(int fd) : fd_(fd) { setg(buf_, buf_, buf_); }

 protected:
  int_type underflow() override {
    if (gptr() < egptr()) {
      return traits_type::to_int_type(*gptr());
    }
    const ssize_t n = ::read(fd_, buf_, sizeof(buf_));
    if (n <= 0) {
      return traits_type::eof();
    }
    setg(buf_, buf_, buf_ + n);
    return traits_type::to_int_type(*gptr());
  }

  std::streamsize xsputn(const char* s, std::streamsize n) override {
    std::streamsize written = 0;
    while (written < n) {
      const ssize_t w = ::write(fd_, s + written,
                                static_cast<std::size_t>(n - written));
      if (w <= 0) {
        return written;
      }
      written += w;
    }
    return written;
  }

  int_type overflow(int_type ch) override {
    if (traits_type::eq_int_type(ch, traits_type::eof())) {
      return 0;
    }
    const char c = traits_type::to_char_type(ch);
    return xsputn(&c, 1) == 1 ? ch : traits_type::eof();
  }

 private:
  int fd_;
  char buf_[1 << 12];
};

/// One accepted connection; jobs in flight keep it alive via
/// shared_ptr.
struct Connection {
  explicit Connection(int fd) : fd(fd), out_buf(fd), out(&out_buf) {}
  ~Connection() { ::close(fd); }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  void send(const Frame& frame) {
    std::lock_guard<std::mutex> lock(write_mutex);
    write_frame(out, frame);
    out.flush();
  }

  int fd;
  FdStreambuf out_buf;
  std::ostream out;
  std::mutex write_mutex;
};

struct Job {
  Frame frame;
  std::shared_ptr<Connection> connection;
};

/// One per-connection reader thread plus the flag it raises when its
/// loop ends, so the accept loop can join finished readers instead of
/// letting them pile up for the lifetime of the daemon.
struct Reader {
  std::thread thread;
  std::atomic<bool> done{false};
};

}  // namespace

core::StatusOr<int> Server::serve_tcp(std::uint16_t port) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    return core::Status::internal("socket() failed");
  }
  const int reuse = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd, 16) != 0) {
    ::close(listen_fd);
    return core::Status::internal("cannot listen on 127.0.0.1:" +
                                  std::to_string(port));
  }

  std::mutex queue_mutex;
  std::condition_variable queue_cv;
  std::deque<Job> queue;
  bool stopping = false;
  // Exactly one thread may shutdown() the listen socket, and only
  // while the fd is still open — a second shutdown() after close()
  // could hit a recycled fd number belonging to unrelated I/O.
  std::atomic<bool> listen_shutdown{false};

  const std::size_t workers =
      options_.workers > 0 ? options_.workers : planning_threads();
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      while (true) {
        Job job;
        {
          std::unique_lock<std::mutex> lock(queue_mutex);
          queue_cv.wait(lock, [&] { return stopping || !queue.empty(); });
          if (queue.empty()) {
            return;  // stopping and drained
          }
          job = std::move(queue.front());
          queue.pop_front();
          MDG_OBS_GAUGE(obs::metric::kServeQueueDepth,
                        static_cast<double>(queue.size()));
        }
        job.connection->send(engine_.handle(job.frame));
        maybe_report(false);
        if (engine_.shutdown_requested() &&
            !listen_shutdown.exchange(true)) {
          // Unblock accept() so the main loop can wind down. listen_fd
          // stays open until after the pool joins, so this can never
          // target a recycled descriptor.
          ::shutdown(listen_fd, SHUT_RDWR);
        }
      }
    });
  }

  std::list<std::unique_ptr<Reader>> readers;
  std::mutex connections_mutex;
  std::vector<std::weak_ptr<Connection>> connections;
  // Joins every reader whose loop has ended (all of them when `all`),
  // so a long-running daemon reclaims reader stacks as connections
  // close instead of accreting one zombie thread per connection ever
  // served.
  const auto reap_readers = [&readers](bool all) {
    for (auto it = readers.begin(); it != readers.end();) {
      if (all || (*it)->done.load(std::memory_order_acquire)) {
        (*it)->thread.join();
        it = readers.erase(it);
      } else {
        ++it;
      }
    }
  };
  const ReadFrameOptions read_options{options_.max_payload_bytes};
  while (!engine_.shutdown_requested()) {
    const int conn_fd = ::accept(listen_fd, nullptr, nullptr);
    if (conn_fd < 0) {
      if (engine_.shutdown_requested()) {
        break;
      }
      if (errno == EINTR) {
        continue;
      }
      // Persistent failures (EMFILE, ENFILE, ...) would otherwise
      // busy-spin this loop at 100% CPU; back off and retry.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    reap_readers(false);
    {
      std::lock_guard<std::mutex> lock(connections_mutex);
      std::erase_if(connections, [](const std::weak_ptr<Connection>& weak) {
        return weak.expired();
      });
    }
    auto connection = std::make_shared<Connection>(conn_fd);
    {
      std::lock_guard<std::mutex> lock(connections_mutex);
      connections.push_back(connection);
    }
    auto reader = std::make_unique<Reader>();
    Reader* const self = reader.get();
    reader->thread = std::thread([&, connection, self] {
      FdStreambuf in_buf(connection->fd);
      std::istream in(&in_buf);
      while (true) {
        auto frame = read_frame(in, read_options);
        if (!frame.is_ok()) {
          connection->send(Frame{FrameType::kReplyError, 0, 0,
                                 build_error_payload(frame.status())});
          break;  // unsynchronized stream; drop the connection
        }
        if (!frame.value().has_value()) {
          break;  // peer closed
        }
        bool rejected = false;
        {
          std::lock_guard<std::mutex> lock(queue_mutex);
          if (queue.size() >= options_.backlog) {
            rejected = true;
          } else {
            queue.push_back(Job{std::move(**frame), connection});
            MDG_OBS_GAUGE(obs::metric::kServeQueueDepth,
                          static_cast<double>(queue.size()));
          }
        }
        if (rejected) {
          engine_.note_rejected();
          MDG_OBS_COUNT(obs::metric::kServeRejected, 1);
          connection->send(
              Frame{FrameType::kReplyError, (**frame).id, 0,
                    build_error_payload(core::Status::failed_precondition(
                        "server overloaded: admission queue full"))});
        } else {
          queue_cv.notify_one();
        }
        if (engine_.shutdown_requested()) {
          break;  // the shutdown frame is already queued
        }
      }
      self->done.store(true, std::memory_order_release);
    });
    readers.push_back(std::move(reader));
  }
  // Unblock readers parked on idle connections so they can observe
  // the shutdown (their next read returns EOF).
  {
    std::lock_guard<std::mutex> lock(connections_mutex);
    for (const std::weak_ptr<Connection>& weak : connections) {
      if (const auto connection = weak.lock()) {
        ::shutdown(connection->fd, SHUT_RD);
      }
    }
  }
  reap_readers(true);
  {
    std::lock_guard<std::mutex> lock(queue_mutex);
    stopping = true;
  }
  queue_cv.notify_all();
  for (std::thread& worker : pool) {
    worker.join();
  }
  // Only now is it safe to retire the fd number: no worker can still
  // reach the shutdown() above.
  ::close(listen_fd);
  maybe_report(true);
  return 0;
}

#else  // !MDG_SERVE_HAVE_SOCKETS

core::StatusOr<int> Server::serve_tcp(std::uint16_t) {
  return core::Status::internal(
      "TCP mode requires POSIX sockets; use --stdio on this platform");
}

#endif

}  // namespace mdg::serve

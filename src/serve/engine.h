// The request engine: one Frame in, one Frame out, cache in between.
//
// Engine is the synchronous, thread-safe core of mdg_serve — it owns
// the plan cache and the request counters but no threads, sockets, or
// queues (serve::Server adds those). That split keeps the interesting
// logic callable directly from tests and the bench load generator:
// `engine.handle(frame)` is exactly what a connection handler does.
//
// docs/SERVE.md is the operator view; DESIGN.md walks one request
// through this class ("request lifetime").
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "obs/report.h"
#include "serve/plan_cache.h"
#include "serve/protocol.h"

namespace mdg::serve {

struct EngineOptions {
  /// Plan-cache capacity in entries (0 disables caching).
  std::size_t cache_capacity = 256;
};

/// Snapshot of the engine's lifetime counters.
struct EngineStats {
  std::uint64_t requests = 0;
  std::uint64_t hits_exact = 0;
  std::uint64_t hits_warm = 0;
  std::uint64_t misses = 0;
  std::uint64_t errors = 0;
  std::uint64_t deadline_expired = 0;
  std::uint64_t rejected = 0;  ///< admission rejections (counted by Server)
  std::uint64_t cache_entries = 0;
  std::uint64_t delta_requests = 0;    ///< kDeltaRequest frames seen
  std::uint64_t delta_repaired = 0;    ///< answered by incremental repair
  std::uint64_t delta_base_plans = 0;  ///< base plans cold-planned for deltas
};

class Engine {
 public:
  explicit Engine(EngineOptions options = {});

  /// Handles one request frame and returns the reply frame. Never
  /// throws on malformed payloads — every input problem becomes a
  /// kReplyError frame carrying the Status taxonomy. Safe to call
  /// concurrently from any number of threads.
  [[nodiscard]] Frame handle(const Frame& request);

  /// Batch entry point in the core::plan_many idiom: handles the batch
  /// on the shared thread pool, replies in request order.
  [[nodiscard]] std::vector<Frame> handle_many(
      std::span<const Frame> requests);

  /// Counted by Server when the admission queue turns a request away;
  /// folded into stats replies and the run report.
  void note_rejected() { rejected_.fetch_add(1, std::memory_order_relaxed); }

  [[nodiscard]] EngineStats stats() const;
  [[nodiscard]] bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// The periodic server report (command "serve"): lifetime counters as
  /// gauges plus whatever the MetricsRegistry collected when enabled.
  [[nodiscard]] obs::RunReport run_report() const;

 private:
  Frame handle_plan(const Frame& request);
  Frame handle_delta(const Frame& request);
  Frame handle_simulate(const Frame& request);
  Frame handle_stats(const Frame& request);

  EngineOptions options_;
  PlanCache cache_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> hits_exact_{0};
  std::atomic<std::uint64_t> hits_warm_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> deadline_expired_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> delta_requests_{0};
  std::atomic<std::uint64_t> delta_repaired_{0};
  std::atomic<std::uint64_t> delta_base_plans_{0};
  std::atomic<bool> shutdown_{false};
};

}  // namespace mdg::serve

// The request engine: one Frame in, one Frame out, cache in between.
//
// Engine is the synchronous, thread-safe core of mdg_serve — it owns
// the plan cache and the request counters but no threads, sockets, or
// queues (serve::Server adds those). That split keeps the interesting
// logic callable directly from tests and the bench load generator:
// `engine.handle(frame)` is exactly what a connection handler does.
//
// docs/SERVE.md is the operator view; DESIGN.md walks one request
// through this class ("request lifetime").
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "obs/report.h"
#include "serve/plan_cache.h"
#include "serve/protocol.h"
#include "serve/snapshot.h"

namespace mdg::serve {

struct EngineOptions {
  /// Plan-cache capacity in entries (0 disables caching).
  std::size_t cache_capacity = 256;
};

/// Snapshot of the engine's lifetime counters.
struct EngineStats {
  std::uint64_t requests = 0;
  std::uint64_t hits_exact = 0;
  std::uint64_t hits_warm = 0;
  std::uint64_t misses = 0;
  std::uint64_t errors = 0;
  std::uint64_t deadline_expired = 0;
  std::uint64_t rejected = 0;  ///< admission rejections (counted by Server)
  std::uint64_t cache_entries = 0;
  std::uint64_t delta_requests = 0;    ///< kDeltaRequest frames seen
  std::uint64_t delta_repaired = 0;    ///< answered by incremental repair
  std::uint64_t delta_base_plans = 0;  ///< base plans cold-planned for deltas
  std::uint64_t shed = 0;             ///< typed reply-overloaded refusals
  std::uint64_t brownout_served = 0;  ///< plans served at brownout effort
  std::uint64_t conn_timeout = 0;     ///< connections dropped for stalling
  std::uint64_t snapshot_restored = 0;  ///< cache entries revived at boot
  std::uint64_t snapshot_dropped = 0;   ///< snapshot entries that failed gates
};

/// Per-request execution context the transport layer threads through
/// handle(). Default-constructed == the historical behaviour, so every
/// existing call site (tests, bench, stdio path) is unchanged.
struct HandleContext {
  /// Admission decided kDegraded: plan at brownout (construction-only)
  /// effort and flag the reply kFlagBrownout. Never cached.
  bool brownout = false;
};

class Engine {
 public:
  explicit Engine(EngineOptions options = {});

  /// Handles one request frame and returns the reply frame. Never
  /// throws on malformed payloads — every input problem becomes a
  /// kReplyError frame carrying the Status taxonomy. Safe to call
  /// concurrently from any number of threads.
  [[nodiscard]] Frame handle(const Frame& request);

  /// handle() with transport context — currently whether admission
  /// degraded this request to brownout effort.
  [[nodiscard]] Frame handle(const Frame& request, const HandleContext& ctx);

  /// Batch entry point in the core::plan_many idiom: handles the batch
  /// on the shared thread pool, replies in request order.
  [[nodiscard]] std::vector<Frame> handle_many(
      std::span<const Frame> requests);

  /// Counted by Server when the admission queue turns a request away;
  /// folded into stats replies and the run report.
  void note_rejected() { rejected_.fetch_add(1, std::memory_order_relaxed); }

  /// Counted by Server when admission sheds a work frame with a typed
  /// reply-overloaded refusal.
  void note_shed() { shed_.fetch_add(1, std::memory_order_relaxed); }

  /// Counted by Server when a connection is dropped for stalling past
  /// its read/write deadline (slow-client defense).
  void note_conn_timeout() {
    conn_timeout_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Snapshot-eligible cache contents, oldest-first: the (request,
  /// reply) pairs the crash-recovery snapshot persists. Entries without
  /// a recorded request payload (warm donations never have one under
  /// the current insert rules, but the filter is defensive) are
  /// skipped.
  [[nodiscard]] std::vector<SnapshotEntry> snapshot_entries() const;

  /// Replays snapshot entries through the cold-insert path: parse the
  /// request, recompute every cache key, re-gate the carried solution
  /// with verify::check_solution. Entries that fail any gate are
  /// dropped (counted, logged), never trusted. Returns the number
  /// restored.
  std::size_t restore_cache(const std::vector<SnapshotEntry>& entries);

  [[nodiscard]] EngineStats stats() const;
  [[nodiscard]] bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// The periodic server report (command "serve"): lifetime counters as
  /// gauges plus whatever the MetricsRegistry collected when enabled.
  [[nodiscard]] obs::RunReport run_report() const;

 private:
  Frame handle_plan(const Frame& request, const HandleContext& ctx);
  Frame handle_delta(const Frame& request);
  Frame handle_simulate(const Frame& request);
  Frame handle_stats(const Frame& request);

  EngineOptions options_;
  PlanCache cache_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> hits_exact_{0};
  std::atomic<std::uint64_t> hits_warm_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> deadline_expired_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> delta_requests_{0};
  std::atomic<std::uint64_t> delta_repaired_{0};
  std::atomic<std::uint64_t> delta_base_plans_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> brownout_served_{0};
  std::atomic<std::uint64_t> conn_timeout_{0};
  std::atomic<std::uint64_t> snapshot_restored_{0};
  std::atomic<std::uint64_t> snapshot_dropped_{0};
  std::atomic<bool> shutdown_{false};
};

}  // namespace mdg::serve

// Crash-recoverable plan-cache snapshots.
//
// A snapshot is the durable half of the serving cache: on graceful
// drain the server writes every snapshot-eligible cache entry — the
// (canonical request payload, reply payload) pairs — to one versioned,
// checksummed file; on startup it loads the file and replays each pair
// through the engine's cold-insert path, re-deriving every cache key
// and re-gating every solution with verify::check_solution. Persisting
// requests and replies (rather than the in-memory index) keeps the
// byte-identity contract honest across restarts: a restored entry can
// only ever serve bytes the current build would accept as a valid
// answer to that exact request.
//
// The file is defensive by construction (docs/SERVE.md §Operations):
//
//   mdg-cache-snapshot 1
//   build <git-describe of the writer>
//   entries <N>
//   entry <request-bytes> <reply-bytes>   } N times, each followed by
//   <request>\n<reply>\n                  } the raw payload bytes
//   checksum <16-hex-digit fnv1a64>
//
// The checksum covers every byte before its own line, so a torn write
// (kill -9 mid-flush, full disk) or bit rot fails closed; the version
// and build lines make a snapshot from another build read as stale.
// Loading NEVER crashes the server: every failure maps to an error
// Status the caller logs before cold-starting. Writes go through a
// temp file + rename so a crash mid-save leaves the previous snapshot
// intact.
#pragma once

#include <string>
#include <vector>

#include "core/status.h"

namespace mdg::serve {

/// One persisted cache entry: the canonical plan-request payload and
/// the reply payload it maps to.
struct SnapshotEntry {
  std::string request_payload;
  std::string reply_payload;
};

/// Serializes `entries` (already oldest-first) to the snapshot format.
[[nodiscard]] std::string build_snapshot(
    const std::vector<SnapshotEntry>& entries);

/// Writes build_snapshot(entries) to `path` atomically (temp file in
/// the same directory, then rename). Returns the number of entries
/// written, or an error Status on any I/O failure.
[[nodiscard]] core::StatusOr<std::size_t> save_snapshot(
    const std::string& path, const std::vector<SnapshotEntry>& entries);

/// Parses snapshot bytes. kInvalidArgument: wrong magic/version, or a
/// `build` line from a different build (stale — replies might not be
/// byte-identical under the current code). kDataLoss: truncated file,
/// lengths pointing past EOF, or checksum mismatch.
[[nodiscard]] core::StatusOr<std::vector<SnapshotEntry>> parse_snapshot(
    const std::string& bytes);

/// Loads and parses `path`. A missing file is kNotFound (a normal
/// first boot, not corruption); everything else as parse_snapshot.
[[nodiscard]] core::StatusOr<std::vector<SnapshotEntry>> load_snapshot(
    const std::string& path);

}  // namespace mdg::serve

// The client half of the survivable-serving story: a loopback TCP
// client with connect/read/write deadlines, plus a retry policy that
// turns typed reply-overloaded refusals into jittered exponential
// backoff honoring the server's retry-after hint.
//
// Everything time-shaped is injectable: the backoff schedule is
// computed from an explicit Rng and executed through a caller-supplied
// sleep function, so tests assert the exact wait sequence without
// sleeping, and the bench and chaos harness share one battle-tested
// retry loop instead of three ad-hoc ones (bench_s1_serve --port,
// mdg_serve client, tests/serve).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/status.h"
#include "serve/protocol.h"
#include "util/rng.h"

namespace mdg::serve {

struct TcpClientOptions {
  /// Deadline for the TCP connect itself (nonblocking connect + poll).
  std::uint32_t connect_timeout_ms = 2000;
  /// SO_RCVTIMEO: a reply (or reply fragment) must arrive within this.
  std::uint32_t read_timeout_ms = 10000;
  /// SO_SNDTIMEO: the kernel must accept our bytes within this.
  std::uint32_t write_timeout_ms = 10000;
  /// Cap handed to read_frame for reply payloads.
  std::uint32_t max_payload_bytes = kDefaultMaxPayloadBytes;
};

/// One loopback connection to an mdg_serve daemon. Not thread-safe;
/// one client per thread.
class TcpClient {
 public:
  explicit TcpClient(std::uint16_t port, TcpClientOptions options = {});
  ~TcpClient();
  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  /// Connects (or reconnects). Idempotent when already connected.
  [[nodiscard]] core::Status connect();
  void disconnect();
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// Sends `request` and reads exactly one reply frame. Any transport
  /// problem (connect failure, send stall, read timeout, mid-reply
  /// disconnect, framing error) comes back as an error Status and
  /// leaves the connection closed so the next call reconnects.
  [[nodiscard]] core::StatusOr<Frame> call(const Frame& request);

 private:
  const std::uint16_t port_;
  const TcpClientOptions options_;
  int fd_ = -1;
};

struct RetryPolicy {
  std::size_t max_attempts = 5;  ///< total tries, not just retries
  std::uint32_t base_backoff_ms = 20;
  std::uint32_t max_backoff_ms = 2000;
  /// Jitter fraction in [0, 1]: each wait is scaled by a factor drawn
  /// uniformly from [1 - jitter, 1 + jitter] (decorrelates a thundering
  /// herd of clients retrying in lockstep).
  double jitter = 0.25;
};

struct RetryResult {
  Frame reply;                  ///< the final (non-overloaded) reply
  std::size_t attempts = 0;     ///< tries consumed, including the last
  std::uint64_t waited_ms = 0;  ///< total backoff actually slept
};

/// Calls through `client` with retries. Retried outcomes: transport
/// errors (reconnect + retry) and reply-overloaded frames, where the
/// wait is max(jittered backoff, server retry-after hint). A reply
/// addressed to our request id — ok or error — is final: a semantic
/// error will not succeed on a retry. The wait schedule is drawn from
/// `rng` (callers fork a stream per logical request) and executed via
/// `sleep_ms`, which tests replace to observe waits without sleeping;
/// nullptr sleeps for real.
[[nodiscard]] core::StatusOr<RetryResult> call_with_retry(
    TcpClient& client, const Frame& request, const RetryPolicy& policy,
    Rng& rng, const std::function<void(std::uint64_t)>& sleep_ms = nullptr);

/// The wait before retry number `attempt` (1-based): jittered
/// exponential doubling clamped to max_backoff_ms, floored by
/// `retry_after_ms` when the server sent a hint. Exposed for tests.
[[nodiscard]] std::uint64_t retry_backoff_ms(const RetryPolicy& policy,
                                             std::size_t attempt,
                                             std::uint32_t retry_after_ms,
                                             Rng& rng);

}  // namespace mdg::serve

#include "serve/admission.h"

#include <algorithm>

namespace mdg::serve {

bool is_control_frame(FrameType type) {
  switch (type) {
    case FrameType::kPing:
    case FrameType::kStatsRequest:
    case FrameType::kShutdown:
      return true;
    default:
      return false;
  }
}

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {
  if (options_.backlog == 0) {
    options_.backlog = 1;
  }
  if (options_.brownout_enter == 0) {
    options_.brownout_enter = std::max<std::size_t>(1, options_.backlog * 3 / 4);
  }
  if (options_.brownout_exit == 0) {
    options_.brownout_exit = options_.backlog / 4;
  }
  // A release threshold at or above the engage threshold would defeat
  // the hysteresis; clamp it strictly below.
  options_.brownout_exit =
      std::min(options_.brownout_exit, options_.brownout_enter - 1);
}

void AdmissionController::observe_depth(std::size_t depth) {
  if (!brownout_ && depth >= options_.brownout_enter) {
    brownout_ = true;
  } else if (brownout_ && depth <= options_.brownout_exit) {
    brownout_ = false;
  }
}

AdmitDecision AdmissionController::admit(FrameType type, std::size_t depth) {
  observe_depth(depth);
  if (is_control_frame(type)) {
    return AdmitDecision::kAdmit;
  }
  if (draining_ || depth >= options_.backlog) {
    return AdmitDecision::kShed;
  }
  return brownout_ ? AdmitDecision::kDegraded : AdmitDecision::kAdmit;
}

std::uint32_t AdmissionController::retry_after_ms(std::size_t depth) const {
  if (draining_) {
    return options_.retry_after_cap_ms;
  }
  std::uint64_t hint = options_.retry_after_base_ms;
  // One doubling per whole backlog of excess queue depth, capped both
  // by value and by shift count (a hostile depth cannot overflow).
  const std::size_t excess =
      depth > options_.backlog ? depth - options_.backlog : 0;
  std::size_t doublings = excess / options_.backlog;
  doublings = std::min<std::size_t>(doublings, 6);
  hint <<= doublings;
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(hint, options_.retry_after_cap_ms));
}

}  // namespace mdg::serve

#include "serve/protocol.h"

#include <charconv>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>

#include "io/delta_io.h"
#include "io/serialize.h"

namespace mdg::serve {
namespace {

void put_u32(std::string& out, std::uint32_t value) {
  out.push_back(static_cast<char>(value & 0xff));
  out.push_back(static_cast<char>((value >> 8) & 0xff));
  out.push_back(static_cast<char>((value >> 16) & 0xff));
  out.push_back(static_cast<char>((value >> 24) & 0xff));
}

std::uint32_t get_u32(const unsigned char* bytes) {
  return static_cast<std::uint32_t>(bytes[0]) |
         (static_cast<std::uint32_t>(bytes[1]) << 8) |
         (static_cast<std::uint32_t>(bytes[2]) << 16) |
         (static_cast<std::uint32_t>(bytes[3]) << 24);
}

/// Reads one "<key> <value...>" line; both pieces mandatory unless
/// `value` is nullptr (bare-keyword line).
core::Status read_keyed_line(std::istream& in, const char* key,
                             std::string* value) {
  std::string line;
  if (!std::getline(in, line)) {
    return core::Status::data_loss(std::string("request truncated before '") +
                                   key + "' line");
  }
  const std::size_t space = line.find(' ');
  const std::string got = line.substr(0, space);
  if (got != key) {
    return core::Status::invalid_argument("expected '" + std::string(key) +
                                          "' line, got '" + got + "'");
  }
  if (value == nullptr) {
    if (space != std::string::npos) {
      return core::Status::invalid_argument(
          "unexpected value after '" + std::string(key) + "'");
    }
    return core::Status::ok();
  }
  if (space == std::string::npos || space + 1 >= line.size()) {
    return core::Status::invalid_argument("missing value for '" +
                                          std::string(key) + "'");
  }
  *value = line.substr(space + 1);
  return core::Status::ok();
}

core::Status parse_u64(const std::string& text, const char* key,
                       std::uint64_t* out) {
  const char* first = text.data();
  const char* last = first + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, *out);
  if (ec != std::errc{} || ptr != last) {
    return core::Status::invalid_argument("bad value for '" +
                                          std::string(key) + "': " + text);
  }
  return core::Status::ok();
}

core::Status parse_double(const std::string& text, const char* key,
                          double* out) {
  std::istringstream in(text);
  in >> *out;
  if (in.fail() || !(in >> std::ws).eof()) {
    return core::Status::invalid_argument("bad value for '" +
                                          std::string(key) + "': " + text);
  }
  return core::Status::ok();
}

core::Status parse_bool(const std::string& text, const char* key, bool* out) {
  if (text == "0") {
    *out = false;
    return core::Status::ok();
  }
  if (text == "1") {
    *out = true;
    return core::Status::ok();
  }
  return core::Status::invalid_argument("bad value for '" + std::string(key) +
                                        "' (want 0|1): " + text);
}

core::Status require_at_end(std::istream& in) {
  in >> std::ws;
  if (in.peek() != std::char_traits<char>::eof()) {
    return core::Status::invalid_argument(
        "trailing bytes after the request body");
  }
  return core::Status::ok();
}

#define MDG_SERVE_TRY(expr)                \
  do {                                     \
    const core::Status mdg_status = (expr);\
    if (!mdg_status.is_ok()) {             \
      return mdg_status;                   \
    }                                      \
  } while (false)

/// The shared "planner ... warm" option block of plan and delta
/// requests (fixed key order — the payload doubles as a cache key).
void write_request_options(std::ostream& out,
                           const PlanRequestOptions& options) {
  out << "planner " << options.planner << "\n"
      << "max-load " << options.max_load << "\n"
      << "multi-start " << options.multi_start << "\n"
      << "refine " << (options.refine ? 1 : 0) << "\n"
      << "deadline-ms " << options.deadline_ms << "\n"
      << "warm " << (options.warm ? 1 : 0) << "\n";
  if (options.relay_hops != 1) {
    out << "relay-hops " << options.relay_hops << "\n";
  }
}

core::Status read_request_options(std::istream& in,
                                  PlanRequestOptions* options) {
  std::string value;
  MDG_SERVE_TRY(read_keyed_line(in, "planner", &options->planner));
  std::uint64_t u64 = 0;
  MDG_SERVE_TRY(read_keyed_line(in, "max-load", &value));
  MDG_SERVE_TRY(parse_u64(value, "max-load", &u64));
  options->max_load = static_cast<std::size_t>(u64);
  MDG_SERVE_TRY(read_keyed_line(in, "multi-start", &value));
  MDG_SERVE_TRY(parse_u64(value, "multi-start", &u64));
  options->multi_start = static_cast<std::size_t>(u64);
  MDG_SERVE_TRY(read_keyed_line(in, "refine", &value));
  MDG_SERVE_TRY(parse_bool(value, "refine", &options->refine));
  MDG_SERVE_TRY(read_keyed_line(in, "deadline-ms", &value));
  MDG_SERVE_TRY(parse_u64(value, "deadline-ms", &u64));
  if (u64 > 0xffffffffull) {
    return core::Status::invalid_argument("deadline-ms out of range");
  }
  options->deadline_ms = static_cast<std::uint32_t>(u64);
  MDG_SERVE_TRY(read_keyed_line(in, "warm", &value));
  MDG_SERVE_TRY(parse_bool(value, "warm", &options->warm));
  // Optional trailing "relay-hops" line (absent on every legacy payload
  // and whenever d = 1): peek, consume on match, rewind otherwise.
  options->relay_hops = 1;
  const std::istream::pos_type mark = in.tellg();
  std::string line;
  if (std::getline(in, line) && line.rfind("relay-hops ", 0) == 0) {
    MDG_SERVE_TRY(parse_u64(line.substr(11), "relay-hops", &u64));
    if (u64 > 1024) {
      return core::Status::invalid_argument("relay-hops out of range: " +
                                            line.substr(11));
    }
    options->relay_hops = static_cast<std::size_t>(u64);
  } else {
    in.clear();
    in.seekg(mark);
  }
  return core::Status::ok();
}

}  // namespace

std::span<const FrameTypeInfo> known_frame_types() {
  static constexpr FrameTypeInfo kCatalog[] = {
      {"plan-request", 1},     {"simulate-request", 2},
      {"stats-request", 3},    {"ping", 4},
      {"shutdown", 5},         {"delta-request", 6},
      {"reply-ok", 16},        {"reply-error", 17},
      {"pong", 18},            {"reply-overloaded", 19},
  };
  return kCatalog;
}

const char* frame_type_name(FrameType type) {
  for (const FrameTypeInfo& info : known_frame_types()) {
    if (info.value == static_cast<std::uint32_t>(type)) {
      return info.name;
    }
  }
  return nullptr;
}

std::string frame_bytes(const Frame& frame) {
  std::string out;
  out.reserve(kHeaderBytes + frame.payload.size());
  out.append(kMagic, sizeof(kMagic));
  put_u32(out, static_cast<std::uint32_t>(frame.type));
  put_u32(out, frame.id);
  put_u32(out, frame.flags);
  put_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
  out += frame.payload;
  return out;
}

void write_frame(std::ostream& out, const Frame& frame) {
  const std::string bytes = frame_bytes(frame);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

core::StatusOr<std::optional<Frame>> read_frame(
    std::istream& in, const ReadFrameOptions& options) {
  unsigned char header[kHeaderBytes];
  in.read(reinterpret_cast<char*>(header), kHeaderBytes);
  const auto got = static_cast<std::size_t>(in.gcount());
  if (got == 0) {
    return std::optional<Frame>{};  // clean EOF between frames
  }
  if (got < kHeaderBytes) {
    return core::Status::data_loss("frame header truncated: " +
                                   std::to_string(got) + " of " +
                                   std::to_string(kHeaderBytes) + " bytes");
  }
  if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
    return core::Status::invalid_argument("bad frame magic (want \"MDG1\")");
  }
  const std::uint32_t type_value = get_u32(header + 4);
  if (frame_type_name(static_cast<FrameType>(type_value)) == nullptr) {
    return core::Status::invalid_argument("unknown frame type " +
                                          std::to_string(type_value));
  }
  const std::uint32_t payload_len = get_u32(header + 16);
  if (payload_len > options.max_payload_bytes) {
    return core::Status::invalid_argument(
        "frame payload of " + std::to_string(payload_len) +
        " bytes exceeds the " + std::to_string(options.max_payload_bytes) +
        "-byte limit");
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type_value);
  frame.id = get_u32(header + 8);
  frame.flags = get_u32(header + 12);
  frame.payload.resize(payload_len);
  if (payload_len > 0) {
    in.read(frame.payload.data(), payload_len);
    if (static_cast<std::uint32_t>(in.gcount()) != payload_len) {
      return core::Status::data_loss(
          "frame payload truncated: " +
          std::to_string(static_cast<std::size_t>(in.gcount())) + " of " +
          std::to_string(payload_len) + " bytes");
    }
  }
  return std::optional<Frame>(std::move(frame));
}

std::string build_plan_request(const PlanRequestOptions& options,
                               const net::SensorNetwork& network) {
  std::ostringstream out;
  out << "mdg-request 1\n"
      << "op plan\n";
  write_request_options(out, options);
  out << "network\n";
  io::write_network(out, network);
  return out.str();
}

core::StatusOr<PlanRequest> parse_plan_request(const std::string& payload) {
  std::istringstream in(payload);
  std::string value;
  MDG_SERVE_TRY(read_keyed_line(in, "mdg-request", &value));
  if (value != "1") {
    return core::Status::invalid_argument("unsupported mdg-request version " +
                                          value);
  }
  MDG_SERVE_TRY(read_keyed_line(in, "op", &value));
  if (value != "plan") {
    return core::Status::invalid_argument("expected op plan, got '" + value +
                                          "'");
  }
  PlanRequestOptions options;
  MDG_SERVE_TRY(read_request_options(in, &options));
  MDG_SERVE_TRY(read_keyed_line(in, "network", nullptr));
  auto network = io::try_read_network(in);
  if (!network.is_ok()) {
    return network.status().with_context("plan request network");
  }
  MDG_SERVE_TRY(require_at_end(in));
  return PlanRequest{std::move(options), std::move(network).value()};
}

std::string build_delta_request(const PlanRequestOptions& options,
                                const net::SensorNetwork& network,
                                const core::Delta& delta) {
  std::ostringstream out;
  out << "mdg-request 1\n"
      << "op delta\n";
  write_request_options(out, options);
  out << "network\n";
  io::write_network(out, network);
  out << "delta\n";
  io::write_delta(out, delta);
  return out.str();
}

core::StatusOr<DeltaRequest> parse_delta_request(const std::string& payload) {
  std::istringstream in(payload);
  std::string value;
  MDG_SERVE_TRY(read_keyed_line(in, "mdg-request", &value));
  if (value != "1") {
    return core::Status::invalid_argument("unsupported mdg-request version " +
                                          value);
  }
  MDG_SERVE_TRY(read_keyed_line(in, "op", &value));
  if (value != "delta") {
    return core::Status::invalid_argument("expected op delta, got '" + value +
                                          "'");
  }
  PlanRequestOptions options;
  MDG_SERVE_TRY(read_request_options(in, &options));
  MDG_SERVE_TRY(read_keyed_line(in, "network", nullptr));
  auto network = io::try_read_network(in);
  if (!network.is_ok()) {
    return network.status().with_context("delta request network");
  }
  // The token-based network reader stops right after the last
  // coordinate; skip to the next line before the strict section read.
  in >> std::ws;
  MDG_SERVE_TRY(read_keyed_line(in, "delta", nullptr));
  auto delta = io::try_read_delta(in);
  if (!delta.is_ok()) {
    return delta.status().with_context("delta request delta");
  }
  MDG_SERVE_TRY(require_at_end(in));
  return DeltaRequest{std::move(options), std::move(network).value(),
                      std::move(delta).value()};
}

std::string build_simulate_request(std::size_t rounds, double speed,
                                   double battery, std::uint64_t seed,
                                   const net::SensorNetwork& network,
                                   const core::ShdgpSolution& solution) {
  std::ostringstream out;
  out.precision(17);
  out << "mdg-request 1\n"
      << "op simulate\n"
      << "rounds " << rounds << "\n"
      << "speed " << speed << "\n"
      << "battery " << battery << "\n"
      << "seed " << seed << "\n"
      << "network\n";
  io::write_network(out, network);
  out << "solution\n";
  io::write_solution(out, solution);
  return out.str();
}

core::StatusOr<SimulateRequest> parse_simulate_request(
    const std::string& payload) {
  std::istringstream in(payload);
  std::string value;
  MDG_SERVE_TRY(read_keyed_line(in, "mdg-request", &value));
  if (value != "1") {
    return core::Status::invalid_argument("unsupported mdg-request version " +
                                          value);
  }
  MDG_SERVE_TRY(read_keyed_line(in, "op", &value));
  if (value != "simulate") {
    return core::Status::invalid_argument("expected op simulate, got '" +
                                          value + "'");
  }
  std::size_t rounds = 0;
  double speed = 0.0;
  double battery = 0.0;
  std::uint64_t seed = 0;
  std::uint64_t u64 = 0;
  MDG_SERVE_TRY(read_keyed_line(in, "rounds", &value));
  MDG_SERVE_TRY(parse_u64(value, "rounds", &u64));
  if (u64 == 0 || u64 > 1000000) {
    return core::Status::invalid_argument("rounds out of range: " + value);
  }
  rounds = static_cast<std::size_t>(u64);
  MDG_SERVE_TRY(read_keyed_line(in, "speed", &value));
  MDG_SERVE_TRY(parse_double(value, "speed", &speed));
  if (!(speed > 0.0)) {
    return core::Status::invalid_argument("speed must be positive: " + value);
  }
  MDG_SERVE_TRY(read_keyed_line(in, "battery", &value));
  MDG_SERVE_TRY(parse_double(value, "battery", &battery));
  if (!(battery > 0.0)) {
    return core::Status::invalid_argument("battery must be positive: " +
                                          value);
  }
  MDG_SERVE_TRY(read_keyed_line(in, "seed", &value));
  MDG_SERVE_TRY(parse_u64(value, "seed", &seed));
  MDG_SERVE_TRY(read_keyed_line(in, "network", nullptr));
  auto network = io::try_read_network(in);
  if (!network.is_ok()) {
    return network.status().with_context("simulate request network");
  }
  // The token-based network reader stops right after the last
  // coordinate; skip to the next line before the strict section read.
  in >> std::ws;
  MDG_SERVE_TRY(read_keyed_line(in, "solution", nullptr));
  auto solution = io::try_read_solution(in);
  if (!solution.is_ok()) {
    return solution.status().with_context("simulate request solution");
  }
  MDG_SERVE_TRY(require_at_end(in));
  return SimulateRequest{rounds,
                         speed,
                         battery,
                         seed,
                         std::move(network).value(),
                         std::move(solution).value()};
}

std::string build_error_payload(const core::Status& status) {
  std::string message = status.message();
  const std::size_t newline = message.find('\n');
  if (newline != std::string::npos) {
    message.resize(newline);
  }
  std::ostringstream out;
  out << "mdg-error 1\n"
      << "code " << to_string(status.code()) << "\n"
      << "message " << message << "\n";
  return out.str();
}

std::string build_overloaded_payload(const OverloadInfo& info) {
  std::ostringstream out;
  out << "mdg-overloaded 1\n"
      << "retry-after-ms " << info.retry_after_ms << "\n"
      << "queue-depth " << info.queue_depth << "\n"
      << "draining " << (info.draining ? 1 : 0) << "\n";
  return out.str();
}

core::StatusOr<OverloadInfo> parse_overloaded_payload(
    const std::string& payload) {
  std::istringstream in(payload);
  std::string value;
  MDG_SERVE_TRY(read_keyed_line(in, "mdg-overloaded", &value));
  if (value != "1") {
    return core::Status::invalid_argument(
        "unsupported mdg-overloaded version " + value);
  }
  OverloadInfo info;
  std::uint64_t u64 = 0;
  MDG_SERVE_TRY(read_keyed_line(in, "retry-after-ms", &value));
  MDG_SERVE_TRY(parse_u64(value, "retry-after-ms", &u64));
  if (u64 > 0xffffffffull) {
    return core::Status::invalid_argument("retry-after-ms out of range");
  }
  info.retry_after_ms = static_cast<std::uint32_t>(u64);
  MDG_SERVE_TRY(read_keyed_line(in, "queue-depth", &value));
  MDG_SERVE_TRY(parse_u64(value, "queue-depth", &info.queue_depth));
  MDG_SERVE_TRY(read_keyed_line(in, "draining", &value));
  MDG_SERVE_TRY(parse_bool(value, "draining", &info.draining));
  MDG_SERVE_TRY(require_at_end(in));
  return info;
}

}  // namespace mdg::serve

// The serving layer's LRU plan cache.
//
// Three lookup paths over one LRU list of cached plans (docs/SERVE.md
// §cache, ALGORITHMS.md §Serving):
//
//  1. raw key — FNV-1a over the request payload bytes. A client
//     resending the identical request hits without the server parsing
//     anything; this is the zero-compute path behind the "exact hits
//     are >=100x faster than cold plans" bench criterion.
//  2. canonical key — FNV-1a over verify::canonical_network_bytes plus
//     an options fingerprint. Two payloads that *parse* to the same
//     instance and options (different float spellings) share this key;
//     a canonical hit replays the same cached reply and registers the
//     new raw spelling as an alias.
//  3. warm signature — FNV-1a over the polling-point set a request's
//     cover phase produces (plus the load cap). A request whose cover
//     matches a cached plan's — same geometry, different multi-start
//     width, different deadline — warm-starts tsp::improve from the
//     cached tour instead of constructing from scratch.
//
// Thread-safe behind one mutex; every operation is O(1)-ish (hash maps
// + a splice). Entries are shared_ptr so a reply being written out
// survives concurrent eviction.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "geom/point.h"

namespace mdg::serve {

/// FNV-1a 64-bit over `bytes`, chainable via `seed`.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes,
                                    std::uint64_t seed = 0xcbf29ce484222325ull);

/// One cached plan: the full reply payload plus the geometry a
/// warm-start needs to re-map the tour onto a new request's
/// polling-point order.
struct CachedPlan {
  std::string reply_payload;  ///< complete kReplyOk payload bytes
  /// The canonical plan-request payload this entry answers. Non-empty
  /// only for snapshot-eligible entries (cold plan-path plans): the
  /// crash-recovery snapshot persists (request, reply) pairs and the
  /// restore path re-derives every cache key and re-gates the solution
  /// from them (serve/snapshot.h). Empty = in-memory only.
  std::string request_payload;
  /// Polling points sorted by (x, y) — the order-independent identity
  /// the warm signature hashes.
  std::vector<geom::Point> sorted_points;
  /// Tour over [sink] + sorted_points (index 0 = sink, i >= 1 =
  /// sorted_points[i-1]), rotated so the sink leads.
  std::vector<std::size_t> canonical_tour;
  geom::Point sink{0.0, 0.0};
};

class PlanCache {
 public:
  /// `capacity` = max entries; 0 disables caching entirely (every
  /// lookup misses, every insert is dropped).
  explicit PlanCache(std::size_t capacity);

  /// Exact lookups; a hit refreshes LRU recency. `kNoKey` (0) never
  /// matches — use it for "this request has no warm signature".
  [[nodiscard]] std::shared_ptr<const CachedPlan> find_raw(
      std::uint64_t raw_key);
  [[nodiscard]] std::shared_ptr<const CachedPlan> find_canonical(
      std::uint64_t canonical_key);
  /// Warm lookup: most recently inserted entry with this signature.
  [[nodiscard]] std::shared_ptr<const CachedPlan> find_warm(
      std::uint64_t signature);

  /// Registers another raw spelling for an existing canonical entry
  /// (no-op when the canonical key is not cached).
  void alias_raw(std::uint64_t raw_key, std::uint64_t canonical_key);

  /// Inserts (or refreshes) a plan. `warm_signature` may be kNoKey for
  /// plans that must not serve as warm-start donors (refined plans,
  /// non-greedy planners). Evicts the least recently used entry past
  /// capacity.
  void insert(std::uint64_t raw_key, std::uint64_t canonical_key,
              std::uint64_t warm_signature, CachedPlan plan);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Snapshot export: every cached plan, least recently used first, so
  /// a restore that re-inserts in order reproduces today's recency
  /// order (and, past capacity, evicts the same entries a live server
  /// would have).
  [[nodiscard]] std::vector<std::shared_ptr<const CachedPlan>>
  entries_oldest_first() const;

  static constexpr std::uint64_t kNoKey = 0;

 private:
  struct Entry {
    std::uint64_t canonical_key = kNoKey;
    std::uint64_t warm_signature = kNoKey;
    std::vector<std::uint64_t> raw_keys;
    std::shared_ptr<const CachedPlan> plan;
  };
  using EntryList = std::list<Entry>;

  void touch(EntryList::iterator it);
  void evict_one();

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  EntryList entries_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, EntryList::iterator> by_raw_;
  std::unordered_map<std::uint64_t, EntryList::iterator> by_canonical_;
  std::unordered_map<std::uint64_t, EntryList::iterator> by_signature_;
};

}  // namespace mdg::serve

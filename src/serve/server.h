// The process around the Engine: connections, admission queueing,
// worker threads, periodic run reports.
//
// Two transports share one Engine:
//
//  * stdio mode — a single connection on stdin/stdout, handled
//    strictly sequentially so replies arrive in request order. This is
//    the mode tests, CI, and scripted transcripts use: deterministic
//    reply bytes, no sockets, no threads.
//  * TCP mode — a loopback listener; each connection gets a reader
//    thread that parses frames into a bounded admission queue drained
//    by a fixed worker pool. When the queue is full the reader replies
//    immediately with a failed-precondition error ("server
//    overloaded") instead of blocking — bounded memory, bounded
//    latency. Replies to one connection may interleave out of request
//    order; the echoed frame id correlates them.
//
// Exit codes follow mdg_cli's convention where it makes sense:
// 0 = clean (EOF or shutdown frame), 3 = unrecoverable protocol error
// on the stdio byte stream (a framing error leaves no resync point,
// so the server sends one error reply and stops).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>

#include "serve/engine.h"
#include "serve/protocol.h"

namespace mdg::serve {

struct ServerOptions {
  EngineOptions engine;
  /// Worker threads draining the TCP admission queue
  /// (0 = util::planning_threads()).
  std::size_t workers = 0;
  /// Max requests waiting in the admission queue before rejection.
  std::size_t backlog = 64;
  /// Per-frame payload cap handed to read_frame.
  std::uint32_t max_payload_bytes = kDefaultMaxPayloadBytes;
  /// When non-empty, the engine's run report is written here at
  /// shutdown and every `report_every` requests.
  std::string report_path;
  std::size_t report_every = 0;  ///< 0 = only at shutdown
};

class Server {
 public:
  explicit Server(ServerOptions options = {});

  /// Single-connection sequential loop over `in`/`out`. Returns the
  /// process exit code: 0 on clean EOF or shutdown, 3 after a framing
  /// error (one kReplyError frame is emitted first).
  [[nodiscard]] int serve_stdio(std::istream& in, std::ostream& out);

  /// Listens on 127.0.0.1:`port` until a shutdown frame arrives.
  /// Returns the exit code, or a Status when the listener cannot be
  /// set up (bind/listen failure, sockets unavailable).
  [[nodiscard]] core::StatusOr<int> serve_tcp(std::uint16_t port);

  [[nodiscard]] Engine& engine() { return engine_; }
  [[nodiscard]] const ServerOptions& options() const { return options_; }

 private:
  /// Thread-safe (its own mutex); callers must NOT hold the TCP
  /// admission-queue lock — report serialization does registry walks
  /// and file I/O and must never stall dispatch.
  void maybe_report(bool force);

  ServerOptions options_;
  Engine engine_;
  std::mutex report_mutex_;
  std::uint64_t handled_since_report_ = 0;  ///< guarded by report_mutex_
  double start_ms_ = 0.0;
};

}  // namespace mdg::serve

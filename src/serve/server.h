// The process around the Engine: connections, admission queueing,
// worker threads, periodic run reports, and the survivability layer
// (overload control, slow-client defense, drain + cache snapshots).
//
// Two transports share one Engine:
//
//  * stdio mode — a single connection on stdin/stdout, handled
//    strictly sequentially so replies arrive in request order. This is
//    the mode tests, CI, and scripted transcripts use: deterministic
//    reply bytes, no sockets, no threads.
//  * TCP mode — a loopback listener; each connection gets a reader
//    thread that parses frames into a bounded admission queue drained
//    by a fixed worker pool. An AdmissionController decides each work
//    frame under the queue lock: admit at full effort, admit at
//    brownout (construction-only) effort, or shed with a typed
//    reply-overloaded frame carrying a retry-after hint — the
//    connection stays open. Control frames (ping/stats/shutdown) are
//    always admitted. Replies to one connection may interleave out of
//    request order; the echoed frame id correlates them.
//
// Slow-client defense: per-connection read/write deadlines
// (SO_RCVTIMEO/SO_SNDTIMEO) and a cumulative payload byte budget mean
// a peer that sends half a header and stalls, trickles bytes forever,
// or disappears mid-reply costs one connection teardown (counted as
// serve.conn_timeout), never a pinned worker.
//
// Drain: request_drain() (the SIGTERM handler calls it — it is
// async-signal-safe) stops the accept loop, sheds new work frames with
// draining=1, completes everything already queued, then writes the
// plan-cache snapshot so a restart warm-starts. The shutdown frame
// drains identically.
//
// Exit codes follow mdg_cli's convention where it makes sense:
// 0 = clean (EOF, shutdown frame, or drain), 3 = unrecoverable
// protocol error on the stdio byte stream (a framing error leaves no
// resync point, so the server sends one error reply and stops).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>

#include "serve/admission.h"
#include "serve/engine.h"
#include "serve/protocol.h"

namespace mdg::serve {

struct ServerOptions {
  EngineOptions engine;
  /// Worker threads draining the TCP admission queue
  /// (0 = util::planning_threads()).
  std::size_t workers = 0;
  /// Max requests waiting in the admission queue before shedding.
  /// (Kept outside `admission` for flag compatibility; it overrides
  /// admission.backlog.)
  std::size_t backlog = 64;
  /// Brownout thresholds and retry-after shaping.
  AdmissionOptions admission;
  /// Per-frame payload cap handed to read_frame.
  std::uint32_t max_payload_bytes = kDefaultMaxPayloadBytes;
  /// TCP slow-client defense: a connection that stalls a read/write
  /// past this is dropped (0 = no deadline).
  std::uint32_t read_timeout_ms = 30000;
  std::uint32_t write_timeout_ms = 10000;
  /// Cumulative payload-byte budget per TCP connection (0 = unlimited).
  std::uint64_t max_conn_bytes = 0;
  /// When non-empty, the plan-cache snapshot is written here on every
  /// graceful exit (EOF, shutdown frame, drain) and load_snapshot()
  /// reads it back at startup.
  std::string snapshot_path;
  /// When non-empty, the engine's run report is written here at
  /// shutdown and every `report_every` requests.
  std::string report_path;
  std::size_t report_every = 0;  ///< 0 = only at shutdown
};

/// Raises the global drain flag. Async-signal-safe (one atomic store):
/// mdg_serve's SIGTERM/SIGINT handler calls this, and the signal also
/// interrupts a blocking accept() (installed without SA_RESTART) so
/// the TCP loop observes the flag promptly.
void request_drain();
[[nodiscard]] bool drain_requested();
/// Clears the flag (tests; the flag is process-global).
void reset_drain_for_tests();

class Server {
 public:
  explicit Server(ServerOptions options = {});

  /// Single-connection sequential loop over `in`/`out`. Returns the
  /// process exit code: 0 on clean EOF, shutdown, or drain (snapshot
  /// written if configured), 3 after a framing error (one kReplyError
  /// frame and a stderr diagnostic are emitted first; no snapshot —
  /// the exit is not graceful).
  [[nodiscard]] int serve_stdio(std::istream& in, std::ostream& out);

  /// Listens on 127.0.0.1:`port` until a shutdown frame arrives or
  /// drain is requested. Returns the exit code, or a Status when the
  /// listener cannot be set up (bind/listen failure, sockets
  /// unavailable).
  [[nodiscard]] core::StatusOr<int> serve_tcp(std::uint16_t port);

  /// Loads options().snapshot_path and replays it through the engine's
  /// verification gates. Returns the number of entries restored;
  /// kNotFound when no snapshot exists (normal first boot), other
  /// errors for stale/torn/corrupt files — callers log and cold-start,
  /// they never fail the boot.
  [[nodiscard]] core::StatusOr<std::size_t> load_snapshot();

  /// Writes the current snapshot-eligible cache contents to
  /// options().snapshot_path (no-op returning 0 when unset). Called
  /// automatically on graceful exits; public for tests and tools.
  [[nodiscard]] core::StatusOr<std::size_t> save_snapshot();

  [[nodiscard]] Engine& engine() { return engine_; }
  [[nodiscard]] const ServerOptions& options() const { return options_; }

 private:
  /// Thread-safe (its own mutex); callers must NOT hold the TCP
  /// admission-queue lock — report serialization does registry walks
  /// and file I/O and must never stall dispatch.
  void maybe_report(bool force);

  /// save_snapshot() with the failure logged instead of returned — the
  /// graceful-exit paths must not turn a full disk into a bad exit
  /// code.
  void save_snapshot_logged();

  ServerOptions options_;
  Engine engine_;
  std::mutex report_mutex_;
  std::uint64_t handled_since_report_ = 0;  ///< guarded by report_mutex_
  double start_ms_ = 0.0;
};

}  // namespace mdg::serve

// A minimal std::streambuf over a POSIX file descriptor, shared by the
// TCP server, the retry client, and the chaos proxy.
//
// The one piece of cleverness: error *classification*. std::istream
// collapses every read failure into eofbit/failbit, but the
// slow-client defense needs to distinguish "the peer closed" (serve a
// clean disconnect) from "the peer stalled past SO_RCVTIMEO" (count a
// serve.conn_timeout and drop the connection). The buf records the
// errno of the last failed syscall so callers can tell the two apart
// after a stream read fails.
#pragma once

#if defined(__unix__) || defined(__APPLE__)

#include <cerrno>
#include <streambuf>

#include <unistd.h>

namespace mdg::serve {

class FdStreambuf final : public std::streambuf {
 public:
  explicit FdStreambuf(int fd) : fd_(fd) { setg(buf_, buf_, buf_); }

  /// errno of the last read()/write() that returned <= 0 (0 = clean
  /// EOF or no failure yet).
  [[nodiscard]] int last_errno() const { return last_errno_; }

  /// True when the last failure was a receive/send timeout
  /// (SO_RCVTIMEO / SO_SNDTIMEO expiring surfaces as EAGAIN or
  /// EWOULDBLOCK) rather than EOF or a hard error.
  [[nodiscard]] bool timed_out() const {
    return last_errno_ == EAGAIN || last_errno_ == EWOULDBLOCK;
  }

 protected:
  int_type underflow() override {
    if (gptr() < egptr()) {
      return traits_type::to_int_type(*gptr());
    }
    const ssize_t n = ::read(fd_, buf_, sizeof(buf_));
    if (n <= 0) {
      last_errno_ = n == 0 ? 0 : errno;
      return traits_type::eof();
    }
    setg(buf_, buf_, buf_ + n);
    return traits_type::to_int_type(*gptr());
  }

  std::streamsize xsputn(const char* s, std::streamsize n) override {
    std::streamsize written = 0;
    while (written < n) {
      const ssize_t w = ::write(fd_, s + written,
                                static_cast<std::size_t>(n - written));
      if (w <= 0) {
        last_errno_ = w == 0 ? 0 : errno;
        return written;
      }
      written += w;
    }
    return written;
  }

  int_type overflow(int_type ch) override {
    if (traits_type::eq_int_type(ch, traits_type::eof())) {
      return 0;
    }
    const char c = traits_type::to_char_type(ch);
    return xsputn(&c, 1) == 1 ? ch : traits_type::eof();
  }

 private:
  int fd_;
  int last_errno_ = 0;
  char buf_[1 << 12];
};

}  // namespace mdg::serve

#endif  // POSIX

#include "serve/client.h"

#include <algorithm>
#include <chrono>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#define MDG_SERVE_CLIENT_HAVE_SOCKETS 1
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <istream>

#include "serve/fd_stream.h"
#else
#define MDG_SERVE_CLIENT_HAVE_SOCKETS 0
#endif

namespace mdg::serve {

#if MDG_SERVE_CLIENT_HAVE_SOCKETS

namespace {

timeval to_timeval(std::uint32_t ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  return tv;
}

}  // namespace

TcpClient::TcpClient(std::uint16_t port, TcpClientOptions options)
    : port_(port), options_(options) {}

TcpClient::~TcpClient() { disconnect(); }

void TcpClient::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

core::Status TcpClient::connect() {
  if (fd_ >= 0) {
    return core::Status::ok();
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return core::Status::internal("socket() failed: " +
                                  std::string(std::strerror(errno)));
  }
  // Nonblocking connect + poll: a daemon that is wedged (or a port
  // nobody listens on behind a DROP rule) fails within
  // connect_timeout_ms instead of hanging for the kernel default.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    return core::Status::internal("connect to 127.0.0.1:" +
                                  std::to_string(port_) + " failed: " +
                                  reason);
  }
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    rc = ::poll(&pfd, 1, static_cast<int>(options_.connect_timeout_ms));
    if (rc <= 0) {
      ::close(fd);
      return core::Status::internal(
          "connect to 127.0.0.1:" + std::to_string(port_) +
          (rc == 0 ? " timed out after " +
                         std::to_string(options_.connect_timeout_ms) + " ms"
                   : std::string(" failed: ") + std::strerror(errno)));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      ::close(fd);
      return core::Status::internal("connect to 127.0.0.1:" +
                                    std::to_string(port_) + " failed: " +
                                    std::strerror(err));
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking + socket timeouts
  const timeval rcv = to_timeval(options_.read_timeout_ms);
  const timeval snd = to_timeval(options_.write_timeout_ms);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &rcv, sizeof(rcv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &snd, sizeof(snd));
  fd_ = fd;
  return core::Status::ok();
}

core::StatusOr<Frame> TcpClient::call(const Frame& request) {
  if (core::Status s = connect(); !s.is_ok()) {
    return s;
  }
  FdStreambuf out_buf(fd_);
  std::ostream out(&out_buf);
  write_frame(out, request);
  out.flush();
  if (!out.good()) {
    disconnect();
    return core::Status::internal(
        out_buf.timed_out() ? "send timed out" : "send failed");
  }
  FdStreambuf in_buf(fd_);
  std::istream in(&in_buf);
  auto frame = read_frame(in, ReadFrameOptions{options_.max_payload_bytes});
  if (!frame.is_ok()) {
    disconnect();
    return frame.status();
  }
  if (!frame.value().has_value()) {
    disconnect();
    return core::Status::data_loss(
        in_buf.timed_out() ? "reply timed out after " +
                                 std::to_string(options_.read_timeout_ms) +
                                 " ms"
                           : "server closed the connection before replying");
  }
  return std::move(**frame);
}

#else  // !MDG_SERVE_CLIENT_HAVE_SOCKETS

TcpClient::TcpClient(std::uint16_t port, TcpClientOptions options)
    : port_(port), options_(options) {}
TcpClient::~TcpClient() = default;
void TcpClient::disconnect() {}
core::Status TcpClient::connect() {
  return core::Status::internal("TCP client requires POSIX sockets");
}
core::StatusOr<Frame> TcpClient::call(const Frame&) {
  return core::Status::internal("TCP client requires POSIX sockets");
}

#endif

std::uint64_t retry_backoff_ms(const RetryPolicy& policy, std::size_t attempt,
                               std::uint32_t retry_after_ms, Rng& rng) {
  std::uint64_t wait = policy.base_backoff_ms;
  // Shift-clamped doubling: attempt 1 waits the base, each later
  // attempt doubles, and a hostile attempt count cannot overflow.
  const std::size_t doublings =
      std::min<std::size_t>(attempt > 0 ? attempt - 1 : 0, 20);
  wait <<= doublings;
  wait = std::min<std::uint64_t>(wait, policy.max_backoff_ms);
  const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  if (jitter > 0.0) {
    const double scale = rng.uniform(1.0 - jitter, 1.0 + jitter);
    wait = static_cast<std::uint64_t>(static_cast<double>(wait) * scale);
  }
  // The server's hint is a floor, not a replacement: our own backoff
  // still grows across repeated sheds.
  return std::max<std::uint64_t>(wait, retry_after_ms);
}

core::StatusOr<RetryResult> call_with_retry(
    TcpClient& client, const Frame& request, const RetryPolicy& policy,
    Rng& rng, const std::function<void(std::uint64_t)>& sleep_ms) {
  const std::size_t attempts_allowed = std::max<std::size_t>(
      policy.max_attempts, 1);
  RetryResult result;
  core::Status last = core::Status::internal("retry loop never ran");
  for (std::size_t attempt = 1; attempt <= attempts_allowed; ++attempt) {
    result.attempts = attempt;
    auto reply = client.call(request);
    std::uint32_t retry_after = 0;
    if (reply.is_ok() && reply->type == FrameType::kReplyError &&
        reply->id != request.id) {
      // A stream-level error reply (id 0): the server lost framing —
      // possibly from corruption upstream of us — and is about to drop
      // the connection. Our request was never answered; reconnect and
      // resend it.
      client.disconnect();
      last = core::Status::data_loss(
          "stream-level error reply; connection unsynchronized");
    } else if (reply.is_ok()) {
      if (reply->type != FrameType::kReplyOverloaded) {
        result.reply = std::move(reply).value();
        return result;
      }
      // Typed shed: honor the hint and try again.
      if (auto info = parse_overloaded_payload(reply->payload);
          info.is_ok()) {
        retry_after = info->retry_after_ms;
      }
      last = core::Status::failed_precondition(
          "server overloaded (retry-after " + std::to_string(retry_after) +
          " ms)");
    } else {
      last = reply.status();  // transport trouble; reconnect + retry
    }
    if (attempt == attempts_allowed) {
      break;
    }
    const std::uint64_t wait =
        retry_backoff_ms(policy, attempt, retry_after, rng);
    result.waited_ms += wait;
    if (sleep_ms) {
      sleep_ms(wait);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(wait));
    }
  }
  return core::Status(last.code(), "request failed after " +
                                       std::to_string(result.attempts) +
                                       " attempts: " + last.message());
}

}  // namespace mdg::serve

#include "serve/plan_cache.h"

namespace mdg::serve {

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t seed) {
  std::uint64_t hash = seed;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  // Reserve 0 as the "no key" sentinel.
  return hash == PlanCache::kNoKey ? 1 : hash;
}

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity) {}

void PlanCache::touch(EntryList::iterator it) {
  entries_.splice(entries_.begin(), entries_, it);
}

std::shared_ptr<const CachedPlan> PlanCache::find_raw(std::uint64_t raw_key) {
  if (raw_key == kNoKey) {
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_raw_.find(raw_key);
  if (it == by_raw_.end()) {
    return nullptr;
  }
  touch(it->second);
  return it->second->plan;
}

std::shared_ptr<const CachedPlan> PlanCache::find_canonical(
    std::uint64_t canonical_key) {
  if (canonical_key == kNoKey) {
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_canonical_.find(canonical_key);
  if (it == by_canonical_.end()) {
    return nullptr;
  }
  touch(it->second);
  return it->second->plan;
}

std::shared_ptr<const CachedPlan> PlanCache::find_warm(
    std::uint64_t signature) {
  if (signature == kNoKey) {
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_signature_.find(signature);
  if (it == by_signature_.end()) {
    return nullptr;
  }
  touch(it->second);
  return it->second->plan;
}

void PlanCache::alias_raw(std::uint64_t raw_key, std::uint64_t canonical_key) {
  if (raw_key == kNoKey || canonical_key == kNoKey) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_canonical_.find(canonical_key);
  if (it == by_canonical_.end()) {
    return;
  }
  const auto inserted = by_raw_.try_emplace(raw_key, it->second);
  if (inserted.second) {
    it->second->raw_keys.push_back(raw_key);
  }
}

void PlanCache::evict_one() {
  if (entries_.empty()) {
    return;
  }
  const auto victim = std::prev(entries_.end());
  for (const std::uint64_t raw_key : victim->raw_keys) {
    const auto it = by_raw_.find(raw_key);
    if (it != by_raw_.end() && it->second == victim) {
      by_raw_.erase(it);
    }
  }
  if (victim->canonical_key != kNoKey) {
    const auto it = by_canonical_.find(victim->canonical_key);
    if (it != by_canonical_.end() && it->second == victim) {
      by_canonical_.erase(it);
    }
  }
  if (victim->warm_signature != kNoKey) {
    const auto it = by_signature_.find(victim->warm_signature);
    if (it != by_signature_.end() && it->second == victim) {
      by_signature_.erase(it);
    }
  }
  entries_.erase(victim);
}

void PlanCache::insert(std::uint64_t raw_key, std::uint64_t canonical_key,
                       std::uint64_t warm_signature, CachedPlan plan) {
  if (capacity_ == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  // A concurrent miss on the same instance may have raced us here;
  // refresh recency and keep the established entry (its reply bytes
  // are identical by the determinism contract).
  if (canonical_key != kNoKey) {
    const auto existing = by_canonical_.find(canonical_key);
    if (existing != by_canonical_.end()) {
      touch(existing->second);
      const auto inserted = by_raw_.try_emplace(raw_key, existing->second);
      if (inserted.second) {
        existing->second->raw_keys.push_back(raw_key);
      }
      return;
    }
  }
  entries_.push_front(Entry{
      canonical_key,
      warm_signature,
      {},
      std::make_shared<const CachedPlan>(std::move(plan)),
  });
  const auto it = entries_.begin();
  if (raw_key != kNoKey) {
    const auto inserted = by_raw_.try_emplace(raw_key, it);
    if (inserted.second) {
      it->raw_keys.push_back(raw_key);
    } else {
      // Raw key already points at another entry (hash reuse after a
      // canonical mismatch would be a bug upstream); repoint it.
      inserted.first->second = it;
      it->raw_keys.push_back(raw_key);
    }
  }
  if (canonical_key != kNoKey) {
    by_canonical_[canonical_key] = it;
  }
  if (warm_signature != kNoKey) {
    by_signature_[warm_signature] = it;  // newest donor wins
  }
  while (entries_.size() > capacity_) {
    evict_one();
  }
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::vector<std::shared_ptr<const CachedPlan>> PlanCache::entries_oldest_first()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<const CachedPlan>> out;
  out.reserve(entries_.size());
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    out.push_back(it->plan);
  }
  return out;
}

}  // namespace mdg::serve

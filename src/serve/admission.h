// Overload control for mdg_serve: deadline-free admission with
// priority classes, load shedding, and a brownout mode that degrades
// plan quality under sustained pressure instead of failing.
//
// The controller is a deterministic state machine over the observable
// admission-queue depth — no clocks, no randomness, no thread-count
// dependence. Feeding it the same sequence of (frame class, depth)
// observations always produces the same shed/brownout decisions, which
// is what makes overload behaviour replayable and testable
// (tests/serve/admission_test.cpp pins this; docs/SERVE.md
// §Operations is the operator view).
//
// Priority classes:
//   * control frames (ping, stats, shutdown) are always admitted —
//     they are cheap, and an operator must be able to observe and stop
//     an overloaded server;
//   * work frames (plan, simulate, delta) are shed with a typed
//     `reply-overloaded` frame carrying a retry-after hint once the
//     queue reaches the backlog cap, and planned at degraded effort
//     (construction-only tours, see Engine) while brownout is active.
//
// Brownout uses hysteresis so the mode cannot flap on a queue
// oscillating around one threshold: it engages when the depth reaches
// `brownout_enter` and only releases once the depth has fallen back to
// `brownout_exit`.
#pragma once

#include <cstddef>
#include <cstdint>

#include "serve/protocol.h"

namespace mdg::serve {

struct AdmissionOptions {
  /// Hard cap on queued work frames; at or past this depth new work is
  /// shed with a typed reply-overloaded frame.
  std::size_t backlog = 64;
  /// Queue depth at which brownout engages (0 = derive 3/4 of backlog).
  std::size_t brownout_enter = 0;
  /// Queue depth at which brownout releases (0 = derive 1/4 of backlog).
  std::size_t brownout_exit = 0;
  /// Base of the retry-after hint carried by shed replies.
  std::uint32_t retry_after_base_ms = 50;
  /// Cap on the retry-after hint (also the hint while draining).
  std::uint32_t retry_after_cap_ms = 2000;
};

enum class AdmitDecision {
  kAdmit,     ///< enqueue and plan at full effort
  kDegraded,  ///< enqueue, but plan at brownout (reduced) effort
  kShed,      ///< refuse with a typed reply-overloaded frame
};

/// True for frames in the always-admitted control class.
[[nodiscard]] bool is_control_frame(FrameType type);

/// NOT internally synchronized: callers invoke admit() under the same
/// lock that guards the queue whose depth they pass in, so the
/// (depth, decision) sequence is a consistent, replayable trace.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);

  /// Decides one frame given the current queue depth. Updates the
  /// brownout hysteresis state as a side effect.
  [[nodiscard]] AdmitDecision admit(FrameType type, std::size_t depth);

  /// Re-evaluates brownout hysteresis as the queue drains (workers call
  /// this with the post-dequeue depth so recovery does not wait for the
  /// next arrival).
  void observe_depth(std::size_t depth);

  /// Switches every subsequent work frame to kShed (typed refusal with
  /// the capped retry-after hint). Control frames stay admitted so
  /// in-flight sessions can still ping/stats/shutdown.
  void begin_drain() { draining_ = true; }
  [[nodiscard]] bool draining() const { return draining_; }

  [[nodiscard]] bool brownout() const { return brownout_; }

  /// Deterministic retry-after hint for a shed at `depth`: the base
  /// doubled once per whole backlog of excess depth, capped. While
  /// draining the hint is the cap — the server is going away, not
  /// momentarily busy.
  [[nodiscard]] std::uint32_t retry_after_ms(std::size_t depth) const;

  [[nodiscard]] const AdmissionOptions& options() const { return options_; }

 private:
  AdmissionOptions options_;
  bool brownout_ = false;
  bool draining_ = false;
};

}  // namespace mdg::serve

// The mdg_serve wire protocol: length-prefixed binary frames carrying
// line-oriented text payloads.
//
// Every message — request or reply — is one frame: a fixed 20-byte
// header (magic "MDG1", then type, id, flags, payload length, each a
// little-endian u32) followed by exactly `payload length` payload
// bytes. The header is binary so a reader can reject garbage before
// buffering anything and knows exactly how much to read; the payloads
// are the same human-diffable text formats the rest of the repo uses
// (io::write_network / io::write_solution), so a request can be
// assembled with a text editor and a hex tool. docs/SERVE.md walks
// through a full frame byte by byte.
//
// Replies echo the request id. The flags word is 0 on requests; on
// plan replies its low bits carry the cache outcome (miss / exact hit
// / warm-start hit) and bit 4 reports that the request's deadline
// expired mid-improvement. Keeping the cache outcome in the *header*
// is deliberate: a cached reply's payload stays byte-identical to the
// cold-planned reply for the same instance.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>

#include "core/delta.h"
#include "core/solution.h"
#include "core/status.h"
#include "net/sensor_network.h"

namespace mdg::serve {

/// First four bytes of every frame.
inline constexpr char kMagic[4] = {'M', 'D', 'G', '1'};
/// Fixed header size: magic + type + id + flags + payload length.
inline constexpr std::size_t kHeaderBytes = 20;
/// Default cap on a single frame's payload (guards a hostile length
/// field from allocating unbounded memory).
inline constexpr std::uint32_t kDefaultMaxPayloadBytes = 16u << 20;

/// Frame types. Requests are < 16, replies >= 16.
enum class FrameType : std::uint32_t {
  kPlanRequest = 1,      ///< payload: plan request (op plan)
  kSimulateRequest = 2,  ///< payload: simulate request (op simulate)
  kStatsRequest = 3,     ///< empty payload; server counters back
  kPing = 4,             ///< empty payload; kPong back
  kShutdown = 5,         ///< empty payload; ok reply, then server stops
  kDeltaRequest = 6,     ///< payload: delta request (op delta)
  kReplyOk = 16,         ///< payload: op-specific reply text
  kReplyError = 17,      ///< payload: mdg-error text (Status code + message)
  kPong = 18,            ///< empty payload
  /// Typed load-shedding reply: the request was refused by admission
  /// control (queue full or server draining). Payload: mdg-overloaded
  /// text with a retry-after hint — clients back off and retry instead
  /// of treating it as a semantic failure.
  kReplyOverloaded = 19,
};

// Reply flag bits (requests always send flags = 0).
inline constexpr std::uint32_t kFlagCacheMask = 0x3;
inline constexpr std::uint32_t kFlagCacheMiss = 0;   ///< planned from scratch
inline constexpr std::uint32_t kFlagCacheExact = 1;  ///< served from cache
inline constexpr std::uint32_t kFlagCacheWarm = 2;   ///< warm-started improve
/// Delta reply whose base plan came from the cache: only the incremental
/// repair ran, not a cold plan.
inline constexpr std::uint32_t kFlagCacheRepaired = 3;
inline constexpr std::uint32_t kFlagDeadlineHit = 0x10;
/// The plan was produced under brownout (overload degradation): the
/// tour is construction-only, not fully improved. Brownout plans are
/// never cached, so cached replies stay byte-identical to full-effort
/// cold plans.
inline constexpr std::uint32_t kFlagBrownout = 0x20;

/// Catalog row for the doc-sync test: docs/SERVE.md must document every
/// frame type by name and value.
struct FrameTypeInfo {
  const char* name;  ///< e.g. "plan-request"
  std::uint32_t value;
};

/// Every frame type, sorted by value.
[[nodiscard]] std::span<const FrameTypeInfo> known_frame_types();

/// The catalog name for `type`, or nullptr when the value is unknown.
[[nodiscard]] const char* frame_type_name(FrameType type);

/// One protocol message, header fields plus payload bytes.
struct Frame {
  FrameType type = FrameType::kPing;
  std::uint32_t id = 0;
  std::uint32_t flags = 0;
  std::string payload;
};

/// Serializes header + payload.
void write_frame(std::ostream& out, const Frame& frame);
[[nodiscard]] std::string frame_bytes(const Frame& frame);

struct ReadFrameOptions {
  std::uint32_t max_payload_bytes = kDefaultMaxPayloadBytes;
};

/// Reads one frame. A stream that is cleanly at EOF (no bytes before
/// the next header) yields nullopt — the peer closed between frames.
/// Anything else that prevents a full frame is an error Status: bad
/// magic or an unknown type value (kInvalidArgument), a payload length
/// over the cap (kInvalidArgument), or a stream that ends mid-header
/// or mid-payload (kDataLoss). The reader never crashes, hangs, or
/// allocates more than the declared (capped) payload length.
[[nodiscard]] core::StatusOr<std::optional<Frame>> read_frame(
    std::istream& in, const ReadFrameOptions& options = {});

// --- payload schemas ------------------------------------------------------

/// Knobs of a plan request; mirrors mdg_cli plan's flags.
struct PlanRequestOptions {
  std::string planner = "greedy";
  std::size_t max_load = 0;     ///< sensors per polling point; 0 = uncapped
  std::size_t multi_start = 0;  ///< TSP multi-start width; 0/1 = single
  bool refine = false;          ///< run core::refine_polling_positions
  std::uint32_t deadline_ms = 0;  ///< anytime budget; 0 = none
  bool warm = true;             ///< allow warm-start from the cache
  /// Bounded-relay budget d (core::RelayHopPlanner). 1 = legacy
  /// single-hop; the "relay-hops" line is written only when d != 1, so
  /// every legacy payload (and its cache key) keeps its exact bytes.
  std::size_t relay_hops = 1;
};

struct PlanRequest {
  PlanRequestOptions options;
  net::SensorNetwork network;
};

/// Assembles the canonical plan-request payload text:
///   mdg-request 1
///   op plan
///   planner <name>
///   max-load <K>
///   multi-start <K>
///   refine <0|1>
///   deadline-ms <D>
///   warm <0|1>
///   relay-hops <d>        (only when d != 1)
///   network
///   <io::write_network text>
[[nodiscard]] std::string build_plan_request(const PlanRequestOptions& options,
                                             const net::SensorNetwork& network);

/// Parses the build_plan_request format. Keys are required and fixed in
/// order (the payload doubles as the cache's raw lookup key, so there
/// is exactly one spelling per request). Malformed text, out-of-range
/// values, a bad network section, or trailing bytes produce a
/// diagnostic Status via the hardened io::try_read_network loader.
[[nodiscard]] core::StatusOr<PlanRequest> parse_plan_request(
    const std::string& payload);

/// A delta request: plan (or fetch) the base plan for `network` under
/// `options`, then repair it through `delta` with core::apply_delta.
struct DeltaRequest {
  PlanRequestOptions options;  ///< base-plan knobs; `warm` is ignored
  net::SensorNetwork network;  ///< the PRE-delta network
  core::Delta delta;
};

/// Assembles the delta-request payload. The head is byte-for-byte the
/// plan-request head (same keys, same order) so the base plan shares
/// the plan path's canonical cache identity; the delta section follows:
///   mdg-request 1
///   op delta
///   planner <name> / max-load / multi-start / refine / deadline-ms / warm
///   network
///   <io::write_network text>
///   delta
///   <io::write_delta text>
[[nodiscard]] std::string build_delta_request(const PlanRequestOptions& options,
                                              const net::SensorNetwork& network,
                                              const core::Delta& delta);

/// Parses the build_delta_request format (fixed key order, like the
/// plan request — the payload doubles as the raw cache key).
[[nodiscard]] core::StatusOr<DeltaRequest> parse_delta_request(
    const std::string& payload);

/// A simulate request: run sim::MobileCollectionSim for `rounds`.
struct SimulateRequest {
  std::size_t rounds = 10;
  double speed = 1.0;    ///< collector speed, m/s
  double battery = 0.5;  ///< initial per-sensor battery, J
  std::uint64_t seed = 0x10552008;  ///< upload-loss seed
  net::SensorNetwork network;
  core::ShdgpSolution solution;
};

/// Assembles the simulate-request payload:
///   mdg-request 1
///   op simulate
///   rounds <R> / speed <S> / battery <B> / seed <X>   (one per line)
///   network
///   <io::write_network text>
///   solution
///   <io::write_solution text>
[[nodiscard]] std::string build_simulate_request(
    std::size_t rounds, double speed, double battery, std::uint64_t seed,
    const net::SensorNetwork& network, const core::ShdgpSolution& solution);

/// Parses the build_simulate_request format. The solution is NOT yet
/// checked against the network — the engine does that and maps a
/// mismatch to kFailedPrecondition.
[[nodiscard]] core::StatusOr<SimulateRequest> parse_simulate_request(
    const std::string& payload);

/// Error-reply payload:
///   mdg-error 1
///   code <status-code-name>
///   message <first line of the diagnostic>
[[nodiscard]] std::string build_error_payload(const core::Status& status);

/// What a reply-overloaded frame tells the client.
struct OverloadInfo {
  std::uint32_t retry_after_ms = 0;  ///< back off at least this long
  std::uint64_t queue_depth = 0;     ///< admission-queue depth at the shed
  bool draining = false;  ///< true: server is draining, retry elsewhere/later
};

/// Overloaded-reply payload:
///   mdg-overloaded 1
///   retry-after-ms <N>
///   queue-depth <D>
///   draining <0|1>
[[nodiscard]] std::string build_overloaded_payload(const OverloadInfo& info);

/// Parses the build_overloaded_payload format (the retry/backoff client
/// helper honors the hint; see serve/client.h).
[[nodiscard]] core::StatusOr<OverloadInfo> parse_overloaded_payload(
    const std::string& payload);

}  // namespace mdg::serve

// Quickstart: plan a mobile data-gathering tour for a random network and
// print what a collector round looks like.
//
//   example_quickstart [--sensors 200] [--side 200] [--range 30]
//                      [--seed 1] [--speed 1.0]
#include <iostream>
#include <vector>

#include "mdg.h"

int main(int argc, char** argv) {
  mdg::Flags flags(argc, argv);
  const auto sensors = static_cast<std::size_t>(flags.get_int("sensors", 200));
  const double side = flags.get_double("side", 200.0);
  const double range = flags.get_double("range", 30.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const double speed = flags.get_double("speed", 1.0);
  flags.finish();

  // 1. Deploy the network: N sensors uniform over an L x L field, the
  //    static data sink at the centre.
  mdg::Rng rng(seed);
  const mdg::net::SensorNetwork network =
      mdg::net::make_uniform_network(sensors, side, range, rng);
  std::cout << "Network: " << network.size() << " sensors over " << side
            << "m x " << side << "m, Rs = " << range << "m, avg degree "
            << network.connectivity().average_degree() << ", "
            << network.components().count << " component(s)\n";

  // 2. Build the SHDGP instance (candidate polling positions = sensor
  //    sites) and plan with both heuristics.
  const mdg::core::ShdgpInstance instance(network);
  const mdg::core::SpanningTourPlanner spanning;
  const mdg::core::GreedyCoverPlanner greedy;
  const mdg::core::TreeDominatorPlanner dominator;
  const mdg::baselines::DirectVisitPlanner direct;

  mdg::Table table("Planner comparison", 1);
  table.set_header({"planner", "polling points", "tour length (m)",
                    "round trip @" + std::to_string(speed) + " m/s (min)",
                    "max PP load"});
  const std::vector<const mdg::core::Planner*> planners{
      &spanning, &greedy, &dominator, &direct};
  for (const mdg::core::Planner* planner : planners) {
    const mdg::core::ShdgpSolution solution = planner->plan(instance);
    solution.validate(instance);
    table.add_row({planner->name(),
                   static_cast<long long>(solution.polling_points.size()),
                   solution.tour_length,
                   solution.tour_length / speed / 60.0,
                   static_cast<long long>(solution.max_pp_load())});
  }
  table.print(std::cout);

  // 3. Optional upgrades: slide polling points off the sensor sites
  //    (storage-node flexibility) and compute the wakeup timetable.
  mdg::core::ShdgpSolution plan = spanning.plan(instance);
  const double unrefined = plan.tour_length;
  mdg::core::refine_polling_positions(instance, plan);
  const mdg::core::VisitSchedule schedule(instance, plan);
  std::cout << "\nContinuous-position refinement: " << unrefined << " m -> "
            << plan.tour_length << " m; sensors listen "
            << schedule.average_duty_cycle() * 100.0
            << "% of the round (sleep otherwise)\n";

  // 4. Simulate one gathering round with the refined plan.
  mdg::sim::MobileSimConfig sim_config;
  sim_config.speed_m_per_s = speed;
  mdg::sim::MobileCollectionSim sim(instance, plan, sim_config);
  mdg::sim::EnergyLedger ledger(network.size(),
                                sim_config.initial_battery_j);
  const mdg::sim::MobileRoundReport round = sim.run_round(ledger);
  std::cout << "\nOne gathering round: " << round.duration_s / 60.0
            << " min (" << round.travel_s / 60.0 << " travelling, "
            << round.service_s / 60.0 << " uploading), " << round.delivered
            << " packets delivered\n";
  return 0;
}

// Regenerates the paper's topology figures as SVG: the same network
// rendered under (a) static multihop relay, (b) the direct-visit tour,
// (c) the SHDG polling tour, plus (d) a 3-collector fleet split.
//
//   example_paper_figures [--sensors 300] [--side 300] [--range 30]
//                         [--seed 2008] [--prefix fig]
#include <iostream>

#include "mdg.h"

int main(int argc, char** argv) {
  mdg::Flags flags(argc, argv);
  const auto sensors = static_cast<std::size_t>(flags.get_int("sensors", 300));
  const double side = flags.get_double("side", 300.0);
  const double range = flags.get_double("range", 30.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2008));
  const std::string prefix = flags.get_string("prefix", "fig");
  flags.finish();

  mdg::Rng rng(seed);
  const mdg::net::SensorNetwork network =
      mdg::net::make_uniform_network(sensors, side, range, rng);
  const mdg::core::ShdgpInstance instance(network);

  // (a) Multihop relay: connectivity + SPT hop statistics.
  {
    mdg::io::SvgOptions options;
    options.draw_connectivity = true;
    options.draw_affiliations = false;
    mdg::io::SvgCanvas canvas(network.field(), options);
    canvas.draw_network(network);
    const auto hops = mdg::baselines::MultihopRouting(network).analyze();
    canvas.add_label({2.0, 4.0},
                     "multihop: avg " + std::to_string(hops.average_hops) +
                         " hops");
    canvas.save(prefix + "_a_multihop.svg");
  }

  // (b) Direct-visit tour.
  const mdg::baselines::DirectVisitPlanner direct;
  const mdg::core::ShdgpSolution direct_plan = direct.plan(instance);
  {
    mdg::io::SvgOptions options;
    options.draw_affiliations = false;
    mdg::io::SvgCanvas canvas(network.field(), options);
    canvas.draw_network(network);
    canvas.draw_solution(instance, direct_plan);
    canvas.add_label({2.0, 4.0},
                     "direct-visit: " +
                         std::to_string(direct_plan.tour_length) + " m");
    canvas.save(prefix + "_b_direct.svg");
  }

  // (c) SHDG polling tour with affiliations and range disks.
  const mdg::core::SpanningTourPlanner spanning;
  const mdg::core::ShdgpSolution shdg = spanning.plan(instance);
  {
    mdg::io::SvgOptions options;
    options.draw_affiliations = true;
    options.draw_range_disks = true;
    mdg::io::SvgCanvas canvas(network.field(), options);
    canvas.draw_network(network);
    canvas.draw_solution(instance, shdg);
    canvas.add_label({2.0, 4.0},
                     "SHDG: " + std::to_string(shdg.tour_length) + " m, " +
                         std::to_string(shdg.polling_points.size()) +
                         " stops");
    canvas.save(prefix + "_c_shdg.svg");
  }

  // (d) Fleet of three.
  {
    const mdg::core::MultiTourPlan fleet =
        mdg::core::MultiCollectorPlanner().split(instance, shdg, 3);
    mdg::io::SvgCanvas canvas(network.field());
    canvas.draw_network(network);
    canvas.draw_multi_tour(instance, fleet);
    canvas.add_label({2.0, 4.0},
                     "3 collectors: max " +
                         std::to_string(fleet.max_length) + " m");
    canvas.save(prefix + "_d_fleet.svg");
  }

  std::cout << "Wrote " << prefix << "_a_multihop.svg, " << prefix
            << "_b_direct.svg, " << prefix << "_c_shdg.svg, " << prefix
            << "_d_fleet.svg\n"
            << "SHDG " << shdg.tour_length << " m vs direct-visit "
            << direct_plan.tour_length << " m ("
            << (1.0 - shdg.tour_length / direct_plan.tour_length) * 100.0
            << "% shorter)\n";
  return 0;
}

// mdg_cli — a small driver around the library for file-based workflows:
//
//   example_mdg_cli generate --sensors 200 --side 200 --range 30
//                            --seed 1 --out net.txt
//   example_mdg_cli plan     --net net.txt [--planner spanning|greedy|
//                            relay|direct|election] [--max-load K]
//                            [--refine] [--threads N] [--multi-start K]
//                            [--relay-hops d]   (planner relay only)
//                            [--report report.json [--canonical]]
//                            --out sol.txt
//   example_mdg_cli delta    --net net.txt --sol sol.txt --delta delta.txt
//                            [--out sol2.txt] [--out-net net2.txt]
//                            [--report report.json [--canonical]]
//   example_mdg_cli inspect  --net net.txt [--sol sol.txt]
//   example_mdg_cli render   --net net.txt [--sol sol.txt] --out plan.svg
//   example_mdg_cli simulate --net net.txt --sol sol.txt [--rounds 10]
//                            [--speed 1.0] [--battery 0.5]
//                            [--faults faults.txt] [--seed S]
//                            [--report report.json [--canonical]]
//   example_mdg_cli fleet    --net net.txt --sol sol.txt --k 3
//
// Exit codes (scripts rely on these):
//   0  success
//   1  unexpected internal failure
//   2  usage error (unknown command/flag, bad flag value)
//   3  unreadable or malformed input file (parse/IO)
//   4  input parsed but is semantically invalid (e.g. the solution does
//      not match the network)
//
// Every command that loads files honours --fail-fast=off: instead of
// stopping at the first problem, the loaders report every input problem
// they can find before exiting.
#include <iostream>
#include <memory>

#include "mdg.h"

namespace {

using namespace mdg;

constexpr int kExitInternal = 1;
constexpr int kExitUsage = 2;
constexpr int kExitBadInput = 3;
constexpr int kExitInvalidInput = 4;

/// User-facing failure carrying its exit code; caught in main.
struct CliError {
  int exit_code;
  std::string message;
};

[[nodiscard]] int exit_code_for(const core::Status& status) {
  switch (status.code()) {
    case core::StatusCode::kNotFound:
    case core::StatusCode::kDataLoss:
    case core::StatusCode::kInvalidArgument:
      return kExitBadInput;
    case core::StatusCode::kFailedPrecondition:
      return kExitInvalidInput;
    default:
      return kExitInternal;
  }
}

/// Unwraps a StatusOr or converts the Status into a CliError.
template <typename T>
[[nodiscard]] T must(core::StatusOr<T> result) {
  if (!result.is_ok()) {
    throw CliError{exit_code_for(result.status()),
                   result.status().to_string()};
  }
  return std::move(result).value();
}

/// Validates the solution against its instance at the trust boundary:
/// a mismatch is the *input's* fault, not a library bug, so it becomes
/// exit code 4 instead of an InvariantError escaping to the user.
void check_solution(const core::ShdgpInstance& instance,
                    const core::ShdgpSolution& solution,
                    const std::string& sol_path) {
  try {
    solution.validate(instance);
  } catch (const std::exception& error) {
    throw CliError{kExitInvalidInput,
                   "invalid: " + sol_path + ": " + error.what()};
  }
}

/// Turns metric collection on (and clears stale state) when the user
/// asked for a report.
void arm_report(const std::string& report_path) {
  if (report_path.empty()) {
    return;
  }
  obs::MetricsRegistry::set_enabled(true);
  obs::MetricsRegistry::instance().reset();
}

std::unique_ptr<core::Planner> make_planner(const std::string& name,
                                            long long max_load,
                                            long long multi_start,
                                            long long relay_hops) {
  core::PlannerSpec spec;
  spec.name = name;
  if (max_load > 0) {
    spec.max_pp_load = static_cast<std::size_t>(max_load);
  }
  if (multi_start > 1) {
    spec.multi_starts = static_cast<std::size_t>(multi_start);
  }
  spec.relay_hops = static_cast<std::size_t>(relay_hops);
  auto planner = core::make_planner(spec);
  if (!planner.is_ok()) {
    // An unknown planner name is a usage error here (the factory
    // reports kInvalidArgument, which `must` would map to exit 3).
    throw CliError{kExitUsage, planner.status().message()};
  }
  return std::move(planner).value();
}

int cmd_generate(Flags& flags) {
  const auto sensors = static_cast<std::size_t>(flags.get_int("sensors", 200));
  const double side = flags.get_double("side", 200.0);
  const double range = flags.get_double("range", 30.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const std::string out = flags.get_string("out", "net.txt");
  flags.finish();
  Rng rng(seed);
  const net::SensorNetwork network =
      net::make_uniform_network(sensors, side, range, rng);
  io::save_network(out, network);
  std::cout << "Wrote " << out << " (" << network.size() << " sensors, "
            << network.components().count << " components)\n";
  return 0;
}

int cmd_plan(Flags& flags) {
  const std::string net_path = flags.get_string("net", "net.txt");
  const std::string planner_name = flags.get_string("planner", "spanning");
  const long long max_load = flags.get_int("max-load", 0);
  const bool refine = flags.get_bool("refine", false);
  const long long threads = flags.get_int("threads", 0);
  const long long multi_start = flags.get_int("multi-start", 0);
  const long long relay_hops = flags.get_int("relay-hops", 1);
  const std::string out = flags.get_string("out", "sol.txt");
  const std::string report_path = flags.get_string("report", "");
  const bool canonical = flags.get_bool("canonical", false);
  const io::LoadOptions load{flags.get_bool("fail-fast", true)};
  flags.finish();
  MDG_REQUIRE(threads >= 0, "--threads must be >= 0 (0 = auto)");
  MDG_REQUIRE(relay_hops >= 0, "--relay-hops must be >= 0");
  if (relay_hops != 1 && planner_name != "relay") {
    throw CliError{kExitUsage,
                   "--relay-hops requires --planner relay (got '" +
                       planner_name + "')"};
  }
  set_planning_threads(static_cast<std::size_t>(threads));
  arm_report(report_path);
  const net::SensorNetwork network = must(io::try_load_network(net_path, load));
  const core::ShdgpInstance instance(network);
  const auto planner =
      make_planner(planner_name, max_load, multi_start, relay_hops);
  const Stopwatch watch;
  core::ShdgpSolution solution = planner->plan(instance);
  if (refine) {
    core::refine_polling_positions(instance, solution, {});
  }
  const double wall_ms = watch.elapsed_ms();
  solution.validate(instance);
  io::save_solution(out, solution);
  std::cout << "Planned with " << solution.planner << ": "
            << solution.polling_points.size() << " polling points, tour "
            << solution.tour_length << " m -> " << out << "\n";
  if (!report_path.empty()) {
    obs::RunReport report;
    report.command = "plan";
    report.planner = solution.planner;
    report.git_describe = obs::current_git_describe();
    report.wall_ms = wall_ms;
    report.set_instance(instance);
    report.set_quality(instance, solution);
    report.params = {{"net", net_path},
                     {"planner", planner_name},
                     {"max-load", std::to_string(max_load)},
                     {"refine", refine ? "true" : "false"},
                     {"threads", std::to_string(threads)},
                     {"multi-start", std::to_string(multi_start)},
                     {"relay-hops", std::to_string(relay_hops)}};
    report.capture_metrics(obs::MetricsRegistry::instance());
    if (canonical) {
      report = report.canonicalized();
    }
    report.save(report_path);
    std::cout << "Report -> " << report_path << "\n";
  }
  return 0;
}

int cmd_delta(Flags& flags) {
  const std::string net_path = flags.get_string("net", "net.txt");
  const std::string sol_path = flags.get_string("sol", "sol.txt");
  const std::string delta_path = flags.get_string("delta", "delta.txt");
  const std::string out = flags.get_string("out", "sol.txt");
  const std::string out_net = flags.get_string("out-net", "");
  const std::string report_path = flags.get_string("report", "");
  const bool canonical = flags.get_bool("canonical", false);
  const io::LoadOptions load{flags.get_bool("fail-fast", true)};
  flags.finish();
  arm_report(report_path);
  const net::SensorNetwork network = must(io::try_load_network(net_path, load));
  core::ShdgpSolution solution = must(io::try_load_solution(sol_path, load));
  {
    const core::ShdgpInstance instance(network);
    check_solution(instance, solution, sol_path);
  }
  const core::Delta delta = must(io::try_load_delta(delta_path));
  core::DynamicInstance dyn(network);
  const Stopwatch watch;
  const core::DeltaResult result =
      must(core::apply_delta(dyn, delta, solution));
  const double wall_ms = watch.elapsed_ms();
  io::save_solution(out, solution);
  std::cout << "Applied " << result.ops_applied << " op(s): " << result.damaged
            << " damaged, +" << result.pps_added << "/-" << result.pps_removed
            << " polling points, tour " << solution.tour_length << " m -> "
            << out;
  if (result.full_replan) {
    std::cout << " [full replan: " << result.full_replan_reason << "]";
  }
  std::cout << "\n";
  if (!out_net.empty()) {
    io::save_network(out_net, dyn.network());
    std::cout << "Post-delta network -> " << out_net << "\n";
  }
  if (!report_path.empty()) {
    obs::RunReport report;
    report.command = "delta";
    report.planner = solution.planner;
    report.git_describe = obs::current_git_describe();
    report.wall_ms = wall_ms;
    report.set_instance(dyn.instance());
    report.set_quality(dyn.instance(), solution);
    report.params = {{"net", net_path},
                     {"sol", sol_path},
                     {"delta", delta_path},
                     {"ops", std::to_string(result.ops_applied)},
                     {"full-replan", result.full_replan ? "true" : "false"}};
    report.capture_metrics(obs::MetricsRegistry::instance());
    if (canonical) {
      report = report.canonicalized();
    }
    report.save(report_path);
    std::cout << "Report -> " << report_path << "\n";
  }
  return 0;
}

int cmd_inspect(Flags& flags) {
  const std::string net_path = flags.get_string("net", "net.txt");
  const std::string sol_path = flags.get_string("sol", "");
  const io::LoadOptions load{flags.get_bool("fail-fast", true)};
  flags.finish();
  const net::SensorNetwork network = must(io::try_load_network(net_path, load));
  std::cout << "Network: " << network.size() << " sensors over "
            << network.field().width() << " x " << network.field().height()
            << " m, Rs = " << network.range() << " m\n"
            << "  avg degree " << network.connectivity().average_degree()
            << ", components " << network.components().count
            << ", sink neighbours " << network.sink_neighbors().size()
            << "\n";
  const baselines::MultihopResult hops =
      baselines::MultihopRouting(network).analyze();
  std::cout << "  multihop: avg " << hops.average_hops << " hops, coverage "
            << hops.coverage * 100.0 << "%\n";
  if (!sol_path.empty()) {
    const core::ShdgpSolution solution =
        must(io::try_load_solution(sol_path, load));
    const core::ShdgpInstance instance(network);
    check_solution(instance, solution, sol_path);
    std::cout << "Solution (" << solution.planner << "): "
              << solution.polling_points.size() << " polling points, tour "
              << solution.tour_length << " m, max load "
              << solution.max_pp_load() << ", mean upload distance "
              << solution.mean_upload_distance(instance) << " m"
              << (solution.provably_optimal ? " [provably optimal]" : "")
              << "\n";
    if (solution.relay_hops != 1 || solution.uses_relays()) {
      std::cout << "  relay: budget d=" << solution.relay_hops << ", "
                << solution.relayed_sensor_count() << "/"
                << solution.assignment.size() << " sensors relayed, max "
                << solution.max_upload_hops() << " hop(s)\n";
    }
  }
  return 0;
}

int cmd_render(Flags& flags) {
  const std::string net_path = flags.get_string("net", "net.txt");
  const std::string sol_path = flags.get_string("sol", "");
  const std::string out = flags.get_string("out", "plan.svg");
  const io::LoadOptions load{flags.get_bool("fail-fast", true)};
  flags.finish();
  const net::SensorNetwork network = must(io::try_load_network(net_path, load));
  io::SvgCanvas canvas(network.field());
  canvas.draw_network(network);
  if (!sol_path.empty()) {
    const core::ShdgpInstance instance(network);
    const core::ShdgpSolution solution =
        must(io::try_load_solution(sol_path, load));
    check_solution(instance, solution, sol_path);
    canvas.draw_solution(instance, solution);
  }
  canvas.save(out);
  std::cout << "Wrote " << out << "\n";
  return 0;
}

int cmd_simulate(Flags& flags) {
  const std::string net_path = flags.get_string("net", "net.txt");
  const std::string sol_path = flags.get_string("sol", "sol.txt");
  const auto rounds = static_cast<std::size_t>(flags.get_int("rounds", 10));
  const double speed = flags.get_double("speed", 1.0);
  const double battery = flags.get_double("battery", 0.5);
  const std::string faults_path = flags.get_string("faults", "");
  const long long seed_flag = flags.get_int("seed", -1);
  const std::string report_path = flags.get_string("report", "");
  const bool canonical = flags.get_bool("canonical", false);
  const bool fail_fast = flags.get_bool("fail-fast", true);
  const io::LoadOptions load{fail_fast};
  flags.finish();
  arm_report(report_path);
  const net::SensorNetwork network = must(io::try_load_network(net_path, load));
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution solution =
      must(io::try_load_solution(sol_path, load));
  check_solution(instance, solution, sol_path);

  sim::MobileSimConfig config;
  config.speed_m_per_s = speed;
  config.initial_battery_j = battery;

  fault::FaultPlan fault_plan;
  fault::FaultConfig fault_config;
  const bool chaos = !faults_path.empty();
  if (chaos) {
    fault_config = must(fault::load_fault_config(faults_path, {fail_fast}));
    if (seed_flag >= 0) {
      fault_config.seed = static_cast<std::uint64_t>(seed_flag);
    }
    fault_plan = fault::FaultPlan::generate(instance, solution, fault_config);
    config.fault_plan = &fault_plan;
  }

  sim::MobileCollectionSim sim(instance, solution, config);
  sim::EnergyLedger ledger(network.size(), battery);
  const Stopwatch watch;
  double clock = 0.0;
  std::size_t delivered = 0;
  std::size_t offered = 0;
  std::size_t breakdowns = 0;
  std::size_t unrecovered = 0;
  double recovery_m = 0.0;
  for (std::size_t r = 0; r < rounds; ++r) {
    const sim::MobileRoundReport report = sim.run_round(ledger, clock);
    clock += report.duration_s;
    delivered += report.delivered;
    offered += report.offered;
    if (report.breakdown) {
      ++breakdowns;
      recovery_m += report.recovery_length_m;
      unrecovered += report.unrecovered_sensors;
    }
  }
  std::cout << rounds << " rounds in " << clock / 60.0 << " min, "
            << delivered << " packets delivered, " << ledger.alive_count()
            << "/" << network.size() << " sensors alive\n";
  if (chaos) {
    const double fraction =
        offered == 0 ? 1.0
                     : static_cast<double>(delivered) /
                           static_cast<double>(offered);
    std::cout << "chaos: delivered " << delivered << "/" << offered
              << " offered (fraction " << fraction << "), " << breakdowns
              << " breakdown(s)";
    if (breakdowns > 0) {
      std::cout << ", recovery tour " << recovery_m << " m, " << unrecovered
                << " unrecovered sensor(s)";
    }
    std::cout << "\n";
  }
  if (!report_path.empty()) {
    obs::RunReport report;
    report.command = "simulate";
    report.planner = solution.planner;
    report.seed = chaos ? fault_config.seed : config.loss_seed;
    report.git_describe = obs::current_git_describe();
    report.wall_ms = watch.elapsed_ms();
    report.set_instance(instance);
    report.set_quality(instance, solution);
    report.params = {{"net", net_path},
                     {"sol", sol_path},
                     {"rounds", std::to_string(rounds)},
                     {"speed", std::to_string(speed)},
                     {"battery", std::to_string(battery)}};
    if (chaos) {
      report.params.emplace_back("faults", faults_path);
      report.params.emplace_back("fault-seed",
                                 std::to_string(fault_config.seed));
    }
    report.capture_metrics(obs::MetricsRegistry::instance());
    if (canonical) {
      report = report.canonicalized();
    }
    report.save(report_path);
    std::cout << "Report -> " << report_path << "\n";
  }
  return 0;
}

int cmd_fleet(Flags& flags) {
  const std::string net_path = flags.get_string("net", "net.txt");
  const std::string sol_path = flags.get_string("sol", "sol.txt");
  const auto k = static_cast<std::size_t>(flags.get_int("k", 2));
  const io::LoadOptions load{flags.get_bool("fail-fast", true)};
  flags.finish();
  const net::SensorNetwork network = must(io::try_load_network(net_path, load));
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution solution =
      must(io::try_load_solution(sol_path, load));
  check_solution(instance, solution, sol_path);
  const core::MultiTourPlan plan =
      core::MultiCollectorPlanner().split(instance, solution, k);
  Table table("Fleet of " + std::to_string(k), 2);
  table.set_header({"collector", "stops", "length (m)"});
  for (std::size_t c = 0; c < plan.subtours.size(); ++c) {
    table.add_row({static_cast<long long>(c + 1),
                   static_cast<long long>(plan.subtours[c].stops.size()),
                   plan.subtours[c].length});
  }
  table.print(std::cout);
  std::cout << "max " << plan.max_length << " m, total " << plan.total_length
            << " m\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    mdg::Flags flags(argc, argv);
    if (flags.positional().size() != 1) {
      std::cerr << "usage: " << flags.program_name()
                << " <generate|plan|delta|inspect|render|simulate|fleet> "
                   "[--flags]\n";
      return kExitUsage;
    }
    const std::string& command = flags.positional()[0];
    if (command == "generate") return cmd_generate(flags);
    if (command == "plan") return cmd_plan(flags);
    if (command == "delta") return cmd_delta(flags);
    if (command == "inspect") return cmd_inspect(flags);
    if (command == "render") return cmd_render(flags);
    if (command == "simulate") return cmd_simulate(flags);
    if (command == "fleet") return cmd_fleet(flags);
    std::cerr << "unknown command '" << command << "'\n";
    return kExitUsage;
  } catch (const CliError& error) {
    std::cerr << "error: " << error.message << "\n";
    return error.exit_code;
  } catch (const mdg::PreconditionError& error) {
    std::cerr << "usage error: " << error.what() << "\n";
    return kExitUsage;
  } catch (const mdg::InvariantError& error) {
    std::cerr << "invalid input: " << error.what() << "\n";
    return kExitInvalidInput;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return kExitInternal;
  }
}

// Fleet sizing for a latency deadline: how many M-collectors must patrol
// a field so every sensor's data is gathered within D minutes?
//
//   example_collector_fleet [--sensors 400] [--side 300] [--range 30]
//                           [--deadline-min 20] [--speed 1.0]
//                           [--service-s 2.0] [--seed 11]
#include <iostream>

#include "mdg.h"

int main(int argc, char** argv) {
  mdg::Flags flags(argc, argv);
  const auto sensors = static_cast<std::size_t>(flags.get_int("sensors", 400));
  const double side = flags.get_double("side", 300.0);
  const double range = flags.get_double("range", 30.0);
  const double deadline_min = flags.get_double("deadline-min", 20.0);
  const double speed = flags.get_double("speed", 1.0);
  const double service = flags.get_double("service-s", 2.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 11));
  flags.finish();

  mdg::Rng rng(seed);
  const mdg::net::SensorNetwork network =
      mdg::net::make_uniform_network(sensors, side, range, rng);
  const mdg::core::ShdgpInstance instance(network);
  const mdg::core::ShdgpSolution plan =
      mdg::core::SpanningTourPlanner().plan(instance);
  plan.validate(instance);

  const double single_round_min =
      (plan.tour_length / speed +
       static_cast<double>(plan.polling_points.size()) * service) /
      60.0;
  std::cout << "Single collector: " << plan.polling_points.size()
            << " stops, " << plan.tour_length << " m, round time "
            << single_round_min << " min (deadline " << deadline_min
            << " min)\n\n";

  const mdg::core::MultiCollectorPlanner fleet_planner;
  const std::size_t needed = fleet_planner.collectors_for_deadline(
      instance, plan, deadline_min * 60.0, speed, service);
  if (needed == 0) {
    std::cout << "Deadline unreachable even with one collector per stop — "
                 "raise the deadline, the speed, or the transmission "
                 "range.\n";
    return 1;
  }
  std::cout << "Fleet size needed: " << needed << " collector(s)\n";

  const mdg::core::MultiTourPlan fleet =
      fleet_planner.split(instance, plan, needed);
  mdg::Table table("Per-collector subtours", 2);
  table.set_header(
      {"collector", "stops", "subtour (m)", "round time (min)"});
  for (std::size_t c = 0; c < fleet.subtours.size(); ++c) {
    const auto& st = fleet.subtours[c];
    const double round_min =
        (st.length / speed + static_cast<double>(st.stops.size()) * service) /
        60.0;
    table.add_row({static_cast<long long>(c + 1),
                   static_cast<long long>(st.stops.size()), st.length,
                   round_min});
  }
  table.print(std::cout);
  std::cout << "\nLongest round: "
            << (fleet.max_length / speed) / 60.0
            << " min of driving + uploads; every sensor is served within "
               "the deadline.\n";

  // Show the marginal value of each extra collector.
  mdg::Table sweep("Max round time vs fleet size", 2);
  sweep.set_header({"k", "max subtour (m)", "max round (min)"});
  for (std::size_t k = 1; k <= needed + 2; ++k) {
    const mdg::core::MultiTourPlan p = fleet_planner.split(instance, plan, k);
    double worst = 0.0;
    for (const auto& st : p.subtours) {
      worst = std::max(
          worst, st.length / speed +
                     static_cast<double>(st.stops.size()) * service);
    }
    sweep.add_row({static_cast<long long>(k), p.max_length, worst / 60.0});
  }
  sweep.print(std::cout);
  return 0;
}

// Campus monitoring: the workload the mobile-collector line of papers
// motivates with — sensor clusters around buildings, dead zones between
// them, a data mule driving the rounds.
//
// Multihop relay cannot serve this deployment (the clusters are mutually
// disconnected and most cannot reach the sink), while a mobile collector
// covers 100% of it. This example plans the tour, shows the polling
// points per cluster, and simulates a day of periodic gathering rounds.
//
//   example_campus_monitoring [--sensors 240] [--clusters 6]
//                             [--side 400] [--range 25] [--seed 7]
//                             [--rate 0.002] [--speed 1.0]
#include <iostream>

#include "mdg.h"

int main(int argc, char** argv) {
  mdg::Flags flags(argc, argv);
  const auto sensors = static_cast<std::size_t>(flags.get_int("sensors", 240));
  const auto clusters = static_cast<std::size_t>(flags.get_int("clusters", 6));
  const double side = flags.get_double("side", 400.0);
  const double range = flags.get_double("range", 25.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const double rate = flags.get_double("rate", 0.002);  // pkt/s per sensor
  const double speed = flags.get_double("speed", 1.0);
  flags.finish();

  // Buildings = Gaussian clusters; the sink is the campus operations
  // centre in the middle of the field.
  mdg::Rng rng(seed);
  const auto field = mdg::geom::Aabb::square(side);
  auto positions =
      mdg::net::deploy_gaussian_clusters(sensors, field, clusters, 18.0, rng);
  const mdg::net::SensorNetwork network(std::move(positions), field.center(),
                                        field, range);

  std::cout << "Campus: " << network.size() << " sensors in " << clusters
            << " building clusters, " << network.components().count
            << " connected components\n";

  // Why multihop fails here.
  const mdg::baselines::MultihopResult multihop =
      mdg::baselines::MultihopRouting(network).analyze();
  std::cout << "Static multihop relay would reach only "
            << multihop.coverage * 100.0 << "% of sensors.\n\n";

  // Plan the collector tour.
  const mdg::core::ShdgpInstance instance(network);
  const mdg::core::ShdgpSolution plan =
      mdg::core::SpanningTourPlanner().plan(instance);
  plan.validate(instance);
  std::cout << "Mobile collector plan: " << plan.polling_points.size()
            << " polling stops, " << plan.tour_length << " m tour, covers "
            << plan.assignment.size() << "/" << network.size()
            << " sensors in a single hop each.\n";

  // Stops per component (roughly: per building).
  std::vector<std::size_t> stops_per_component(network.components().count, 0);
  for (std::size_t slot = 0; slot < plan.polling_points.size(); ++slot) {
    // A polling point is a sensor site under the default policy; find the
    // component of any sensor assigned to it.
    for (std::size_t s = 0; s < plan.assignment.size(); ++s) {
      if (plan.assignment[s] == slot) {
        ++stops_per_component[network.components().label[s]];
        break;
      }
    }
  }
  mdg::Table table("Polling stops by cluster", 0);
  table.set_header({"component", "sensors", "polling stops"});
  for (std::size_t c = 0; c < network.components().count; ++c) {
    table.add_row({static_cast<long long>(c),
                   static_cast<long long>(network.components().members(c).size()),
                   static_cast<long long>(stops_per_component[c])});
  }
  table.print(std::cout);

  // Simulate a day of rounds with continuous data generation.
  mdg::sim::MobileSimConfig sim_config;
  sim_config.speed_m_per_s = speed;
  sim_config.data_rate_pkt_per_s = rate;
  sim_config.buffer_capacity = 256;
  sim_config.initial_battery_j = 50.0;  // a day is not battery-limited
  mdg::sim::MobileCollectionSim sim(instance, plan, sim_config);
  mdg::sim::EnergyLedger ledger(network.size(), sim_config.initial_battery_j);

  double clock = 0.0;
  std::size_t delivered = 0;
  std::size_t dropped = 0;
  std::size_t rounds = 0;
  std::size_t worst_buffer = 0;
  while (clock < 24.0 * 3600.0) {
    const mdg::sim::MobileRoundReport r = sim.run_round(ledger, clock);
    clock += r.duration_s;
    delivered += r.delivered;
    dropped += r.dropped;
    worst_buffer = std::max(worst_buffer, r.max_buffer);
    ++rounds;
  }
  std::cout << "\n24 h of operation: " << rounds << " gathering rounds ("
            << 24.0 * 60.0 / static_cast<double>(rounds)
            << " min/round), " << delivered << " packets delivered, "
            << dropped << " dropped, worst buffer occupancy " << worst_buffer
            << " packets.\n";
  std::cout << "Sustainable per-sensor rate at this tour: "
            << sim.sustainable_rate() << " pkt/s (offered: " << rate
            << ").\n";
  return 0;
}

// Lifetime study: how long the same network survives under (a) static
// multihop relay to the sink versus (b) SHDG mobile collection — the
// paper's energy argument, end to end on one concrete network.
//
//   example_lifetime_study [--sensors 200] [--side 200] [--range 30]
//                          [--battery 0.1] [--seed 5]
#include <iostream>

#include "mdg.h"

int main(int argc, char** argv) {
  mdg::Flags flags(argc, argv);
  const auto sensors = static_cast<std::size_t>(flags.get_int("sensors", 200));
  const double side = flags.get_double("side", 200.0);
  const double range = flags.get_double("range", 30.0);
  const double battery = flags.get_double("battery", 0.1);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 5));
  flags.finish();

  mdg::Rng rng(seed);
  const mdg::net::SensorNetwork network =
      mdg::net::make_uniform_network(sensors, side, range, rng);

  // --- Static multihop relay ---
  const mdg::baselines::MultihopResult relay =
      mdg::baselines::MultihopRouting(network).analyze();
  const mdg::Summary relay_energy = mdg::summarize(relay.round_energy);
  std::cout << "Multihop relay: " << relay.average_hops
            << " hops/packet on average, per-round energy mean "
            << relay_energy.mean * 1e3 << " mJ, p95 "
            << relay_energy.p95 * 1e3 << " mJ, max "
            << relay_energy.max * 1e3 << " mJ (Jain fairness "
            << mdg::jain_fairness(relay.round_energy) << ")\n";

  mdg::sim::MultihopSimConfig hop_config;
  hop_config.initial_battery_j = battery;
  mdg::sim::MultihopSim hop_sim(network, hop_config);
  const mdg::sim::MultihopLifetimeReport hop_life = hop_sim.run_lifetime();
  std::cout << "  lifetime: first death after " << hop_life.rounds_first_death
            << " rounds, 10% dead after " << hop_life.rounds_10pct_death
            << " rounds, overall delivery ratio " << hop_life.delivery_ratio
            << "\n\n";

  // --- SHDG mobile collection ---
  const mdg::core::ShdgpInstance instance(network);
  const mdg::core::ShdgpSolution plan =
      mdg::core::SpanningTourPlanner().plan(instance);
  mdg::sim::MobileCollectionSim mobile_sim(instance, plan);
  mdg::sim::EnergyLedger probe(network.size(), battery);
  const mdg::sim::MobileRoundReport round = mobile_sim.run_round(probe);
  const mdg::Summary mobile_energy = mdg::summarize(round.round_energy);
  std::cout << "SHDG mobile collection: " << plan.polling_points.size()
            << " polling points, tour " << plan.tour_length
            << " m; per-round energy mean " << mobile_energy.mean * 1e3
            << " mJ, max " << mobile_energy.max * 1e3
            << " mJ (Jain fairness " << mdg::jain_fairness(round.round_energy)
            << ")\n";

  mdg::sim::MobileSimConfig mobile_config;
  mobile_config.initial_battery_j = battery;
  mdg::sim::MobileCollectionSim life_sim(instance, plan, mobile_config);
  const mdg::sim::MobileLifetimeReport mobile_life = life_sim.run_lifetime();
  std::cout << "  lifetime: first death after "
            << mobile_life.rounds_first_death << " rounds, 10% dead after "
            << mobile_life.rounds_10pct_death << " rounds\n\n";

  const double gain = static_cast<double>(mobile_life.rounds_first_death) /
                      static_cast<double>(hop_life.rounds_first_death);
  std::cout << "=> Mobile collection extends time-to-first-death by "
            << gain << "x on this network (at the cost of "
            << plan.tour_length << " m of driving per round).\n";
  return 0;
}

// Obstacle-aware data mule: plan polling points from radio coverage,
// then drive the tour around buildings with visibility routing. Exports
// an SVG of the deployment, the plan and the drivable path.
//
//   example_obstacle_field [--sensors 150] [--side 200] [--range 30]
//                          [--seed 21] [--svg obstacle_tour.svg]
#include <iostream>

#include "mdg.h"

int main(int argc, char** argv) {
  mdg::Flags flags(argc, argv);
  const auto sensors = static_cast<std::size_t>(flags.get_int("sensors", 150));
  const double side = flags.get_double("side", 200.0);
  const double range = flags.get_double("range", 30.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 21));
  const std::string svg_path = flags.get_string("svg", "obstacle_tour.svg");
  flags.finish();

  // A small campus: three buildings the collector must drive around.
  const mdg::route::ObstacleMap obstacles({
      mdg::geom::Aabb{{0.25 * side, 0.20 * side}, {0.45 * side, 0.40 * side}},
      mdg::geom::Aabb{{0.60 * side, 0.15 * side}, {0.75 * side, 0.50 * side}},
      mdg::geom::Aabb{{0.30 * side, 0.60 * side}, {0.70 * side, 0.75 * side}},
  });

  // Deploy around the buildings (no sensor inside a footprint).
  mdg::Rng rng(seed);
  const auto field = mdg::geom::Aabb::square(side);
  auto positions = mdg::route::remove_covered_positions(
      mdg::net::deploy_uniform(sensors, field, rng), obstacles);
  const mdg::net::SensorNetwork network(std::move(positions), field.center(),
                                        field, range);
  std::cout << "Deployed " << network.size() << " sensors around "
            << obstacles.size() << " buildings\n";

  // Radio-coverage planning is obstacle-agnostic...
  const mdg::core::ShdgpInstance instance(network);
  const mdg::core::ShdgpSolution plan =
      mdg::core::SpanningTourPlanner().plan(instance);
  plan.validate(instance);
  std::cout << "Planned " << plan.polling_points.size()
            << " polling points; Euclidean tour " << plan.tour_length
            << " m\n";

  // ...the driving is not.
  const mdg::route::ObstacleRouter router(obstacles, 1.0);
  const auto driven = mdg::route::plan_obstacle_tour(instance, plan, router);
  if (!driven) {
    std::cout << "Some polling point is unreachable around the obstacles.\n";
    return 1;
  }
  std::cout << "Drivable tour: " << driven->length << " m ("
            << (driven->length / driven->euclidean_length - 1.0) * 100.0
            << "% detour over straight legs, " << driven->polyline.size()
            << " waypoints)\n";

  // Render the scene.
  mdg::io::SvgOptions svg_options;
  svg_options.draw_affiliations = true;
  mdg::io::SvgCanvas canvas(field, svg_options);
  canvas.draw_obstacles(obstacles);
  canvas.draw_network(network);
  for (const mdg::geom::Point& pp : plan.polling_points) {
    canvas.add_circle(pp, 1.2, "#1f77b4");
  }
  canvas.draw_path(driven->polyline);
  canvas.save(svg_path);
  std::cout << "Wrote " << svg_path << "\n";
  return 0;
}

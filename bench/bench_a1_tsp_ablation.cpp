// A1 — TSP effort ablation (google-benchmark).
//
// How much each tour-improvement stage buys on the collector tour, and
// what it costs: NN only vs NN+2-opt vs the full pipeline vs the 1-tree
// lower bound. Runtime is reported by google-benchmark; quality is
// attached via counters.
#include <benchmark/benchmark.h>

#include "core/greedy_cover_planner.h"
#include "net/sensor_network.h"
#include "tsp/construct.h"
#include "tsp/improve.h"
#include "tsp/lower_bound.h"
#include "tsp/solve.h"
#include "util/rng.h"

namespace {

using namespace mdg;

std::vector<geom::Point> tour_stops(std::size_t n_sensors,
                                    std::uint64_t seed) {
  // Realistic stop sets: the polling points a planner actually selects.
  Rng rng(seed);
  const net::SensorNetwork network =
      net::make_uniform_network(n_sensors, 200.0, 30.0, rng);
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution solution =
      core::GreedyCoverPlanner().plan(instance);
  std::vector<geom::Point> pts{instance.sink()};
  pts.insert(pts.end(), solution.polling_points.begin(),
             solution.polling_points.end());
  return pts;
}

void BM_TspEffort(benchmark::State& state, tsp::TspEffort effort) {
  const auto pts =
      tour_stops(static_cast<std::size_t>(state.range(0)), 2008);
  // Quality metrics, measured once outside the timing loop.
  const double length = tsp::solve_tsp(pts, effort).length;
  const double lower_bound = tsp::one_tree_lower_bound(pts);
  state.counters["stops"] = static_cast<double>(pts.size());
  state.counters["tour_m"] = length;
  state.counters["lb_m"] = lower_bound;
  state.counters["gap_pct"] = (length / lower_bound - 1.0) * 100.0;

  for (auto _ : state) {
    tsp::TspResult result = tsp::solve_tsp(pts, effort);
    benchmark::DoNotOptimize(result.length);
  }
}

}  // namespace

namespace {

// Direct-visit scale: the neighbour-list 2-opt against full 2-opt on
// tours over ALL sensor positions (not just polling points).
void BM_DirectVisitTwoOpt(benchmark::State& state, bool neighbor_list) {
  Rng rng(2008);
  const net::SensorNetwork network = net::make_uniform_network(
      static_cast<std::size_t>(state.range(0)), 200.0, 30.0, rng);
  std::vector<geom::Point> pts{network.sink()};
  pts.insert(pts.end(), network.positions().begin(),
             network.positions().end());
  {
    tsp::Tour probe = tsp::nearest_neighbor(pts);
    if (neighbor_list) {
      tsp::two_opt_neighbors(probe, pts, 10);
    } else {
      tsp::two_opt(probe, pts);
    }
    state.counters["tour_m"] = probe.length(pts);
  }
  for (auto _ : state) {
    tsp::Tour tour = tsp::nearest_neighbor(pts);
    if (neighbor_list) {
      tsp::two_opt_neighbors(tour, pts, 10);
    } else {
      tsp::two_opt(tour, pts);
    }
    benchmark::DoNotOptimize(tour);
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_TspEffort, nn, tsp::TspEffort::kConstructionOnly)
    ->Arg(100)->Arg(300)->Arg(500)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_TspEffort, nn_2opt, tsp::TspEffort::kTwoOpt)
    ->Arg(100)->Arg(300)->Arg(500)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_TspEffort, full, tsp::TspEffort::kFull)
    ->Arg(100)->Arg(300)->Arg(500)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_DirectVisitTwoOpt, full_2opt, false)
    ->Arg(200)->Arg(500)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_DirectVisitTwoOpt, neighbor_2opt, true)
    ->Arg(200)->Arg(500)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();

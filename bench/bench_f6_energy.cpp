// F6 — per-round energy consumption (reconstruction).
//
// One gathering round, N in 100..400: average and maximum per-sensor
// energy plus Jain fairness for (a) SHDG mobile collection, (b) static
// multihop relay, (c) CME track collection (relay to the track, no hop
// bound). Expected shape: SHDG energy is flat in N and nearly perfectly
// uniform; multihop's hotspot maximum is an order of magnitude above its
// own mean and grows with N.
#include <algorithm>
#include <string>

#include "baselines/cme_tracks.h"
#include "baselines/multihop_routing.h"
#include "bench_common.h"
#include "core/spanning_tour_planner.h"
#include "sim/mobile_sim.h"

namespace {

// Energy a CME round costs each sensor: every sensor sends its packet
// `hops` times along the relay chain; relays additionally receive. We
// charge tx per forwarding step at range distance (conservative) and rx
// per relayed packet, mirroring the multihop accounting.
std::vector<double> cme_round_energy(const mdg::net::SensorNetwork& network,
                                     const mdg::baselines::CmeResult& cme) {
  std::vector<double> energy(network.size(), 0.0);
  const auto& radio = network.radio();
  for (std::size_t s = 0; s < network.size(); ++s) {
    const std::size_t hops = cme.upload_hops[s];
    if (hops == static_cast<std::size_t>(-1)) {
      continue;
    }
    // One tx for the source; relay cost is aggregated onto the gateway
    // population below (exact per-node relay paths are what the multihop
    // baseline reports).
    energy[s] += radio.tx_packet(network.range());
  }
  // Aggregate relay load: each packet with h hops consumes (h-1) relay
  // slots; charge them to the gateway population proportionally.
  double relay_slots = 0.0;
  std::size_t gateways = 0;
  for (std::size_t s = 0; s < network.size(); ++s) {
    const std::size_t hops = cme.upload_hops[s];
    if (hops == static_cast<std::size_t>(-1)) {
      continue;
    }
    relay_slots += static_cast<double>(hops - 1);
    if (hops == 1) {
      ++gateways;
    }
  }
  if (gateways > 0) {
    const double per_gateway =
        relay_slots * radio.relay_packet(network.range()) /
        static_cast<double>(gateways);
    for (std::size_t s = 0; s < network.size(); ++s) {
      if (cme.upload_hops[s] == 1) {
        energy[s] += per_gateway;
      }
    }
  }
  return energy;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mdg;
  Flags flags(argc, argv);
  bench::BenchConfig config = bench::parse_common(flags);
  const double side = flags.get_double("side", 200.0);
  const double rs = flags.get_double("range", 30.0);
  flags.finish();

  Table table("F6: per-round per-sensor energy (mJ) — L=" +
                  std::to_string(static_cast<int>(side)) + " m, Rs=" +
                  std::to_string(static_cast<int>(rs)) + " m",
              4);
  table.set_header({"N", "SHDG avg", "SHDG max", "SHDG fairness",
                    "multihop avg", "multihop max", "multihop fairness",
                    "CME avg", "CME max"});

  for (std::size_t n : {100u, 200u, 300u, 400u}) {
    enum Metric {
      kShdgAvg,
      kShdgMax,
      kShdgFair,
      kHopAvg,
      kHopMax,
      kHopFair,
      kCmeAvg,
      kCmeMax,
      kCount,
    };
    const auto stats = bench::monte_carlo_multi(
        config, kCount, [&](Rng& rng, std::size_t, std::vector<double>& row) {
          const net::SensorNetwork network =
              net::make_uniform_network(n, side, rs, rng);

          // SHDG round.
          const core::ShdgpInstance instance(network);
          const core::ShdgpSolution plan =
              core::SpanningTourPlanner().plan(instance);
          sim::MobileCollectionSim mobile(instance, plan);
          sim::EnergyLedger ledger(n, 0.5);
          const sim::MobileRoundReport round = mobile.run_round(ledger);
          row[kShdgAvg] = mean_of(round.round_energy) * 1e3;
          row[kShdgMax] = *std::max_element(round.round_energy.begin(),
                                            round.round_energy.end()) *
                          1e3;
          row[kShdgFair] = jain_fairness(round.round_energy);

          // Multihop round.
          const baselines::MultihopResult multihop =
              baselines::MultihopRouting(network).analyze();
          row[kHopAvg] = mean_of(multihop.round_energy) * 1e3;
          row[kHopMax] = *std::max_element(multihop.round_energy.begin(),
                                           multihop.round_energy.end()) *
                         1e3;
          row[kHopFair] = jain_fairness(multihop.round_energy);

          // CME round.
          const baselines::CmeResult cme =
              baselines::CmeScheme().run(network);
          const auto cme_energy = cme_round_energy(network, cme);
          row[kCmeAvg] = mean_of(cme_energy) * 1e3;
          row[kCmeMax] =
              *std::max_element(cme_energy.begin(), cme_energy.end()) * 1e3;
        });
    table.add_row({static_cast<long long>(n), stats[kShdgAvg].mean(),
                   stats[kShdgMax].mean(), stats[kShdgFair].mean(),
                   stats[kHopAvg].mean(), stats[kHopMax].mean(),
                   stats[kHopFair].mean(), stats[kCmeAvg].mean(),
                   stats[kCmeMax].mean()});
  }
  bench::emit(table, config);
  return 0;
}

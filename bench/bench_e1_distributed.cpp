// E1 — distributed vs centralized polling-point selection
// (extension experiment; see DESIGN.md §4).
//
// The election protocol trades tour quality for locality: it needs no
// global topology knowledge and only O(1) broadcasts per sensor beyond
// the BFS flood. This bench reproduces the standard comparison: tour
// length and polling-point count vs the centralized planners, plus the
// protocol's measured round and message complexity.
#include <string>

#include "bench_common.h"
#include "core/greedy_cover_planner.h"
#include "core/spanning_tour_planner.h"
#include "dist/election_planner.h"

int main(int argc, char** argv) {
  using namespace mdg;
  Flags flags(argc, argv);
  bench::BenchConfig config = bench::parse_common(flags);
  const double side = flags.get_double("side", 200.0);
  const double rs = flags.get_double("range", 30.0);
  flags.finish();

  Table table("E1: distributed election vs centralized planners — L=" +
                  std::to_string(static_cast<int>(side)) + " m, Rs=" +
                  std::to_string(static_cast<int>(rs)) + " m, " +
                  std::to_string(config.trials) + " trials/point",
              1);
  table.set_header({"N", "election tour (m)", "spanning tour (m)",
                    "overhead (%)", "election #PPs", "spanning #PPs",
                    "protocol rounds", "msgs/node"});

  for (std::size_t n : {100u, 200u, 300u, 400u}) {
    enum Metric {
      kElectLen,
      kSpanLen,
      kElectPps,
      kSpanPps,
      kRounds,
      kMsgs,
      kCount,
    };
    const auto stats = bench::monte_carlo_multi(
        config, kCount, [&](Rng& rng, std::size_t, std::vector<double>& row) {
          const net::SensorNetwork network =
              net::make_uniform_network(n, side, rs, rng);
          const core::ShdgpInstance instance(network);

          const dist::ElectionPlanner election;
          const core::ShdgpSolution elected = election.plan(instance);
          row[kElectLen] = elected.tour_length;
          row[kElectPps] =
              static_cast<double>(elected.polling_points.size());
          row[kRounds] = static_cast<double>(election.last_stats().rounds);
          row[kMsgs] = election.last_stats().transmissions_per_node;

          const core::ShdgpSolution spanning =
              core::SpanningTourPlanner().plan(instance);
          row[kSpanLen] = spanning.tour_length;
          row[kSpanPps] =
              static_cast<double>(spanning.polling_points.size());
        });
    table.add_row(
        {static_cast<long long>(n), stats[kElectLen].mean(),
         stats[kSpanLen].mean(),
         (stats[kElectLen].mean() / stats[kSpanLen].mean() - 1.0) * 100.0,
         stats[kElectPps].mean(), stats[kSpanPps].mean(),
         stats[kRounds].mean(), stats[kMsgs].mean()});
  }
  bench::emit(table, config);
  return 0;
}

// F2 — tour length vs number of sensors N (reconstruction).
//
// L = 200 m, Rs = 30 m, N in 100..500. Series: SHDG planners, the
// direct-visit tour, the grid-stop variant (candidates on a 20 m grid),
// and the CME fixed-track path. Expected shape: SHDG flattens out as N
// grows (denser networks don't need more polling points), direct-visit
// keeps climbing, CME is constant.
//
// The planner series run through core::plan_many: all trial topologies
// for one data point are generated up front, then each planner fans the
// batch across the planning pool. Values are identical to the serial
// sweep — same per-trial seeds, same plans — only the wall time changes.
#include <string>
#include <vector>

#include "baselines/cme_tracks.h"
#include "baselines/direct_visit.h"
#include "bench_common.h"
#include "core/greedy_cover_planner.h"
#include "core/plan_many.h"
#include "core/spanning_tour_planner.h"
#include "core/tree_dominator_planner.h"

int main(int argc, char** argv) {
  using namespace mdg;
  Flags flags(argc, argv);
  bench::BenchConfig config = bench::parse_common(flags);
  const double side = flags.get_double("side", 200.0);
  const double rs = flags.get_double("range", 30.0);
  const double grid_spacing = flags.get_double("grid-spacing", 20.0);
  flags.finish();

  Table table("F2: tour length (m) vs N — L=" +
                  std::to_string(static_cast<int>(side)) + " m, Rs=" +
                  std::to_string(static_cast<int>(rs)) + " m, " +
                  std::to_string(config.trials) + " trials/point",
              1);
  table.set_header({"N", "spanning-tour", "greedy-cover", "tree-dominator",
                    "grid-stop", "direct-visit", "CME tracks"});

  const auto mean_length = [](const std::vector<core::ShdgpSolution>& plans) {
    RunningStats stats;
    for (const core::ShdgpSolution& plan : plans) {
      stats.add(plan.tour_length);
    }
    return stats.mean();
  };

  for (std::size_t n : {100u, 200u, 300u, 400u, 500u}) {
    // Same topology per (seed, trial) as the serial sweep. The network
    // vector is fully populated before any instance binds to it —
    // ShdgpInstance holds a pointer, so the vector must not reallocate.
    const Rng base(config.seed);
    std::vector<net::SensorNetwork> networks;
    networks.reserve(config.trials);
    for (std::size_t t = 0; t < config.trials; ++t) {
      Rng trial_rng = base.fork(t);
      networks.push_back(net::make_uniform_network(n, side, rs, trial_rng));
    }
    std::vector<core::ShdgpInstance> sites;
    std::vector<core::ShdgpInstance> grids;
    sites.reserve(config.trials);
    grids.reserve(config.trials);
    cover::CandidateOptions grid_options;
    grid_options.policy = cover::CandidatePolicy::kGrid;
    grid_options.grid_spacing = grid_spacing;
    for (const net::SensorNetwork& network : networks) {
      sites.emplace_back(network);
      grids.emplace_back(network, grid_options);
    }

    const double span =
        mean_length(core::plan_many(core::SpanningTourPlanner(), sites));
    const double greedy =
        mean_length(core::plan_many(core::GreedyCoverPlanner(), sites));
    const double tree =
        mean_length(core::plan_many(core::TreeDominatorPlanner(), sites));
    const double grid =
        mean_length(core::plan_many(core::GreedyCoverPlanner(), grids));
    const double direct =
        mean_length(core::plan_many(baselines::DirectVisitPlanner(), sites));

    RunningStats cme;
    std::vector<double> cme_lengths(config.trials, 0.0);
    parallel_for(config.trials, [&](std::size_t t) {
      cme_lengths[t] = baselines::CmeScheme().run(networks[t]).tour_length;
    });
    for (double len : cme_lengths) {
      cme.add(len);
    }

    table.add_row({static_cast<long long>(n), span, greedy, tree, grid,
                   direct, cme.mean()});
  }
  bench::emit(table, config);
  return 0;
}

// F2 — tour length vs number of sensors N (reconstruction).
//
// L = 200 m, Rs = 30 m, N in 100..500. Series: SHDG planners, the
// direct-visit tour, the grid-stop variant (candidates on a 20 m grid),
// and the CME fixed-track path. Expected shape: SHDG flattens out as N
// grows (denser networks don't need more polling points), direct-visit
// keeps climbing, CME is constant.
#include <string>

#include "baselines/cme_tracks.h"
#include "baselines/direct_visit.h"
#include "bench_common.h"
#include "core/greedy_cover_planner.h"
#include "core/spanning_tour_planner.h"
#include "core/tree_dominator_planner.h"

int main(int argc, char** argv) {
  using namespace mdg;
  Flags flags(argc, argv);
  bench::BenchConfig config = bench::parse_common(flags);
  const double side = flags.get_double("side", 200.0);
  const double rs = flags.get_double("range", 30.0);
  const double grid_spacing = flags.get_double("grid-spacing", 20.0);
  flags.finish();

  Table table("F2: tour length (m) vs N — L=" +
                  std::to_string(static_cast<int>(side)) + " m, Rs=" +
                  std::to_string(static_cast<int>(rs)) + " m, " +
                  std::to_string(config.trials) + " trials/point",
              1);
  table.set_header({"N", "spanning-tour", "greedy-cover", "tree-dominator",
                    "grid-stop", "direct-visit", "CME tracks"});

  for (std::size_t n : {100u, 200u, 300u, 400u, 500u}) {
    enum Metric { kSpan, kGreedy, kTree, kGrid, kDirect, kCme, kCount };
    const auto stats = bench::monte_carlo_multi(
        config, kCount, [&](Rng& rng, std::size_t, std::vector<double>& row) {
          const net::SensorNetwork network =
              net::make_uniform_network(n, side, rs, rng);
          const core::ShdgpInstance sites(network);
          row[kSpan] = core::SpanningTourPlanner().plan(sites).tour_length;
          row[kGreedy] = core::GreedyCoverPlanner().plan(sites).tour_length;
          row[kTree] =
              core::TreeDominatorPlanner().plan(sites).tour_length;
          row[kDirect] =
              baselines::DirectVisitPlanner().plan(sites).tour_length;

          cover::CandidateOptions grid_options;
          grid_options.policy = cover::CandidatePolicy::kGrid;
          grid_options.grid_spacing = grid_spacing;
          const core::ShdgpInstance grid(network, grid_options);
          row[kGrid] = core::GreedyCoverPlanner().plan(grid).tour_length;

          row[kCme] = baselines::CmeScheme().run(network).tour_length;
        });
    table.add_row({static_cast<long long>(n), stats[kSpan].mean(),
                   stats[kGreedy].mean(), stats[kTree].mean(),
                   stats[kGrid].mean(), stats[kDirect].mean(),
                   stats[kCme].mean()});
  }
  bench::emit(table, config);
  return 0;
}

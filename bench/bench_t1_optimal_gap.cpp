// T1 — heuristics vs the optimal solution on small networks
// (reconstruction of the paper's CPLEX comparison; the in-tree
// branch-and-bound + Held–Karp ExactPlanner substitutes CPLEX).
//
// Small networks (N = 15..30, 70 m x 70 m, Rs = 20 m): optimal tour
// length, heuristic gaps, polling-point counts and planner runtimes.
#include <string>

#include "baselines/direct_visit.h"
#include "bench_common.h"
#include "core/exact_planner.h"
#include "core/greedy_cover_planner.h"
#include "core/spanning_tour_planner.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  using namespace mdg;
  Flags flags(argc, argv);
  bench::BenchConfig config = bench::parse_common(flags);
  const double side = flags.get_double("side", 70.0);
  const double rs = flags.get_double("range", 20.0);
  flags.finish();

  Table table("T1: heuristics vs optimal — L=" +
                  std::to_string(static_cast<int>(side)) + " m, Rs=" +
                  std::to_string(static_cast<int>(rs)) + " m, " +
                  std::to_string(config.trials) + " trials/row",
              2);
  table.set_header({"N", "optimal tour (m)", "optimal #PPs",
                    "spanning gap (%)", "greedy gap (%)",
                    "direct-visit gap (%)", "opt solved (%)",
                    "exact time (ms)", "heuristic time (ms)"});

  for (std::size_t n : {15u, 20u, 25u, 30u}) {
    enum Metric {
      kOpt,
      kOptPps,
      kSpanGap,
      kGreedyGap,
      kDirectGap,
      kSolved,
      kExactMs,
      kHeurMs,
      kCount,
    };
    const auto stats = bench::monte_carlo_multi(
        config, kCount, [&](Rng& rng, std::size_t, std::vector<double>& row) {
          const net::SensorNetwork network =
              net::make_uniform_network(n, side, rs, rng);
          const core::ShdgpInstance instance(network);

          core::ShdgpSolution exact;
          row[kExactMs] = Stopwatch::time_ms([&] {
            exact = core::ExactPlanner().plan(instance);
          });
          core::ShdgpSolution spanning;
          core::ShdgpSolution greedy;
          row[kHeurMs] = Stopwatch::time_ms([&] {
            spanning = core::SpanningTourPlanner().plan(instance);
            greedy = core::GreedyCoverPlanner().plan(instance);
          });
          const core::ShdgpSolution direct =
              baselines::DirectVisitPlanner().plan(instance);

          row[kOpt] = exact.tour_length;
          row[kOptPps] = static_cast<double>(exact.polling_points.size());
          const double base =
              exact.tour_length > 0.0 ? exact.tour_length : 1.0;
          row[kSpanGap] = (spanning.tour_length / base - 1.0) * 100.0;
          row[kGreedyGap] = (greedy.tour_length / base - 1.0) * 100.0;
          row[kDirectGap] = (direct.tour_length / base - 1.0) * 100.0;
          row[kSolved] = exact.provably_optimal ? 100.0 : 0.0;
        });
    table.add_row({static_cast<long long>(n), stats[kOpt].mean(),
                   stats[kOptPps].mean(), stats[kSpanGap].mean(),
                   stats[kGreedyGap].mean(), stats[kDirectGap].mean(),
                   stats[kSolved].mean(), stats[kExactMs].mean(),
                   stats[kHeurMs].mean()});
  }
  bench::emit(table, config);
  return 0;
}

// B1 — bounded-relay-hop frontier: tour length vs. sensor energy.
//
// Sweeps the relay budget d in {0..3} over density (N) and range (Rs)
// on uniform topologies and reports, per (N, Rs, d): mean tour length,
// mean polling-point count, the max per-sensor energy of one lossless
// gathering round (sim::relay_round_energy) and the relayed-sensor
// fraction. The expected frontier: tour length strictly decreases in d
// (a d-hop dominating set only gets smaller) while the hotspot energy
// is non-decreasing (relays pay rx+tx per forwarded packet). d = 0 is
// the visit-every-sensor extreme, d = 1 the paper's single-hop SHDGP.
//
// --check asserts the strict length decrease on the densest config —
// the CI perf-smoke gate. Emits BENCH_relay.json (run-report schema).
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/instance.h"
#include "core/relay_hop_planner.h"
#include "obs/report.h"
#include "sim/energy.h"
#include "util/stopwatch.h"

namespace {

using namespace mdg;

constexpr std::size_t kMaxDepth = 3;

struct SweepCell {
  std::size_t sensors = 0;
  double range = 0.0;
  std::size_t depth = 0;
  double tour_len = 0.0;      ///< mean over trials
  double stops = 0.0;         ///< mean polling-point count
  double max_energy_mj = 0.0; ///< mean of per-trial max round energy
  double relayed_frac = 0.0;  ///< mean fraction of relayed sensors
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  bench::BenchConfig config = bench::parse_common(flags);
  const double side = flags.get_double("side", 200.0);
  const bool check = flags.get_bool("check", false);
  const std::string out_path = flags.get_string("out", "BENCH_relay.json");
  flags.finish();

  const std::size_t densities[] = {100, 200};
  const double ranges[] = {20.0, 30.0};

  const Stopwatch total_watch;
  std::vector<SweepCell> cells;
  for (std::size_t n : densities) {
    for (double rs : ranges) {
      for (std::size_t d = 0; d <= kMaxDepth; ++d) {
        enum Metric { kLen, kStops, kMaxEnergy, kRelayed, kCount };
        const auto stats = bench::monte_carlo_multi(
            config, kCount,
            [&](Rng& rng, std::size_t, std::vector<double>& row) {
              const net::SensorNetwork network =
                  net::make_uniform_network(n, side, rs, rng);
              const core::ShdgpInstance instance(network);
              core::RelayHopPlannerOptions options;
              options.relay_hops = d;
              const core::ShdgpSolution solution =
                  core::RelayHopPlanner(options).plan(instance);
              row[kLen] = solution.tour_length;
              row[kStops] =
                  static_cast<double>(solution.polling_points.size());
              const std::vector<double> energy =
                  sim::relay_round_energy(instance, solution);
              row[kMaxEnergy] =
                  energy.empty()
                      ? 0.0
                      : *std::max_element(energy.begin(), energy.end()) * 1e3;
              row[kRelayed] =
                  n == 0 ? 0.0
                         : static_cast<double>(
                               solution.relayed_sensor_count()) /
                               static_cast<double>(n);
            });
        SweepCell cell;
        cell.sensors = n;
        cell.range = rs;
        cell.depth = d;
        cell.tour_len = stats[kLen].mean();
        cell.stops = stats[kStops].mean();
        cell.max_energy_mj = stats[kMaxEnergy].mean();
        cell.relayed_frac = stats[kRelayed].mean();
        cells.push_back(cell);
      }
    }
  }

  Table table("B1 relay-hop frontier: L=" +
                  std::to_string(static_cast<int>(side)) + " m, " +
                  std::to_string(config.trials) + " trials",
              3);
  table.set_header({"N", "Rs", "d", "tour (m)", "stops", "max E (mJ)",
                    "relayed"});
  for (const SweepCell& c : cells) {
    table.add_row({static_cast<double>(c.sensors), c.range,
                   static_cast<double>(c.depth), c.tour_len, c.stops,
                   c.max_energy_mj, c.relayed_frac});
  }
  bench::emit(table, config);

  obs::RunReport report;
  report.command = "bench";
  report.planner = "b1_relay";
  report.seed = config.seed;
  report.git_describe = obs::current_git_describe();
  report.wall_ms = total_watch.elapsed_ms();
  report.params = {{"side", std::to_string(side)},
                   {"trials", std::to_string(config.trials)},
                   {"threads", std::to_string(planning_threads())}};
  for (const SweepCell& c : cells) {
    const std::string suffix = ".d" + std::to_string(c.depth) + ".n" +
                               std::to_string(c.sensors) + ".r" +
                               std::to_string(static_cast<int>(c.range));
    report.gauges.push_back({"relay.tour_len" + suffix, c.tour_len});
    report.gauges.push_back({"relay.stops" + suffix, c.stops});
    report.gauges.push_back({"relay.max_energy_mj" + suffix, c.max_energy_mj});
    report.gauges.push_back({"relay.relayed_frac" + suffix, c.relayed_frac});
  }
  report.save(out_path);
  std::cout << "wrote " << out_path << "\n";

  if (check) {
    // The densest config (max N, max Rs) must show a strictly
    // decreasing tour length in d: more relay budget, shorter tour.
    const std::size_t n = densities[std::size(densities) - 1];
    const double rs = ranges[std::size(ranges) - 1];
    double prev = -1.0;
    bool ok = true;
    for (const SweepCell& c : cells) {
      if (c.sensors != n || c.range != rs) {
        continue;
      }
      if (prev >= 0.0 && !(c.tour_len < prev)) {
        std::cerr << "CHECK FAILED: tour length not strictly decreasing at "
                  << "d=" << c.depth << " (N=" << n << ", Rs=" << rs
                  << "): " << c.tour_len << " vs " << prev << "\n";
        ok = false;
      }
      prev = c.tour_len;
    }
    if (!ok) {
      return 1;
    }
    std::cout << "check passed: tour length strictly decreasing in d at N="
              << n << ", Rs=" << rs << "\n";
  }
  return 0;
}

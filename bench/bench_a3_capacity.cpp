// A3 — polling-point capacity ablation (extension experiment).
//
// The papers justify bounding per-PP affiliation with buffer pressure /
// per-stop dwell time; this bench quantifies the price: tour length and
// stop count vs the per-stop load bound. Expected shape: a smooth
// continuum from the unbounded polling tour down to the direct-visit
// tour as the bound tightens to 1.
#include <string>

#include "bench_common.h"
#include "core/greedy_cover_planner.h"

int main(int argc, char** argv) {
  using namespace mdg;
  Flags flags(argc, argv);
  bench::BenchConfig config = bench::parse_common(flags);
  const auto n = static_cast<std::size_t>(flags.get_int("sensors", 200));
  const double side = flags.get_double("side", 200.0);
  const double rs = flags.get_double("range", 30.0);
  flags.finish();

  Table table("A3: tour vs per-stop load bound — N=" + std::to_string(n) +
                  ", L=" + std::to_string(static_cast<int>(side)) + " m, Rs=" +
                  std::to_string(static_cast<int>(rs)) + " m, " +
                  std::to_string(config.trials) + " trials",
              1);
  table.set_header({"load bound", "tour length (m)", "#PPs", "max load",
                    "mean upload dist (m)"});

  const std::vector<std::size_t> bounds{0, 40, 20, 10, 5, 2, 1};
  for (std::size_t bound : bounds) {
    enum Metric { kLen, kPps, kLoad, kUpload, kCount };
    const auto stats = bench::monte_carlo_multi(
        config, kCount, [&](Rng& rng, std::size_t, std::vector<double>& row) {
          const net::SensorNetwork network =
              net::make_uniform_network(n, side, rs, rng);
          const core::ShdgpInstance instance(network);
          core::GreedyCoverPlannerOptions options;
          options.max_pp_load = bound;
          const core::ShdgpSolution solution =
              core::GreedyCoverPlanner(options).plan(instance);
          row[kLen] = solution.tour_length;
          row[kPps] = static_cast<double>(solution.polling_points.size());
          row[kLoad] = static_cast<double>(solution.max_pp_load());
          row[kUpload] = solution.mean_upload_distance(instance);
        });
    table.add_row({bound == 0 ? std::string("unbounded")
                              : std::to_string(bound),
                   stats[kLen].mean(), stats[kPps].mean(),
                   stats[kLoad].mean(), stats[kUpload].mean()});
  }
  bench::emit(table, config);
  return 0;
}

// R1 — chaos sweep: delivered coverage vs fault intensity (extension).
//
// Scales one knob, a fault-intensity multiplier, across a baseline chaos
// mix (sensor crashes, polling-point blackouts, burst loss, stalls and a
// probabilistic mid-tour breakdown) and drives the mobile collection sim
// for a few rounds per trial. Expected shape: delivered fraction decays
// gracefully — never a crash, never an invalid report — because every
// fault path ends in recovery or explicit loss accounting
// (docs/FAULTS.md). The 0x column is the control: it must match the
// fault-free simulator exactly.
#include <string>

#include "bench_common.h"
#include "core/spanning_tour_planner.h"
#include "fault/fault.h"
#include "sim/mobile_sim.h"

namespace {

struct ChaosResult {
  double delivered_fraction = 1.0;
  double breakdowns = 0.0;
  double pp_timeouts = 0.0;
  double lost_fraction = 0.0;
};

ChaosResult drive(mdg::Rng& rng, double intensity, std::size_t sensors,
                  double side, double range, std::size_t rounds) {
  using namespace mdg;
  const net::SensorNetwork network =
      net::make_uniform_network(sensors, side, range, rng);
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution solution =
      core::SpanningTourPlanner().plan(instance);

  fault::FaultConfig fc;
  fc.seed = rng.next_u64();
  fc.horizon_s = 4000.0;
  fc.sensor_crash_prob = std::min(1.0, 0.05 * intensity);
  fc.pp_blackout_prob = std::min(1.0, 0.10 * intensity);
  fc.pp_blackout_mean_s = 20.0;
  fc.burst_episodes_mean = 1.0 * intensity;
  fc.burst_loss_prob = 0.9;
  fc.stall_mean = 0.5 * intensity;
  fc.stall_duration_s = 20.0;
  fc.breakdown_prob = std::min(1.0, 0.25 * intensity);
  const fault::FaultPlan plan =
      fault::FaultPlan::generate(instance, solution, fc);

  sim::MobileSimConfig config;
  config.initial_battery_j = 100.0;  // chaos-limited, not battery-limited
  if (intensity > 0.0) {
    config.fault_plan = &plan;
  }
  sim::MobileCollectionSim sim(instance, solution, config);
  sim::EnergyLedger ledger(network.size(), config.initial_battery_j);

  ChaosResult result;
  std::size_t offered = 0;
  std::size_t delivered = 0;
  std::size_t lost = 0;
  double clock = 0.0;
  for (std::size_t r = 0; r < rounds; ++r) {
    const sim::MobileRoundReport report = sim.run_round(ledger, clock);
    clock += report.duration_s;
    offered += report.offered;
    delivered += report.delivered;
    lost += report.lost + report.lost_crash;
    result.breakdowns += report.breakdown ? 1.0 : 0.0;
    result.pp_timeouts += static_cast<double>(report.blackout_timeouts);
  }
  result.delivered_fraction =
      offered == 0 ? 1.0
                   : static_cast<double>(delivered) /
                         static_cast<double>(offered);
  result.lost_fraction =
      offered == 0 ? 0.0
                   : static_cast<double>(lost) / static_cast<double>(offered);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mdg;
  Flags flags(argc, argv);
  bench::BenchConfig config = bench::parse_common(flags);
  const auto n = static_cast<std::size_t>(flags.get_int("sensors", 100));
  const double side = flags.get_double("side", 200.0);
  const double rs = flags.get_double("range", 30.0);
  const auto rounds = static_cast<std::size_t>(flags.get_int("rounds", 5));
  flags.finish();

  const std::vector<double> intensities = {0.0, 0.5, 1.0, 2.0, 4.0};

  Table table("R1: delivered coverage vs fault intensity — N=" +
                  std::to_string(n) + ", " + std::to_string(rounds) +
                  " rounds, " + std::to_string(config.trials) + " trials",
              3);
  table.set_header({"intensity", "delivered frac", "sd", "lost frac",
                    "breakdowns/run", "pp timeouts/run"});

  for (double intensity : intensities) {
    const std::vector<RunningStats> stats = bench::monte_carlo_multi(
        config, 4,
        [&](Rng& rng, std::size_t, std::vector<double>& row) {
          const ChaosResult r = drive(rng, intensity, n, side, rs, rounds);
          row[0] = r.delivered_fraction;
          row[1] = r.lost_fraction;
          row[2] = r.breakdowns;
          row[3] = r.pp_timeouts;
        });
    table.add_row({intensity, stats[0].mean(), stats[0].stddev(),
                   stats[1].mean(), stats[2].mean(), stats[3].mean()});
  }
  bench::emit(table, config);
  return 0;
}

// E2 — obstacle-aware routing (extension experiment).
//
// Tour inflation vs obstacle density: random non-overlapping square
// obstacles are added to the field, sensors are deployed around them,
// and the drivable tour (visibility routing + detour-metric TSP) is
// compared against the straight-leg Euclidean tour over the same
// polling points. Expected shape: modest inflation at low blockage,
// super-linear growth as corridors narrow.
#include <string>

#include "bench_common.h"
#include "core/spanning_tour_planner.h"
#include "net/deployment.h"
#include "route/obstacle_tour.h"

namespace {

// `count` random non-overlapping square obstacles of side `box` inside
// the field, kept away from the sink.
mdg::route::ObstacleMap random_obstacles(const mdg::geom::Aabb& field,
                                         std::size_t count, double box,
                                         mdg::geom::Point sink,
                                         mdg::Rng& rng) {
  std::vector<mdg::geom::Aabb> boxes;
  std::size_t attempts = 0;
  while (boxes.size() < count && attempts < 1000) {
    ++attempts;
    const double x = rng.uniform(field.lo.x, field.hi.x - box);
    const double y = rng.uniform(field.lo.y, field.hi.y - box);
    const mdg::geom::Aabb candidate{{x, y}, {x + box, y + box}};
    if (candidate.contains(sink)) {
      continue;
    }
    bool overlaps = false;
    for (const auto& other : boxes) {
      if (candidate.lo.x < other.hi.x + 2.0 &&
          candidate.hi.x > other.lo.x - 2.0 &&
          candidate.lo.y < other.hi.y + 2.0 &&
          candidate.hi.y > other.lo.y - 2.0) {
        overlaps = true;
        break;
      }
    }
    if (!overlaps) {
      boxes.push_back(candidate);
    }
  }
  return mdg::route::ObstacleMap(std::move(boxes));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mdg;
  Flags flags(argc, argv);
  bench::BenchConfig config = bench::parse_common(flags);
  const auto n = static_cast<std::size_t>(flags.get_int("sensors", 200));
  const double side = flags.get_double("side", 200.0);
  const double rs = flags.get_double("range", 30.0);
  const double box = flags.get_double("box", 25.0);
  flags.finish();

  Table table("E2: drivable tour vs obstacle count — N=" + std::to_string(n) +
                  ", L=" + std::to_string(static_cast<int>(side)) +
                  " m, box=" + std::to_string(static_cast<int>(box)) + " m",
              2);
  table.set_header({"obstacles", "blocked area (%)", "euclidean tour (m)",
                    "drivable tour (m)", "inflation (%)",
                    "unroutable (%)"});

  for (std::size_t obstacles : {0u, 2u, 4u, 8u, 12u, 16u}) {
    enum Metric { kEuclid, kDriven, kInflate, kFail, kCount };
    const auto stats = bench::monte_carlo_multi(
        config, kCount, [&](Rng& rng, std::size_t, std::vector<double>& row) {
          const auto field = geom::Aabb::square(side);
          const route::ObstacleMap map =
              random_obstacles(field, obstacles, box, field.center(), rng);
          auto positions = route::remove_covered_positions(
              net::deploy_uniform(n, field, rng), map);
          const net::SensorNetwork network(std::move(positions),
                                           field.center(), field, rs);
          const core::ShdgpInstance instance(network);
          const core::ShdgpSolution plan =
              core::SpanningTourPlanner().plan(instance);

          const route::ObstacleRouter router(map, 1.0);
          const auto driven =
              route::plan_obstacle_tour(instance, plan, router);
          if (!driven) {
            row[kFail] = 100.0;
            row[kEuclid] = plan.tour_length;
            row[kDriven] = plan.tour_length;
            row[kInflate] = 0.0;
            return;
          }
          row[kEuclid] = driven->euclidean_length;
          row[kDriven] = driven->length;
          row[kInflate] =
              (driven->length / driven->euclidean_length - 1.0) * 100.0;
        });
    const double blocked = static_cast<double>(obstacles) * box * box /
                           (side * side) * 100.0;
    table.add_row({static_cast<long long>(obstacles), blocked,
                   stats[kEuclid].mean(), stats[kDriven].mean(),
                   stats[kInflate].mean(), stats[kFail].mean()});
  }
  bench::emit(table, config);
  return 0;
}

// A4 — continuous polling positions (extension).
//
// How much tour the "storage node" flexibility buys: after planning on
// sensor-site candidates, each polling point slides inside its coverage
// feasibility region toward the chord between its tour neighbours.
// Compared against the sites+intersections candidate enrichment, which
// attacks the same restriction discretely.
#include <string>

#include "bench_common.h"
#include "core/greedy_cover_planner.h"
#include "core/refine.h"
#include "core/spanning_tour_planner.h"

int main(int argc, char** argv) {
  using namespace mdg;
  Flags flags(argc, argv);
  bench::BenchConfig config = bench::parse_common(flags);
  const double side = flags.get_double("side", 200.0);
  const double rs = flags.get_double("range", 30.0);
  flags.finish();

  Table table("A4: continuous-position refinement — L=" +
                  std::to_string(static_cast<int>(side)) + " m, Rs=" +
                  std::to_string(static_cast<int>(rs)) + " m, " +
                  std::to_string(config.trials) + " trials/point",
              1);
  table.set_header({"N", "site tour (m)", "refined tour (m)", "gain (%)",
                    "intersection-candidates tour (m)", "moves"});

  for (std::size_t n : {100u, 200u, 300u}) {
    enum Metric { kSite, kRefined, kMoves, kIntersections, kCount };
    const auto stats = bench::monte_carlo_multi(
        config, kCount, [&](Rng& rng, std::size_t, std::vector<double>& row) {
          const net::SensorNetwork network =
              net::make_uniform_network(n, side, rs, rng);
          const core::ShdgpInstance sites(network);
          core::ShdgpSolution solution =
              core::SpanningTourPlanner().plan(sites);
          row[kSite] = solution.tour_length;
          row[kMoves] = static_cast<double>(
              core::refine_polling_positions(sites, solution));
          row[kRefined] = solution.tour_length;

          cover::CandidateOptions rich;
          rich.policy =
              cover::CandidatePolicy::kSensorSitesAndIntersections;
          const core::ShdgpInstance enriched(network, rich);
          row[kIntersections] =
              core::GreedyCoverPlanner().plan(enriched).tour_length;
        });
    table.add_row(
        {static_cast<long long>(n), stats[kSite].mean(),
         stats[kRefined].mean(),
         (1.0 - stats[kRefined].mean() / stats[kSite].mean()) * 100.0,
         stats[kIntersections].mean(), stats[kMoves].mean()});
  }
  bench::emit(table, config);
  return 0;
}

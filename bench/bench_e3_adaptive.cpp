// E3 — adaptive re-planning during network decay (extension).
//
// Static policy: plan once, drive the same tour until the end. Adaptive
// policy: re-plan on the survivors every R rounds. Expected shape: both
// deliver identically while everyone lives; once sensors start dying,
// the adaptive round duration decays with the population while the
// static tour stays long.
#include <string>

#include "bench_common.h"
#include "core/spanning_tour_planner.h"
#include "sim/adaptive.h"

int main(int argc, char** argv) {
  using namespace mdg;
  Flags flags(argc, argv);
  bench::BenchConfig config = bench::parse_common(flags);
  const auto n = static_cast<std::size_t>(flags.get_int("sensors", 150));
  const double side = flags.get_double("side", 200.0);
  const double rs = flags.get_double("range", 30.0);
  flags.finish();

  // Sample the round duration at fixed fractions of each run.
  const std::vector<double> checkpoints{0.0, 0.5, 0.8, 0.95, 1.0};

  Table table("E3: round duration during decay — N=" + std::to_string(n) +
                  ", battery 0.05 J, run until 50% alive, " +
                  std::to_string(config.trials) + " trials",
              2);
  table.set_header({"progress", "static round (min)", "adaptive round (min)",
                    "adaptive saving (%)"});

  std::vector<RunningStats> static_at(checkpoints.size());
  std::vector<RunningStats> adaptive_at(checkpoints.size());
  RunningStats static_delivered;
  RunningStats adaptive_delivered;
  RunningStats replans;

  const Rng base(config.seed);
  for (std::size_t t = 0; t < config.trials; ++t) {
    Rng rng = base.fork(t);
    const net::SensorNetwork network =
        net::make_uniform_network(n, side, rs, rng);
    const core::SpanningTourPlanner planner;

    sim::AdaptiveConfig static_config;
    static_config.mobile.initial_battery_j = 0.05;
    sim::AdaptiveConfig adaptive_config = static_config;
    adaptive_config.replan_every_rounds = 10;

    const sim::AdaptiveReport s =
        sim::run_adaptive_lifetime(network, planner, static_config, 0.5);
    const sim::AdaptiveReport a =
        sim::run_adaptive_lifetime(network, planner, adaptive_config, 0.5);
    static_delivered.add(static_cast<double>(s.delivered_total));
    adaptive_delivered.add(static_cast<double>(a.delivered_total));
    replans.add(static_cast<double>(a.replans));

    for (std::size_t i = 0; i < checkpoints.size(); ++i) {
      const auto sample = [&](const sim::AdaptiveReport& r) {
        const std::size_t idx = std::min(
            r.round_duration_s.size() - 1,
            static_cast<std::size_t>(checkpoints[i] *
                                     static_cast<double>(
                                         r.round_duration_s.size() - 1)));
        return r.round_duration_s[idx] / 60.0;
      };
      static_at[i].add(sample(s));
      adaptive_at[i].add(sample(a));
    }
  }

  for (std::size_t i = 0; i < checkpoints.size(); ++i) {
    table.add_row(
        {std::to_string(static_cast<int>(checkpoints[i] * 100)) + "%",
         static_at[i].mean(), adaptive_at[i].mean(),
         (1.0 - adaptive_at[i].mean() / static_at[i].mean()) * 100.0});
  }
  bench::emit(table, config);
  std::cout << "Mean packets delivered: static "
            << static_delivered.mean() << ", adaptive "
            << adaptive_delivered.mean() << " (with " << replans.mean()
            << " plans per run).\n";
  return 0;
}

// F7 — network lifetime (reconstruction).
//
// Rounds until first sensor death / until 10% of sensors died, SHDG
// mobile collection vs static multihop relay, N in 100..400. Expected
// shape: SHDG lifetime is flat in N (every round costs one bounded
// upload) and several times the multihop lifetime, whose sink-adjacent
// hotspot collapses first.
#include <string>

#include "baselines/multihop_routing.h"
#include "bench_common.h"
#include "core/spanning_tour_planner.h"
#include "sim/mobile_sim.h"
#include "sim/multihop_sim.h"

int main(int argc, char** argv) {
  using namespace mdg;
  Flags flags(argc, argv);
  bench::BenchConfig config = bench::parse_common(flags);
  const double side = flags.get_double("side", 200.0);
  const double rs = flags.get_double("range", 30.0);
  const double battery = flags.get_double("battery", 0.1);
  flags.finish();

  Table table("F7: network lifetime (rounds) — battery " +
                  std::to_string(battery) + " J, L=" +
                  std::to_string(static_cast<int>(side)) + " m, Rs=" +
                  std::to_string(static_cast<int>(rs)) + " m",
              1);
  table.set_header({"N", "SHDG first death", "SHDG 10% dead",
                    "multihop first death", "multihop 10% dead",
                    "lifetime gain", "multihop delivery ratio"});

  for (std::size_t n : {100u, 200u, 300u, 400u}) {
    enum Metric {
      kMobileFirst,
      kMobileTen,
      kHopFirst,
      kHopTen,
      kRatio,
      kCount,
    };
    const auto stats = bench::monte_carlo_multi(
        config, kCount, [&](Rng& rng, std::size_t, std::vector<double>& row) {
          const net::SensorNetwork network =
              net::make_uniform_network(n, side, rs, rng);

          const core::ShdgpInstance instance(network);
          const core::ShdgpSolution plan =
              core::SpanningTourPlanner().plan(instance);
          sim::MobileSimConfig mobile_config;
          mobile_config.initial_battery_j = battery;
          sim::MobileCollectionSim mobile(instance, plan, mobile_config);
          const sim::MobileLifetimeReport mobile_life =
              mobile.run_lifetime();
          row[kMobileFirst] =
              static_cast<double>(mobile_life.rounds_first_death);
          row[kMobileTen] =
              static_cast<double>(mobile_life.rounds_10pct_death);

          sim::MultihopSimConfig hop_config;
          hop_config.initial_battery_j = battery;
          sim::MultihopSim multihop(network, hop_config);
          const sim::MultihopLifetimeReport hop_life =
              multihop.run_lifetime();
          row[kHopFirst] = static_cast<double>(hop_life.rounds_first_death);
          row[kHopTen] = static_cast<double>(hop_life.rounds_10pct_death);
          row[kRatio] = hop_life.delivery_ratio;
        });
    table.add_row(
        {static_cast<long long>(n), stats[kMobileFirst].mean(),
         stats[kMobileTen].mean(), stats[kHopFirst].mean(),
         stats[kHopTen].mean(),
         stats[kMobileFirst].mean() / stats[kHopFirst].mean(),
         stats[kRatio].mean()});
  }
  bench::emit(table, config);
  return 0;
}

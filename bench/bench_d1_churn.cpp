// D1 — incremental replanning under churn (ALGORITHMS.md §Dynamic
// replanning).
//
// Measures what core::apply_delta buys over replanning from scratch:
// for each ladder size n, plan a base instance, synthesize a small
// mixed churn batch (adds, removes, moves), then time
//
//   repair  — apply_delta on a copy of the base plan against a live
//             DynamicInstance (built per trial, outside the timer: the
//             instance persists across deltas in a churn scenario, so
//             its construction is amortized, not a per-delta cost)
//   replan  — GreedyCoverPlanner::plan on the post-delta instance
//
// and report the p50 speedup, the repair quality ratio (repaired tour
// length / from-scratch tour length on the same post-delta instance),
// and a cross-thread determinism probe: the repaired plan's canonical
// bytes must be identical at MDG_THREADS=1 and MDG_THREADS=4.
//
// With --check the bench exits non-zero unless, at the largest ladder
// size, the repair is at least --min-speedup (default 20) times faster
// than the replan at the median, the quality ratio is at most
// --max-ratio (default 1.05), and the determinism probe holds. CI runs
// a small-n smoke; the committed BENCH_delta.json is the full
// --ladder 2000,100000 run.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/delta.h"
#include "core/greedy_cover_planner.h"
#include "net/deployment.h"
#include "net/sensor_network.h"
#include "obs/report.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "verify/canonical.h"
#include "verify/check.h"

namespace {

using namespace mdg;

double median(std::vector<double> v) {
  if (v.empty()) {
    return 0.0;
  }
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

std::vector<std::size_t> parse_ladder(const std::string& text) {
  std::vector<std::size_t> ladder;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    ladder.push_back(static_cast<std::size_t>(std::stoull(item)));
  }
  return ladder;
}

net::SensorNetwork bench_network(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  const double side = 25.0 * std::sqrt(static_cast<double>(n));
  return net::make_uniform_network(n, side, 30.0, rng);
}

/// A churn batch that exercises every repairable op kind: a third
/// adds (uniform in the field), a third removes, a third moves. Ids
/// are drawn against the running count so the batch always validates.
core::Delta make_churn(const net::SensorNetwork& network, std::size_t ops,
                       std::uint64_t seed) {
  Rng rng(seed);
  const geom::Aabb& field = network.field();
  core::Delta delta;
  std::size_t count = network.size();
  for (std::size_t i = 0; i < ops; ++i) {
    const geom::Point p{rng.uniform(field.lo.x, field.hi.x),
                        rng.uniform(field.lo.y, field.hi.y)};
    switch (i % 3) {
      case 0:
        delta.ops.push_back(core::DeltaOp::add_sensor(p));
        ++count;
        break;
      case 1:
        delta.ops.push_back(core::DeltaOp::remove_sensor(rng.index(count)));
        --count;
        break;
      default:
        delta.ops.push_back(core::DeltaOp::move_sensor(rng.index(count), p));
        break;
    }
  }
  return delta;
}

struct RungResult {
  std::size_t n = 0;
  double repair_p50_ms = 0.0;
  double replan_p50_ms = 0.0;
  double speedup = 0.0;
  double ratio = 0.0;        ///< repaired length / from-scratch length
  /// Same measurement for a single-sensor delta (one move op) — the
  /// headline number: repairing one sensor's worth of churn.
  double single_repair_p50_ms = 0.0;
  double single_speedup = 0.0;
  bool full_replan = false;  ///< repair dispatched to the fallback
  bool deterministic = false;
};

RungResult run_rung(std::size_t n, std::size_t ops, std::size_t trials,
                    std::uint64_t seed, std::size_t threads) {
  RungResult result;
  result.n = n;
  const net::SensorNetwork network = bench_network(n, seed);
  const core::ShdgpSolution base =
      core::GreedyCoverPlanner().plan(core::ShdgpInstance(network));
  const core::Delta delta = make_churn(network, ops, seed ^ 0x5eed);

  // --- repair ---------------------------------------------------------
  std::vector<double> repair_ms;
  core::ShdgpSolution repaired;
  for (std::size_t t = 0; t < trials; ++t) {
    core::ShdgpSolution sol = base;
    core::DynamicInstance dyn(network);
    const Stopwatch watch;
    const auto applied = core::apply_delta(dyn, delta, sol);
    repair_ms.push_back(watch.elapsed_ms());
    if (!applied.is_ok()) {
      std::cerr << "FATAL: apply_delta failed: "
                << applied.status().to_string() << "\n";
      std::exit(1);
    }
    result.full_replan = applied->full_replan;
    if (t == 0) {
      repaired = std::move(sol);
    }
  }

  // --- replan from scratch on the post-delta instance -----------------
  core::DynamicInstance post(network);
  {
    core::ShdgpSolution scratch = base;
    (void)core::apply_delta(post, delta, scratch);
  }
  std::vector<double> replan_ms;
  core::ShdgpSolution fresh;
  for (std::size_t t = 0; t < trials; ++t) {
    const Stopwatch watch;
    fresh = core::GreedyCoverPlanner().plan(post.instance());
    replan_ms.push_back(watch.elapsed_ms());
  }

  const core::Status valid = verify::check_solution(post.instance(), repaired);
  if (!valid.is_ok()) {
    std::cerr << "FATAL: repaired plan failed verification at n=" << n << ": "
              << valid.to_string() << "\n";
    std::exit(1);
  }

  result.repair_p50_ms = median(repair_ms);
  result.replan_p50_ms = median(replan_ms);
  result.speedup = result.repair_p50_ms > 0.0
                       ? result.replan_p50_ms / result.repair_p50_ms
                       : 0.0;
  result.ratio = fresh.tour_length > 0.0
                     ? repaired.tour_length / fresh.tour_length
                     : 1.0;

  // --- single-sensor delta: one move op against the base instance -----
  {
    Rng rng(seed ^ 0xbeef);
    core::Delta one;
    one.ops.push_back(core::DeltaOp::move_sensor(
        rng.index(network.size()),
        {rng.uniform(network.field().lo.x, network.field().hi.x),
         rng.uniform(network.field().lo.y, network.field().hi.y)}));
    std::vector<double> single_ms;
    for (std::size_t t = 0; t < trials; ++t) {
      core::ShdgpSolution sol = base;
      core::DynamicInstance dyn(network);
      const Stopwatch watch;
      const auto applied = core::apply_delta(dyn, one, sol);
      single_ms.push_back(watch.elapsed_ms());
      if (!applied.is_ok()) {
        std::cerr << "FATAL: single-op apply_delta failed: "
                  << applied.status().to_string() << "\n";
        std::exit(1);
      }
    }
    result.single_repair_p50_ms = median(single_ms);
    result.single_speedup = result.single_repair_p50_ms > 0.0
                                ? result.replan_p50_ms / result.single_repair_p50_ms
                                : 0.0;
  }

  // --- determinism probe: byte-identical repair at 1 and 4 threads ----
  std::string bytes[2];
  const std::size_t probe_threads[2] = {1, 4};
  for (int p = 0; p < 2; ++p) {
    set_planning_threads(probe_threads[p]);
    core::ShdgpSolution sol = base;
    core::DynamicInstance dyn(network);
    (void)core::apply_delta(dyn, delta, sol);
    bytes[p] = verify::canonical_plan_bytes(dyn.instance(), sol);
  }
  set_planning_threads(threads);
  result.deterministic = bytes[0] == bytes[1];
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string ladder_text = flags.get_string("ladder", "2000,100000");
  const std::size_t ops = static_cast<std::size_t>(flags.get_int("ops", 9));
  const std::size_t trials =
      static_cast<std::size_t>(flags.get_int("trials", 5));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 2008));
  const double min_speedup = flags.get_double("min-speedup", 20.0);
  const double max_ratio = flags.get_double("max-ratio", 1.05);
  const bool check = flags.get_bool("check", false);
  const std::string out_path = flags.get_string("out", "BENCH_delta.json");
  const std::size_t threads =
      static_cast<std::size_t>(flags.get_int("threads", 0));
  flags.finish();
  set_planning_threads(threads);

  const std::vector<std::size_t> ladder = parse_ladder(ladder_text);
  if (ladder.empty()) {
    std::cerr << "usage: bench_d1_churn --ladder N1,N2,...\n";
    return 2;
  }

  const Stopwatch total_watch;
  std::vector<RungResult> rungs;
  for (const std::size_t n : ladder) {
    rungs.push_back(run_rung(n, ops, trials, seed, threads));
  }

  Table table("D1 churn: " + std::to_string(ops) + " ops/batch, " +
                  std::to_string(trials) + " trials",
              3);
  table.set_header({"n", "repair p50 ms", "replan p50 ms", "speedup",
                    "1-op ms", "1-op speedup", "ratio"});
  for (const RungResult& r : rungs) {
    table.add_row({static_cast<double>(r.n), r.repair_p50_ms, r.replan_p50_ms,
                   r.speedup, r.single_repair_p50_ms, r.single_speedup,
                   r.ratio});
  }
  table.print(std::cout);
  for (const RungResult& r : rungs) {
    std::cout << "n=" << r.n << ": "
              << (r.deterministic ? "byte-identical at MDG_THREADS {1,4}"
                                  : "NOT deterministic across thread counts")
              << (r.full_replan ? " (dispatched to full replan)" : "") << "\n";
  }

  obs::RunReport report;
  report.command = "bench";
  report.planner = "d1_churn";
  report.seed = seed;
  report.git_describe = obs::current_git_describe();
  report.wall_ms = total_watch.elapsed_ms();
  report.params = {{"ladder", ladder_text},
                   {"ops", std::to_string(ops)},
                   {"trials", std::to_string(trials)},
                   {"threads", std::to_string(planning_threads())}};
  for (const RungResult& r : rungs) {
    const std::string suffix = ".n" + std::to_string(r.n);
    report.gauges.push_back({"delta.repair_p50_ms" + suffix, r.repair_p50_ms});
    report.gauges.push_back({"delta.replan_p50_ms" + suffix, r.replan_p50_ms});
    report.gauges.push_back({"delta.speedup" + suffix, r.speedup});
    report.gauges.push_back(
        {"delta.single_repair_p50_ms" + suffix, r.single_repair_p50_ms});
    report.gauges.push_back({"delta.single_speedup" + suffix, r.single_speedup});
    report.gauges.push_back({"delta.ratio" + suffix, r.ratio});
    report.gauges.push_back(
        {"delta.deterministic" + suffix, r.deterministic ? 1.0 : 0.0});
  }
  report.save(out_path);
  std::cout << "wrote " << out_path << "\n";

  bool failed = false;
  for (const RungResult& r : rungs) {
    if (!r.deterministic) {
      std::cerr << "FAIL: repaired plan bytes differ across MDG_THREADS at n="
                << r.n << "\n";
      failed = true;
    }
    if (r.ratio > max_ratio) {
      std::cerr << "FAIL: quality ratio " << r.ratio << " exceeds "
                << max_ratio << " at n=" << r.n << "\n";
      failed = true;
    }
  }
  if (check) {
    const RungResult& top = rungs.back();
    if (top.speedup < min_speedup) {
      std::cerr << "FAIL: repair speedup " << top.speedup << "x below "
                << min_speedup << "x at n=" << top.n << "\n";
      failed = true;
    }
    if (top.single_speedup < min_speedup) {
      std::cerr << "FAIL: single-op repair speedup " << top.single_speedup
                << "x below " << min_speedup << "x at n=" << top.n << "\n";
      failed = true;
    }
  }
  return failed ? 1 : 0;
}

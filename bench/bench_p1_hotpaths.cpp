// P1 — hot-path microbenchmarks (perf trajectory tracking).
//
// Times the four kernels every SHDGP planner funnels through — coverage
// build, greedy set cover, tour construction, tour improvement — each in
// isolation across n ∈ {100, 500, 2000, 8000}, and reports the speedup of
// the rebuilt kernels over the seed implementations (linear-rescan greedy
// cover, full-sweep 2-opt) together with the tour-quality ratio. Results
// go to stdout as a table and to a machine-readable JSON file
// (--out, default BENCH_hotpaths.json) so CI can track the trajectory.
//
// With --check the bench exits non-zero when the new improvement kernel's
// tour is more than 2% longer than the seed full 2-opt on the checked-in
// regression instances (data/small30.txt, data/uniform200.txt) or on any
// synthetic size — the guard the CI perf step enforces.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cover/coverage.h"
#include "cover/set_cover.h"
#include "io/serialize.h"
#include "net/deployment.h"
#include "net/sensor_network.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "tsp/construct.h"
#include "tsp/improve.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace {

using namespace mdg;

double quantile(std::vector<double> v, double q) {
  if (v.empty()) {
    return 0.0;
  }
  std::sort(v.begin(), v.end());
  const double idx = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

struct KernelResult {
  std::string name;
  std::size_t n = 0;
  double median_ms = 0.0;
  double p90_ms = 0.0;
  double baseline_median_ms = 0.0;  ///< 0 when the kernel has no baseline
  double speedup = 0.0;
  double tour_ratio = 0.0;  ///< new length / seed length (improvement only)
};

void append_json(std::string& out, const KernelResult& r) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "    {\"kernel\": \"%s\", \"n\": %zu, \"median_ms\": %.6f, "
                "\"p90_ms\": %.6f, \"baseline_median_ms\": %.6f, "
                "\"speedup\": %.3f, \"tour_ratio\": %.6f}",
                r.name.c_str(), r.n, r.median_ms, r.p90_ms,
                r.baseline_median_ms, r.speedup, r.tour_ratio);
  if (!out.empty()) {
    out += ",\n";
  }
  out += buf;
}

/// One synthetic topology per (n, trial): constant density (the paper's
/// regime), Rs = 30 m.
net::SensorNetwork make_topology(std::size_t n, Rng& rng) {
  const double side = 20.0 * std::sqrt(static_cast<double>(n));
  return net::make_uniform_network(n, side, 30.0, rng);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::size_t trials =
      static_cast<std::size_t>(flags.get_int("trials", 5));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 2008));
  const std::string out_path =
      flags.get_string("out", "BENCH_hotpaths.json");
  const std::string data_dir = flags.get_string("data-dir", "data");
  const bool check = flags.get_bool("check", false);
  const std::size_t max_n =
      static_cast<std::size_t>(flags.get_int("max-n", 8000));
  const std::string report_path = flags.get_string("report", "");
  flags.finish();
  if (!report_path.empty()) {
    obs::MetricsRegistry::set_enabled(true);
    obs::MetricsRegistry::instance().reset();
  }
  const Stopwatch total_watch;

  const Rng base(seed);
  std::vector<KernelResult> results;
  bool regressed = false;

  Table table("P1: hot-path kernels — median ms over " +
                  std::to_string(trials) + " trials (speedup vs seed kernel)",
              2);
  table.set_header({"n", "coverage", "set-cover", "(speedup)", "construct",
                    "improve", "(speedup)", "len-ratio"});

  for (const std::size_t n : {100u, 500u, 2000u, 8000u}) {
    if (n > max_n) {
      continue;
    }
    std::vector<double> t_coverage, t_cover, t_cover_ref, t_construct,
        t_improve, t_improve_ref, ratios;
    for (std::size_t t = 0; t < trials; ++t) {
      Rng rng = base.fork(n * 1000 + t);
      const net::SensorNetwork network = make_topology(n, rng);

      Stopwatch watch;
      const cover::CoverageMatrix matrix(network, {});
      t_coverage.push_back(watch.elapsed_ms());

      cover::GreedyOptions greedy;
      greedy.anchor = network.sink();
      watch.reset();
      const cover::SetCoverResult lazy =
          cover::greedy_set_cover(matrix, network, greedy);
      t_cover.push_back(watch.elapsed_ms());
      watch.reset();
      const cover::SetCoverResult reference =
          cover::greedy_set_cover_reference(matrix, network, greedy);
      t_cover_ref.push_back(watch.elapsed_ms());
      if (lazy.selected != reference.selected) {
        std::cerr << "FATAL: lazy greedy diverged from the reference at n="
                  << n << "\n";
        return 2;
      }

      // TSP kernels run over the raw sensor field (sink at index 0) so
      // the tour size is n+1 regardless of how many polling points the
      // cover kept.
      std::vector<geom::Point> pts{network.sink()};
      pts.insert(pts.end(), network.positions().begin(),
                 network.positions().end());
      watch.reset();
      const tsp::Tour nn = tsp::nearest_neighbor(pts);
      t_construct.push_back(watch.elapsed_ms());

      tsp::Tour fast = nn;
      tsp::ImproveOptions engine;
      engine.full_scan_below = 0;  // force the neighbour engine at all n
      watch.reset();
      tsp::improve(fast, pts, engine);
      t_improve.push_back(watch.elapsed_ms());

      tsp::Tour slow = nn;
      watch.reset();
      tsp::two_opt(slow, pts);
      t_improve_ref.push_back(watch.elapsed_ms());

      ratios.push_back(fast.length(pts) / slow.length(pts));
    }

    const auto med = [](const std::vector<double>& v) {
      return quantile(v, 0.5);
    };
    KernelResult coverage{"coverage_build", n, med(t_coverage),
                          quantile(t_coverage, 0.9), 0.0, 0.0, 0.0};
    KernelResult cover_k{"set_cover", n, med(t_cover),
                         quantile(t_cover, 0.9), med(t_cover_ref),
                         med(t_cover_ref) / std::max(med(t_cover), 1e-9),
                         0.0};
    KernelResult construct{"construct", n, med(t_construct),
                           quantile(t_construct, 0.9), 0.0, 0.0, 0.0};
    KernelResult improve_k{"improve", n, med(t_improve),
                           quantile(t_improve, 0.9), med(t_improve_ref),
                           med(t_improve_ref) /
                               std::max(med(t_improve), 1e-9),
                           quantile(ratios, 0.5)};
    results.push_back(coverage);
    results.push_back(cover_k);
    results.push_back(construct);
    results.push_back(improve_k);
    if (*std::max_element(ratios.begin(), ratios.end()) > 1.02) {
      std::cerr << "improvement kernel regressed >2% vs full 2-opt at n="
                << n << "\n";
      regressed = true;
    }

    table.add_row({static_cast<long long>(n), coverage.median_ms,
                   cover_k.median_ms, cover_k.speedup, construct.median_ms,
                   improve_k.median_ms, improve_k.speedup,
                   improve_k.tour_ratio});
  }

  // Checked-in regression instances: quality guard on real topologies.
  for (const char* name : {"small30.txt", "uniform200.txt"}) {
    const std::string path = data_dir + "/" + name;
    std::ifstream probe(path);
    if (!probe.good()) {
      std::cerr << "note: " << path << " not found, skipping instance check\n";
      if (check) {
        regressed = true;
      }
      continue;
    }
    const net::SensorNetwork network = io::load_network(path);
    std::vector<geom::Point> pts{network.sink()};
    pts.insert(pts.end(), network.positions().begin(),
               network.positions().end());
    const tsp::Tour nn = tsp::nearest_neighbor(pts);
    tsp::Tour fast = nn;
    tsp::ImproveOptions engine;
    engine.full_scan_below = 0;
    tsp::improve(fast, pts, engine);
    tsp::Tour slow = nn;
    tsp::two_opt(slow, pts);
    const double ratio = fast.length(pts) / slow.length(pts);
    KernelResult inst{std::string("improve_") + name, network.size(), 0.0,
                      0.0, 0.0, 0.0, ratio};
    results.push_back(inst);
    if (ratio > 1.02) {
      std::cerr << "improvement kernel regressed >2% vs full 2-opt on "
                << name << " (ratio " << ratio << ")\n";
      regressed = true;
    }
  }

  table.print(std::cout);
  std::cout << std::endl;

  std::string body;
  for (const KernelResult& r : results) {
    append_json(body, r);
  }
  std::ofstream json(out_path);
  json << "{\n  \"bench\": \"p1_hotpaths\",\n  \"trials\": " << trials
       << ",\n  \"seed\": " << seed << ",\n  \"kernels\": [\n"
       << body << "\n  ]\n}\n";
  json.close();
  std::cout << "wrote " << out_path << "\n";

  if (!report_path.empty()) {
    obs::RunReport report;
    report.command = "bench";
    report.planner = "p1_hotpaths";
    report.seed = seed;
    report.git_describe = obs::current_git_describe();
    report.wall_ms = total_watch.elapsed_ms();
    report.params = {{"trials", std::to_string(trials)},
                     {"max-n", std::to_string(max_n)},
                     {"check", check ? "true" : "false"}};
    report.capture_metrics(obs::MetricsRegistry::instance());
    report.save(report_path);
    std::cout << "wrote " << report_path << "\n";
  }

  if (check && regressed) {
    return 1;
  }
  return 0;
}

// P1 — hot-path microbenchmarks (perf trajectory tracking).
//
// Times the four kernels every SHDGP planner funnels through — coverage
// build, greedy set cover, tour construction, tour improvement — each in
// isolation across n ∈ {100, 500, 2000, 8000}, and reports the speedup of
// the production kernels over the seed implementations (serial coverage
// build, linear-rescan greedy cover, full-scan nearest-neighbour, the
// classic 2-opt → Or-opt composition) together with the tour-quality
// ratio. Every kernel row now carries a real baseline — speedups are
// measured, never 0. Results go to stdout as a table and to a
// machine-readable JSON file (--out, default BENCH_hotpaths.json) so CI
// can track the trajectory.
//
// --threads N caps the planning pool (0 = auto); the value is recorded
// in every JSON row. Kernel outputs are byte-identical at any thread
// count — the bench verifies that against the serial references on
// every trial.
//
// With --check the bench exits non-zero when the dispatched improvement
// kernel's tour is more than 2% longer than the seed composition on the
// checked-in regression instances (data/small30.txt, data/uniform200.txt)
// or on any synthetic size — the guard the CI perf step enforces.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "cover/coverage.h"
#include "cover/set_cover.h"
#include "io/serialize.h"
#include "net/deployment.h"
#include "net/sensor_network.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "tsp/construct.h"
#include "tsp/improve.h"
#include "tsp/neighbor_lists.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using namespace mdg;

double quantile(std::vector<double> v, double q) {
  if (v.empty()) {
    return 0.0;
  }
  std::sort(v.begin(), v.end());
  const double idx = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

struct KernelResult {
  std::string name;
  std::size_t n = 0;
  double median_ms = 0.0;
  double p90_ms = 0.0;
  double baseline_median_ms = 0.0;  ///< 0 when the kernel has no baseline
  double speedup = 0.0;
  double tour_ratio = 0.0;  ///< new length / seed length (improvement only)
  std::size_t threads = 1;  ///< planning workers the kernel ran with
};

void append_json(std::string& out, const KernelResult& r) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "    {\"kernel\": \"%s\", \"n\": %zu, \"median_ms\": %.6f, "
                "\"p90_ms\": %.6f, \"baseline_median_ms\": %.6f, "
                "\"speedup\": %.3f, \"tour_ratio\": %.6f, \"threads\": %zu}",
                r.name.c_str(), r.n, r.median_ms, r.p90_ms,
                r.baseline_median_ms, r.speedup, r.tour_ratio, r.threads);
  if (!out.empty()) {
    out += ",\n";
  }
  out += buf;
}

/// One synthetic topology per (n, trial): constant density (the paper's
/// regime), Rs = 30 m.
net::SensorNetwork make_topology(std::size_t n, Rng& rng) {
  const double side = 20.0 * std::sqrt(static_cast<double>(n));
  return net::make_uniform_network(n, side, 30.0, rng);
}

/// The seed improvement composition (what improve() dispatches to below
/// full_scan_below), forced at every size.
void improve_classic(tsp::Tour& tour, std::span<const geom::Point> pts) {
  tsp::ImproveOptions classic;
  classic.full_scan_below = std::numeric_limits<std::size_t>::max();
  tsp::improve(tour, pts, classic);
}

/// The sequential neighbour-list engine, partitioning disabled — the
/// single-thread baseline the partitioned path is measured against.
void improve_sequential(tsp::Tour& tour, std::span<const geom::Point> pts) {
  tsp::ImproveOptions seq;
  seq.full_scan_below = 0;
  seq.partition_above = 0;
  tsp::improve(tour, pts, seq);
}

/// Large-n scaling sweep (--scale): coverage build, neighbour-list
/// build, tour construction and tour improvement at n up to 10^6, each
/// at 1 planning thread and at the full pool, written as a
/// schema-valid RunReport (the CI perf-smoke step validates it with
/// tools/report_diff --schema). The improvement kernel is measured both
/// through the production dispatch (the partitioned parallel engine at
/// these sizes) and with partitioning disabled, so the record carries
/// the partitioned-vs-sequential speedup and tour-quality ratio; the
/// dispatched tour order must be byte-identical at every thread count
/// or the bench exits non-zero.
int run_scale(std::size_t trials, std::uint64_t seed,
              const std::string& out_path, std::size_t max_n) {
  const Stopwatch total_watch;
  const Rng base(seed);
  std::vector<std::size_t> sizes;
  for (const std::size_t n :
       {std::size_t{2000}, std::size_t{8000}, std::size_t{100000},
        std::size_t{1000000}}) {
    if (n <= max_n) {
      sizes.push_back(n);
    }
  }
  std::vector<std::size_t> thread_set{1};
  if (planning_threads() > 1) {
    thread_set.push_back(planning_threads());
  }

  Table table("P1 scale: median ms over " + std::to_string(trials) +
                  " trials (improve speedup vs sequential engine)",
              2);
  table.set_header({"n", "thr", "coverage", "neighbors", "construct",
                    "improve", "improve-seq", "(x)", "len-ratio"});
  std::vector<obs::RunReport::Gauge> gauges;
  const auto med = [](const std::vector<double>& v) {
    return quantile(v, 0.5);
  };
  const auto tag = [](const char* kernel, std::size_t n, std::size_t thr) {
    return std::string("scale.") + kernel + ".n" + std::to_string(n) + ".t" +
           std::to_string(thr);
  };

  for (const std::size_t n : sizes) {
    // Per-thread-count sample vectors, indexed like thread_set.
    std::vector<std::vector<double>> t_cov(thread_set.size()),
        t_nbr(thread_set.size()), t_con(thread_set.size()),
        t_imp(thread_set.size());
    std::vector<double> t_seq, ratios;
    for (std::size_t t = 0; t < trials; ++t) {
      Rng rng = base.fork(n * 1000 + t);
      const net::SensorNetwork network = make_topology(n, rng);
      std::vector<geom::Point> pts{network.sink()};
      pts.insert(pts.end(), network.positions().begin(),
                 network.positions().end());
      Stopwatch watch;
      std::vector<std::size_t> first_order;
      double dispatched_length = 0.0;
      for (std::size_t ti = 0; ti < thread_set.size(); ++ti) {
        const ScopedPlanningThreads scoped(thread_set[ti]);
        watch.reset();
        const cover::CoverageMatrix matrix(network, cover::CandidateOptions{});
        t_cov[ti].push_back(watch.elapsed_ms());
        watch.reset();
        const tsp::NeighborLists nbrs(pts, 12);
        t_nbr[ti].push_back(watch.elapsed_ms());
        watch.reset();
        const tsp::Tour nn = tsp::nearest_neighbor(pts);
        t_con[ti].push_back(watch.elapsed_ms());
        tsp::Tour tour = nn;
        watch.reset();
        tsp::improve(tour, pts);  // production dispatch
        t_imp[ti].push_back(watch.elapsed_ms());
        if (ti == 0) {
          first_order = tour.order();
          dispatched_length = tour.length(pts);
          tsp::Tour seq_tour = nn;
          watch.reset();
          improve_sequential(seq_tour, pts);
          t_seq.push_back(watch.elapsed_ms());
          ratios.push_back(dispatched_length / seq_tour.length(pts));
        } else if (tour.order() != first_order) {
          std::cerr << "FATAL: dispatched improve diverged between "
                    << thread_set[0] << " and " << thread_set[ti]
                    << " planning threads at n=" << n << "\n";
          return 2;
        }
      }
    }
    for (std::size_t ti = 0; ti < thread_set.size(); ++ti) {
      const std::size_t thr = thread_set[ti];
      gauges.push_back({tag("coverage_build_ms", n, thr), med(t_cov[ti])});
      gauges.push_back({tag("neighbors_build_ms", n, thr), med(t_nbr[ti])});
      gauges.push_back({tag("construct_ms", n, thr), med(t_con[ti])});
      gauges.push_back({tag("improve_ms", n, thr), med(t_imp[ti])});
      if (ti == 0) {
        gauges.push_back({tag("improve_seq_ms", n, 1), med(t_seq)});
        gauges.push_back({tag("improve_len_ratio", n, 1), med(ratios)});
      }
      table.add_row({static_cast<long long>(n),
                     static_cast<long long>(thr), med(t_cov[ti]),
                     med(t_nbr[ti]), med(t_con[ti]), med(t_imp[ti]),
                     med(t_seq), med(t_seq) / std::max(med(t_imp[ti]), 1e-9),
                     quantile(ratios, 0.5)});
    }
  }
  table.print(std::cout);
  std::cout << std::endl;

  obs::RunReport report;
  report.command = "bench";
  report.planner = "p1_scale";
  report.seed = seed;
  report.git_describe = obs::current_git_describe();
  report.wall_ms = total_watch.elapsed_ms();
  report.params = {{"trials", std::to_string(trials)},
                   {"scale-max-n", std::to_string(max_n)},
                   {"threads", std::to_string(planning_threads())}};
  std::sort(gauges.begin(), gauges.end(),
            [](const obs::RunReport::Gauge& a, const obs::RunReport::Gauge& b) {
              return a.name < b.name;
            });
  report.gauges = std::move(gauges);
  report.save(out_path);
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::size_t trials =
      static_cast<std::size_t>(flags.get_int("trials", 5));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 2008));
  const std::string out_path =
      flags.get_string("out", "BENCH_hotpaths.json");
  const std::string data_dir = flags.get_string("data-dir", "data");
  const bool check = flags.get_bool("check", false);
  const std::size_t max_n =
      static_cast<std::size_t>(flags.get_int("max-n", 8000));
  const std::size_t thread_cap =
      static_cast<std::size_t>(flags.get_int("threads", 0));
  const std::string report_path = flags.get_string("report", "");
  const bool scale = flags.get_bool("scale", false);
  const std::string scale_out =
      flags.get_string("scale-out", "BENCH_scale.json");
  const std::size_t scale_max_n =
      static_cast<std::size_t>(flags.get_int("scale-max-n", 1000000));
  flags.finish();
  set_planning_threads(thread_cap);
  const std::size_t threads = planning_threads();
  if (scale) {
    return run_scale(trials, seed, scale_out, scale_max_n);
  }
  if (!report_path.empty()) {
    obs::MetricsRegistry::set_enabled(true);
    obs::MetricsRegistry::instance().reset();
  }
  const Stopwatch total_watch;

  const Rng base(seed);
  std::vector<KernelResult> results;
  bool regressed = false;

  Table table("P1: hot-path kernels — median ms over " +
                  std::to_string(trials) + " trials, " +
                  std::to_string(threads) +
                  " planning threads (speedup vs seed kernel)",
              2);
  table.set_header({"n", "coverage", "(x)", "set-cover", "(x)", "construct",
                    "(x)", "improve", "(x)", "len-ratio"});

  for (const std::size_t n : {100u, 500u, 2000u, 8000u}) {
    if (n > max_n) {
      continue;
    }
    std::vector<double> t_coverage, t_coverage_ref, t_cover, t_cover_ref,
        t_construct, t_construct_ref, t_improve, t_improve_ref, ratios;
    // Single calls at n=100 take tens of microseconds — below the
    // clock's noise floor — so cheap sizes run each pair in an
    // interleaved batch (production, reference, production, ...) and
    // report ms per call. Interleaving keeps caches and branch
    // predictors equally warm for both sides; a back-to-back batch
    // systematically favours whichever side runs second.
    const std::size_t reps = std::max<std::size_t>(1, 1600 / n);
    const double inv_reps = 1.0 / static_cast<double>(reps);
    for (std::size_t t = 0; t < trials; ++t) {
      Rng rng = base.fork(n * 1000 + t);
      const net::SensorNetwork network = make_topology(n, rng);

      {
        const cover::CoverageMatrix warmup(network, {});  // untimed
      }
      Stopwatch watch;
      std::optional<cover::CoverageMatrix> built;
      std::optional<cover::CoverageMatrix> serial_built;
      double fast_ms = 0.0;
      double ref_ms = 0.0;
      for (std::size_t r = 0; r < reps; ++r) {
        watch.reset();
        built.emplace(network, cover::CandidateOptions{});
        fast_ms += watch.elapsed_ms();
        const ScopedPlanningThreads serial(1);
        watch.reset();
        serial_built.emplace(network, cover::CandidateOptions{});
        ref_ms += watch.elapsed_ms();
      }
      t_coverage.push_back(fast_ms * inv_reps);
      t_coverage_ref.push_back(ref_ms * inv_reps);
      const cover::CoverageMatrix& matrix = *built;
      if (serial_built->candidates() != matrix.candidates()) {
        std::cerr << "FATAL: parallel coverage build diverged from the "
                     "serial build at n="
                  << n << "\n";
        return 2;
      }

      cover::GreedyOptions greedy;
      greedy.anchor = network.sink();
      (void)cover::greedy_set_cover(matrix, network, greedy);  // warm-up
      cover::SetCoverResult lazy;
      cover::SetCoverResult reference;
      fast_ms = ref_ms = 0.0;
      for (std::size_t r = 0; r < reps; ++r) {
        watch.reset();
        lazy = cover::greedy_set_cover(matrix, network, greedy);
        fast_ms += watch.elapsed_ms();
        watch.reset();
        reference = cover::greedy_set_cover_reference(matrix, network, greedy);
        ref_ms += watch.elapsed_ms();
      }
      t_cover.push_back(fast_ms * inv_reps);
      t_cover_ref.push_back(ref_ms * inv_reps);
      if (lazy.selected != reference.selected) {
        std::cerr << "FATAL: lazy greedy diverged from the reference at n="
                  << n << "\n";
        return 2;
      }

      // TSP kernels run over the raw sensor field (sink at index 0) so
      // the tour size is n+1 regardless of how many polling points the
      // cover kept.
      std::vector<geom::Point> pts{network.sink()};
      pts.insert(pts.end(), network.positions().begin(),
                 network.positions().end());
      (void)tsp::nearest_neighbor(pts);  // warm-up
      std::optional<tsp::Tour> nn_built;
      std::optional<tsp::Tour> nn_ref;
      fast_ms = ref_ms = 0.0;
      for (std::size_t r = 0; r < reps; ++r) {
        watch.reset();
        nn_built.emplace(tsp::nearest_neighbor(pts));
        fast_ms += watch.elapsed_ms();
        watch.reset();
        nn_ref.emplace(tsp::nearest_neighbor_reference(pts));
        ref_ms += watch.elapsed_ms();
      }
      t_construct.push_back(fast_ms * inv_reps);
      t_construct_ref.push_back(ref_ms * inv_reps);
      const tsp::Tour& nn = *nn_built;
      if (nn.order() != nn_ref->order()) {
        std::cerr << "FATAL: grid nearest-neighbour diverged from the "
                     "reference at n="
                  << n << "\n";
        return 2;
      }

      {
        tsp::Tour warmup = nn;  // warm-up
        tsp::improve(warmup, pts);
      }
      tsp::Tour fast = nn;
      tsp::Tour slow = nn;
      fast_ms = ref_ms = 0.0;
      for (std::size_t r = 0; r < reps; ++r) {
        fast = nn;
        watch.reset();
        tsp::improve(fast, pts);  // production dispatch (classic vs engine)
        fast_ms += watch.elapsed_ms();
        slow = nn;
        watch.reset();
        improve_classic(slow, pts);
        ref_ms += watch.elapsed_ms();
      }
      t_improve.push_back(fast_ms * inv_reps);
      t_improve_ref.push_back(ref_ms * inv_reps);

      ratios.push_back(fast.length(pts) / slow.length(pts));
    }

    const auto med = [](const std::vector<double>& v) {
      return quantile(v, 0.5);
    };
    const auto speedup = [&med](const std::vector<double>& ref,
                                const std::vector<double>& now) {
      return med(ref) / std::max(med(now), 1e-9);
    };
    KernelResult coverage{"coverage_build",
                          n,
                          med(t_coverage),
                          quantile(t_coverage, 0.9),
                          med(t_coverage_ref),
                          speedup(t_coverage_ref, t_coverage),
                          0.0,
                          threads};
    KernelResult cover_k{"set_cover",
                         n,
                         med(t_cover),
                         quantile(t_cover, 0.9),
                         med(t_cover_ref),
                         speedup(t_cover_ref, t_cover),
                         0.0,
                         threads};
    KernelResult construct{"construct",
                           n,
                           med(t_construct),
                           quantile(t_construct, 0.9),
                           med(t_construct_ref),
                           speedup(t_construct_ref, t_construct),
                           0.0,
                           threads};
    KernelResult improve_k{"improve",
                           n,
                           med(t_improve),
                           quantile(t_improve, 0.9),
                           med(t_improve_ref),
                           speedup(t_improve_ref, t_improve),
                           quantile(ratios, 0.5),
                           threads};
    results.push_back(coverage);
    results.push_back(cover_k);
    results.push_back(construct);
    results.push_back(improve_k);
    if (*std::max_element(ratios.begin(), ratios.end()) > 1.02) {
      std::cerr << "improvement kernel regressed >2% vs the seed "
                   "composition at n="
                << n << "\n";
      regressed = true;
    }

    table.add_row({static_cast<long long>(n), coverage.median_ms,
                   coverage.speedup, cover_k.median_ms, cover_k.speedup,
                   construct.median_ms, construct.speedup,
                   improve_k.median_ms, improve_k.speedup,
                   improve_k.tour_ratio});
  }

  // Checked-in regression instances: quality guard on real topologies.
  for (const char* name : {"small30.txt", "uniform200.txt"}) {
    const std::string path = data_dir + "/" + name;
    std::ifstream probe(path);
    if (!probe.good()) {
      std::cerr << "note: " << path << " not found, skipping instance check\n";
      if (check) {
        regressed = true;
      }
      continue;
    }
    const net::SensorNetwork network = io::load_network(path);
    std::vector<geom::Point> pts{network.sink()};
    pts.insert(pts.end(), network.positions().begin(),
               network.positions().end());
    const tsp::Tour nn = tsp::nearest_neighbor(pts);
    // Timed exactly like the synthetic sizes: interleaved
    // production/reference batches per trial, median ms per call — these
    // rows used to report 0 for every timing field.
    const std::size_t reps = std::max<std::size_t>(1, 1600 / pts.size());
    const double inv_reps = 1.0 / static_cast<double>(reps);
    std::vector<double> t_fast, t_slow;
    tsp::Tour fast = nn;
    tsp::Tour slow = nn;
    {
      tsp::Tour warmup = nn;  // untimed
      tsp::improve(warmup, pts);
    }
    Stopwatch watch;
    for (std::size_t t = 0; t < trials; ++t) {
      double fast_ms = 0.0;
      double slow_ms = 0.0;
      for (std::size_t r = 0; r < reps; ++r) {
        fast = nn;
        watch.reset();
        tsp::improve(fast, pts);
        fast_ms += watch.elapsed_ms();
        slow = nn;
        watch.reset();
        improve_classic(slow, pts);
        slow_ms += watch.elapsed_ms();
      }
      t_fast.push_back(fast_ms * inv_reps);
      t_slow.push_back(slow_ms * inv_reps);
    }
    const double ratio = fast.length(pts) / slow.length(pts);
    KernelResult inst{std::string("improve_") + name,
                      network.size(),
                      quantile(t_fast, 0.5),
                      quantile(t_fast, 0.9),
                      quantile(t_slow, 0.5),
                      quantile(t_slow, 0.5) /
                          std::max(quantile(t_fast, 0.5), 1e-9),
                      ratio,
                      threads};
    results.push_back(inst);
    if (ratio > 1.02) {
      std::cerr << "improvement kernel regressed >2% vs the seed "
                   "composition on "
                << name << " (ratio " << ratio << ")\n";
      regressed = true;
    }
  }

  table.print(std::cout);
  std::cout << std::endl;

  std::string body;
  for (const KernelResult& r : results) {
    append_json(body, r);
  }
  std::ofstream json(out_path);
  json << "{\n  \"bench\": \"p1_hotpaths\",\n  \"trials\": " << trials
       << ",\n  \"seed\": " << seed << ",\n  \"threads\": " << threads
       << ",\n  \"kernels\": [\n"
       << body << "\n  ]\n}\n";
  json.close();
  std::cout << "wrote " << out_path << "\n";

  if (!report_path.empty()) {
    obs::RunReport report;
    report.command = "bench";
    report.planner = "p1_hotpaths";
    report.seed = seed;
    report.git_describe = obs::current_git_describe();
    report.wall_ms = total_watch.elapsed_ms();
    report.params = {{"trials", std::to_string(trials)},
                     {"max-n", std::to_string(max_n)},
                     {"threads", std::to_string(threads)},
                     {"check", check ? "true" : "false"}};
    report.capture_metrics(obs::MetricsRegistry::instance());
    report.save(report_path);
    std::cout << "wrote " << report_path << "\n";
  }

  if (check && regressed) {
    return 1;
  }
  return 0;
}

// F9 — multiple M-collectors (reconstruction).
//
// (a) max subtour length vs number of collectors k (1..6) on a fixed
//     network: near-1/k decay until the out-and-back distance to the
//     farthest polling point dominates;
// (b) number of collectors needed to meet a gathering deadline.
#include <string>

#include "bench_common.h"
#include "core/multi_collector.h"
#include "core/spanning_tour_planner.h"

int main(int argc, char** argv) {
  using namespace mdg;
  Flags flags(argc, argv);
  bench::BenchConfig config = bench::parse_common(flags);
  const auto n = static_cast<std::size_t>(flags.get_int("sensors", 400));
  const double side = flags.get_double("side", 300.0);
  const double rs = flags.get_double("range", 30.0);
  flags.finish();

  Table by_k("F9a: subtour lengths vs collector count k — N=" +
                 std::to_string(n) + ", L=" +
                 std::to_string(static_cast<int>(side)) + " m",
             1);
  by_k.set_header({"k", "max subtour (m)", "total length (m)",
                   "max round @1 m/s (min)", "vs k=1"});

  double k1_mean = 0.0;
  for (std::size_t k : {1u, 2u, 3u, 4u, 5u, 6u}) {
    enum Metric { kMax, kTotal, kCount };
    const auto stats = bench::monte_carlo_multi(
        config, kCount, [&](Rng& rng, std::size_t, std::vector<double>& row) {
          const net::SensorNetwork network =
              net::make_uniform_network(n, side, rs, rng);
          const core::ShdgpInstance instance(network);
          const core::ShdgpSolution plan =
              core::SpanningTourPlanner().plan(instance);
          const core::MultiTourPlan multi =
              core::MultiCollectorPlanner().split(instance, plan, k);
          row[kMax] = multi.max_length;
          row[kTotal] = multi.total_length;
        });
    if (k == 1) {
      k1_mean = stats[kMax].mean();
    }
    by_k.add_row({static_cast<long long>(k), stats[kMax].mean(),
                  stats[kTotal].mean(), stats[kMax].mean() / 60.0,
                  stats[kMax].mean() / k1_mean});
  }
  bench::emit(by_k, config);

  Table by_deadline("F9b: collectors needed vs gathering deadline "
                    "(speed 1 m/s, 2 s service per stop)",
                    1);
  by_deadline.set_header({"deadline (min)", "collectors needed (mean)"});
  for (double deadline_min : {10.0, 15.0, 20.0, 30.0, 45.0, 60.0}) {
    const RunningStats stats = bench::monte_carlo(
        config, [&](Rng& rng, std::size_t) {
          const net::SensorNetwork network =
              net::make_uniform_network(n, side, rs, rng);
          const core::ShdgpInstance instance(network);
          const core::ShdgpSolution plan =
              core::SpanningTourPlanner().plan(instance);
          const std::size_t needed =
              core::MultiCollectorPlanner().collectors_for_deadline(
                  instance, plan, deadline_min * 60.0, 1.0, 2.0);
          return static_cast<double>(needed);
        });
    by_deadline.add_row({deadline_min, stats.mean()});
  }
  bench::emit(by_deadline, config);
  return 0;
}

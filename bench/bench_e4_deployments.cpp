// E4 — robustness across deployment patterns (extension).
//
// The uniform-field assumption of the main evaluation is kindest to
// multihop relay; real deployments cluster around phenomena and split
// into islands. This bench re-runs the core comparison on four
// deployment generators. Expected shape: SHDG's tour degrades gently
// and its coverage is always 100 %, while multihop coverage collapses on
// clustered/disconnected fields — the strongest practical argument for
// mobile collection.
#include <string>

#include "baselines/direct_visit.h"
#include "baselines/multihop_routing.h"
#include "bench_common.h"
#include "core/spanning_tour_planner.h"
#include "net/deployment.h"

namespace {

enum class Pattern { kUniform, kGridJitter, kClusters, kIslands };

const char* pattern_name(Pattern p) {
  switch (p) {
    case Pattern::kUniform:
      return "uniform";
    case Pattern::kGridJitter:
      return "grid+jitter";
    case Pattern::kClusters:
      return "4 clusters";
    case Pattern::kIslands:
      return "two islands";
  }
  return "?";
}

std::vector<mdg::geom::Point> deploy(Pattern p, std::size_t n,
                                     const mdg::geom::Aabb& field,
                                     mdg::Rng& rng) {
  switch (p) {
    case Pattern::kUniform:
      return mdg::net::deploy_uniform(n, field, rng);
    case Pattern::kGridJitter:
      return mdg::net::deploy_grid_jitter(n, field, 0.3, rng);
    case Pattern::kClusters:
      return mdg::net::deploy_gaussian_clusters(n, field, 4, 22.0, rng);
    case Pattern::kIslands:
      return mdg::net::deploy_two_islands(n, field, 0.35, rng);
  }
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mdg;
  Flags flags(argc, argv);
  bench::BenchConfig config = bench::parse_common(flags);
  const auto n = static_cast<std::size_t>(flags.get_int("sensors", 200));
  const double side = flags.get_double("side", 200.0);
  const double rs = flags.get_double("range", 30.0);
  flags.finish();

  Table table("E4: deployment robustness — N=" + std::to_string(n) +
                  ", L=" + std::to_string(static_cast<int>(side)) + " m, Rs=" +
                  std::to_string(static_cast<int>(rs)) + " m, " +
                  std::to_string(config.trials) + " trials",
              1);
  table.set_header({"deployment", "components", "SHDG tour (m)",
                    "SHDG #PPs", "direct-visit (m)",
                    "multihop coverage (%)", "multihop avg hops"});

  for (Pattern p : {Pattern::kUniform, Pattern::kGridJitter,
                    Pattern::kClusters, Pattern::kIslands}) {
    enum Metric {
      kComponents,
      kTour,
      kPps,
      kDirect,
      kCoverage,
      kHops,
      kCount,
    };
    const auto stats = bench::monte_carlo_multi(
        config, kCount, [&](Rng& rng, std::size_t, std::vector<double>& row) {
          const auto field = geom::Aabb::square(side);
          const net::SensorNetwork network(deploy(p, n, field, rng),
                                           field.center(), field, rs);
          row[kComponents] =
              static_cast<double>(network.components().count);
          const core::ShdgpInstance instance(network);
          const core::ShdgpSolution shdg =
              core::SpanningTourPlanner().plan(instance);
          row[kTour] = shdg.tour_length;
          row[kPps] = static_cast<double>(shdg.polling_points.size());
          row[kDirect] =
              baselines::DirectVisitPlanner().plan(instance).tour_length;
          const baselines::MultihopResult hop =
              baselines::MultihopRouting(network).analyze();
          row[kCoverage] = hop.coverage * 100.0;
          row[kHops] = hop.average_hops;
        });
    table.add_row({std::string(pattern_name(p)), stats[kComponents].mean(),
                   stats[kTour].mean(), stats[kPps].mean(),
                   stats[kDirect].mean(), stats[kCoverage].mean(),
                   stats[kHops].mean()});
  }
  bench::emit(table, config);
  return 0;
}

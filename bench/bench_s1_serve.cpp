// S1 — serving-layer load generator (docs/SERVE.md §Benchmark).
//
// Drives serve::Engine the way a client fleet would and measures the
// cache value proposition end to end:
//
//   cold    — fresh engine, never-seen instance: parse + plan + reply
//   exact   — byte-identical resend: one hash, zero parse, zero plan
//   warm    — same instance, different multi-start width: cover-probe
//             + warm-started tsp::improve from the cached tour
//   mixed   — concurrent clients replaying a hit-heavy request mix,
//             for requests/sec and tail latency under contention
//
// Reports p50/p99 per class, the exact-hit speedup, requests/sec and
// the mixed-phase cache hit rate, as a table and as a schema-valid
// RunReport (--out, default BENCH_serve.json; CI validates it with
// tools/report_diff --schema).
//
// With --check the bench exits non-zero unless (a) every cached reply
// is byte-identical to the cold reply for the same request — the
// serving layer's core promise — and (b) the exact-hit path is at
// least --min-speedup (default 100) times faster than a cold plan at
// the median. CI runs a small-n smoke (--n 300); the committed
// BENCH_serve.json is the full --n 8000 run.
//
// With --port the bench additionally drives a live daemon over TCP
// (serve::TcpClient with --connect-timeout-ms/--read-timeout-ms
// deadlines) and gates its replies on byte-identity against the local
// in-process cold plan. A wedged or dead daemon fails the bench with a
// diagnostic inside the timeout instead of hanging CI.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "net/deployment.h"
#include "net/sensor_network.h"
#include "obs/report.h"
#include "serve/client.h"
#include "serve/engine.h"
#include "serve/protocol.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using namespace mdg;

double quantile(std::vector<double> v, double q) {
  if (v.empty()) {
    return 0.0;
  }
  std::sort(v.begin(), v.end());
  const double idx = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

net::SensorNetwork bench_network(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  const double side = 25.0 * std::sqrt(static_cast<double>(n));
  return net::make_uniform_network(n, side, 30.0, rng);
}

std::string plan_payload(const net::SensorNetwork& network,
                         std::size_t multi_start = 0) {
  serve::PlanRequestOptions options;
  options.multi_start = multi_start;
  return serve::build_plan_request(options, network);
}

/// Sends one plan request, asserts success, returns (latency ms, reply).
serve::Frame timed_plan(serve::Engine& engine, const std::string& payload,
                        std::uint32_t id, double* latency_ms) {
  const Stopwatch watch;
  serve::Frame reply = engine.handle(
      serve::Frame{serve::FrameType::kPlanRequest, id, 0, payload});
  *latency_ms = watch.elapsed_ms();
  if (reply.type != serve::FrameType::kReplyOk) {
    std::cerr << "FATAL: plan request failed:\n" << reply.payload << "\n";
    std::exit(1);
  }
  return reply;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::size_t n = static_cast<std::size_t>(flags.get_int("n", 8000));
  const std::size_t trials =
      static_cast<std::size_t>(flags.get_int("trials", 5));
  const std::size_t hit_samples =
      static_cast<std::size_t>(flags.get_int("hits", 200));
  const std::size_t clients =
      static_cast<std::size_t>(flags.get_int("clients", 8));
  const std::size_t requests_per_client =
      static_cast<std::size_t>(flags.get_int("requests", 25));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 2008));
  const double min_speedup = flags.get_double("min-speedup", 100.0);
  const bool check = flags.get_bool("check", false);
  const std::string out_path = flags.get_string("out", "BENCH_serve.json");
  const std::size_t threads =
      static_cast<std::size_t>(flags.get_int("threads", 0));
  const long long port = flags.get_int("port", 0);
  const std::uint32_t connect_timeout_ms =
      static_cast<std::uint32_t>(flags.get_int("connect-timeout-ms", 2000));
  const std::uint32_t read_timeout_ms =
      static_cast<std::uint32_t>(flags.get_int("read-timeout-ms", 60000));
  flags.finish();
  set_planning_threads(threads);

  const Stopwatch total_watch;
  bool byte_mismatch = false;

  // --- cold: fresh engine per trial, distinct instance each time -------
  std::vector<double> cold_ms;
  for (std::size_t t = 0; t < trials; ++t) {
    serve::Engine engine;
    const std::string payload = plan_payload(bench_network(n, seed + t));
    double ms = 0.0;
    (void)timed_plan(engine, payload, 1, &ms);
    cold_ms.push_back(ms);
  }

  // --- exact: one shared engine, byte-identical resends ----------------
  serve::Engine engine;
  const net::SensorNetwork network = bench_network(n, seed);
  const std::string payload = plan_payload(network);
  double cold_reference_ms = 0.0;
  const serve::Frame cold_reply =
      timed_plan(engine, payload, 2, &cold_reference_ms);
  std::vector<double> hit_ms;
  for (std::size_t i = 0; i < hit_samples; ++i) {
    double ms = 0.0;
    const serve::Frame reply =
        timed_plan(engine, payload, static_cast<std::uint32_t>(100 + i), &ms);
    hit_ms.push_back(ms);
    if ((reply.flags & serve::kFlagCacheMask) != serve::kFlagCacheExact ||
        reply.payload != cold_reply.payload) {
      byte_mismatch = true;
    }
  }

  // --- daemon (--port): same requests against a live TCP server -------
  // The local cold reply is the byte-equality oracle; the client's
  // connect/read deadlines turn a wedged daemon into a fast FAIL
  // instead of a hung bench job.
  std::vector<double> tcp_ms;
  if (port > 0) {
    serve::TcpClientOptions client_options;
    client_options.connect_timeout_ms = connect_timeout_ms;
    client_options.read_timeout_ms = read_timeout_ms;
    client_options.write_timeout_ms = read_timeout_ms;
    serve::TcpClient client(static_cast<std::uint16_t>(port), client_options);
    for (std::size_t i = 0; i <= hit_samples; ++i) {
      const Stopwatch watch;
      auto reply = client.call(
          serve::Frame{serve::FrameType::kPlanRequest,
                       static_cast<std::uint32_t>(9000 + i), 0, payload});
      if (!reply.is_ok()) {
        std::cerr << "FAIL: daemon on 127.0.0.1:" << port
                  << " did not answer request " << i << ": "
                  << reply.status().to_string() << "\n";
        return 1;
      }
      if (i > 0) {
        tcp_ms.push_back(watch.elapsed_ms());  // i==0 is the daemon's cold
      }
      if (reply->type != serve::FrameType::kReplyOk ||
          reply->payload != cold_reply.payload) {
        byte_mismatch = true;
      }
    }
  }

  // --- warm: same cover, different multi-start width -------------------
  // Cold-plan the widened request on a fresh engine for the latency
  // baseline and the byte-equality oracle, then warm-start it from the
  // shared engine's cached tour.
  const std::string widened = plan_payload(network, /*multi_start=*/4);
  double warm_cold_ms = 0.0;
  serve::Frame warm_cold_reply{};
  {
    serve::Engine fresh;
    warm_cold_reply = timed_plan(fresh, widened, 3, &warm_cold_ms);
  }
  double warm_ms = 0.0;
  const serve::Frame warm_reply = timed_plan(engine, widened, 4, &warm_ms);
  const bool warm_hit = (warm_reply.flags & serve::kFlagCacheMask) ==
                        serve::kFlagCacheWarm;

  // --- mixed: concurrent clients, hit-heavy request mix ----------------
  std::vector<std::string> mix_payloads;
  for (std::uint64_t s = 0; s < 4; ++s) {
    mix_payloads.push_back(plan_payload(bench_network(n, seed + 100 + s)));
  }
  serve::Engine mixed_engine;
  std::vector<std::vector<double>> client_ms(clients);
  std::atomic<std::size_t> failures{0};
  const Stopwatch mixed_watch;
  {
    std::vector<std::thread> fleet;
    fleet.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      fleet.emplace_back([&, c] {
        client_ms[c].reserve(requests_per_client);
        for (std::size_t r = 0; r < requests_per_client; ++r) {
          const std::string& body =
              mix_payloads[(c + r) % mix_payloads.size()];
          const Stopwatch watch;
          const serve::Frame reply = mixed_engine.handle(
              serve::Frame{serve::FrameType::kPlanRequest,
                           static_cast<std::uint32_t>(c * 1000 + r), 0, body});
          client_ms[c].push_back(watch.elapsed_ms());
          if (reply.type != serve::FrameType::kReplyOk) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& client : fleet) {
      client.join();
    }
  }
  const double mixed_wall_s = mixed_watch.elapsed_s();
  std::vector<double> mixed_ms;
  for (const auto& per_client : client_ms) {
    mixed_ms.insert(mixed_ms.end(), per_client.begin(), per_client.end());
  }
  const serve::EngineStats mixed_stats = mixed_engine.stats();
  const double mixed_requests =
      static_cast<double>(clients * requests_per_client);
  const double requests_per_sec =
      mixed_wall_s > 0.0 ? mixed_requests / mixed_wall_s : 0.0;
  const double hit_rate =
      mixed_requests > 0.0
          ? static_cast<double>(mixed_stats.hits_exact +
                                mixed_stats.hits_warm) /
                mixed_requests
          : 0.0;

  const double cold_p50 = quantile(cold_ms, 0.5);
  const double cold_p99 = quantile(cold_ms, 0.99);
  const double hit_p50 = quantile(hit_ms, 0.5);
  const double hit_p99 = quantile(hit_ms, 0.99);
  const double speedup_exact = hit_p50 > 0.0 ? cold_p50 / hit_p50 : 0.0;

  Table table("S1 serve: n=" + std::to_string(n) + ", " +
                  std::to_string(trials) + " cold trials, " +
                  std::to_string(hit_samples) + " hit samples, " +
                  std::to_string(clients) + " clients x " +
                  std::to_string(requests_per_client) + " requests",
              3);
  table.set_header({"class", "p50 ms", "p99 ms", "speedup"});
  table.add_row({"cold", cold_p50, cold_p99, 1.0});
  table.add_row({"exact-hit", hit_p50, hit_p99, speedup_exact});
  table.add_row({"warm-start", warm_ms, warm_ms,
                 warm_ms > 0.0 ? warm_cold_ms / warm_ms : 0.0});
  table.add_row({"mixed", quantile(mixed_ms, 0.5), quantile(mixed_ms, 0.99),
                 0.0});
  if (!tcp_ms.empty()) {
    table.add_row({"tcp-hit", quantile(tcp_ms, 0.5), quantile(tcp_ms, 0.99),
                   0.0});
  }
  table.print(std::cout);
  std::cout << "\nmixed load: " << requests_per_sec << " requests/sec, "
            << 100.0 * hit_rate << "% cache hits, " << failures.load()
            << " failures\n"
            << "warm-start hit: " << (warm_hit ? "yes" : "no")
            << ", exact-hit speedup: " << speedup_exact << "x\n";

  obs::RunReport report;
  report.command = "bench";
  report.planner = "s1_serve";
  report.seed = seed;
  report.git_describe = obs::current_git_describe();
  report.wall_ms = total_watch.elapsed_ms();
  report.params = {{"n", std::to_string(n)},
                   {"trials", std::to_string(trials)},
                   {"hits", std::to_string(hit_samples)},
                   {"clients", std::to_string(clients)},
                   {"requests", std::to_string(requests_per_client)},
                   {"threads", std::to_string(planning_threads())}};
  report.gauges = {
      {"serve.cold_p50_ms", cold_p50},
      {"serve.cold_p99_ms", cold_p99},
      {"serve.hit_p50_ms", hit_p50},
      {"serve.hit_p99_ms", hit_p99},
      {"serve.hit_rate", hit_rate},
      {"serve.requests_per_sec", requests_per_sec},
      {"serve.speedup_exact", speedup_exact},
      {"serve.warm_hit", warm_hit ? 1.0 : 0.0},
      {"serve.warm_p50_ms", warm_ms},
  };
  if (!tcp_ms.empty()) {
    report.gauges.push_back({"serve.tcp_hit_p50_ms", quantile(tcp_ms, 0.5)});
    report.gauges.push_back({"serve.tcp_hit_p99_ms", quantile(tcp_ms, 0.99)});
  }
  report.save(out_path);
  std::cout << "wrote " << out_path << "\n";

  if (byte_mismatch) {
    std::cerr << "FAIL: a cached reply was not byte-identical to the cold "
                 "reply (or was not flagged as an exact hit)\n";
    return 1;
  }
  if (failures.load() != 0) {
    std::cerr << "FAIL: " << failures.load() << " mixed-phase requests "
                 "failed\n";
    return 1;
  }
  if (check && speedup_exact < min_speedup) {
    std::cerr << "FAIL: exact-hit speedup " << speedup_exact << "x below "
              << min_speedup << "x at n=" << n << "\n";
    return 1;
  }
  return 0;
}

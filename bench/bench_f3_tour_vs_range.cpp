// F3 — tour length and polling-point count vs transmission range Rs
// (reconstruction).
//
// N = 200, L = 200 m, Rs in 20..50 m. Larger range lets one polling
// point absorb more sensors: both the polling-point count and the tour
// shrink monotonically.
#include <string>

#include "bench_common.h"
#include "core/greedy_cover_planner.h"
#include "core/spanning_tour_planner.h"

int main(int argc, char** argv) {
  using namespace mdg;
  Flags flags(argc, argv);
  bench::BenchConfig config = bench::parse_common(flags);
  const auto n = static_cast<std::size_t>(flags.get_int("sensors", 200));
  const double side = flags.get_double("side", 200.0);
  flags.finish();

  Table table("F3: tour length & #PPs vs Rs — N=" + std::to_string(n) +
                  ", L=" + std::to_string(static_cast<int>(side)) + " m, " +
                  std::to_string(config.trials) + " trials/point",
              1);
  table.set_header({"Rs (m)", "spanning tour (m)", "greedy tour (m)",
                    "spanning #PPs", "greedy #PPs",
                    "mean upload dist (m)"});

  for (double rs : {20.0, 25.0, 30.0, 35.0, 40.0, 45.0, 50.0}) {
    enum Metric { kSpanLen, kGreedyLen, kSpanPps, kGreedyPps, kUpload, kCount };
    const auto stats = bench::monte_carlo_multi(
        config, kCount, [&](Rng& rng, std::size_t, std::vector<double>& row) {
          const net::SensorNetwork network =
              net::make_uniform_network(n, side, rs, rng);
          const core::ShdgpInstance instance(network);
          const core::ShdgpSolution spanning =
              core::SpanningTourPlanner().plan(instance);
          const core::ShdgpSolution greedy =
              core::GreedyCoverPlanner().plan(instance);
          row[kSpanLen] = spanning.tour_length;
          row[kGreedyLen] = greedy.tour_length;
          row[kSpanPps] =
              static_cast<double>(spanning.polling_points.size());
          row[kGreedyPps] = static_cast<double>(greedy.polling_points.size());
          row[kUpload] = spanning.mean_upload_distance(instance);
        });
    table.add_row({rs, stats[kSpanLen].mean(), stats[kGreedyLen].mean(),
                   stats[kSpanPps].mean(), stats[kGreedyPps].mean(),
                   stats[kUpload].mean()});
  }
  bench::emit(table, config);
  return 0;
}

// A2 — combine/skip/substitute ablation of the spanning-tour planner
// (reconstruction of the design-choice analysis DESIGN.md calls out).
//
// Each pipeline stage is toggled independently; the table shows what
// each contributes to the final tour length and polling-point count.
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/spanning_tour_planner.h"

int main(int argc, char** argv) {
  using namespace mdg;
  Flags flags(argc, argv);
  bench::BenchConfig config = bench::parse_common(flags);
  const auto n = static_cast<std::size_t>(flags.get_int("sensors", 200));
  const double side = flags.get_double("side", 200.0);
  const double rs = flags.get_double("range", 30.0);
  flags.finish();

  struct Variant {
    std::string name;
    bool combine;
    bool skip;
    bool substitute;
  };
  const std::vector<Variant> variants{
      {"none (per-sensor stops)", false, false, false},
      {"combine only", true, false, false},
      {"combine + skip", true, true, false},
      {"combine + substitute", true, false, true},
      {"full (combine+skip+substitute)", true, true, true},
  };

  std::vector<double> mean_length;
  std::vector<double> mean_pps;
  for (const Variant& variant : variants) {
    enum Metric { kLen, kPps, kCount };
    const auto stats = bench::monte_carlo_multi(
        config, kCount, [&](Rng& rng, std::size_t, std::vector<double>& row) {
          const net::SensorNetwork network =
              net::make_uniform_network(n, side, rs, rng);
          const core::ShdgpInstance instance(network);
          core::SpanningTourPlannerOptions options;
          options.combine = variant.combine;
          options.skip = variant.skip;
          options.substitute = variant.substitute;
          const core::ShdgpSolution solution =
              core::SpanningTourPlanner(options).plan(instance);
          row[kLen] = solution.tour_length;
          row[kPps] = static_cast<double>(solution.polling_points.size());
        });
    mean_length.push_back(stats[kLen].mean());
    mean_pps.push_back(stats[kPps].mean());
  }

  Table table("A2: spanning-tour stage ablation — N=" + std::to_string(n) +
                  ", L=" + std::to_string(static_cast<int>(side)) + " m, Rs=" +
                  std::to_string(static_cast<int>(rs)) + " m, " +
                  std::to_string(config.trials) + " trials",
              1);
  table.set_header({"pipeline", "tour length (m)", "#PPs", "vs full (%)"});
  const double full_mean = mean_length.back();
  for (std::size_t i = 0; i < variants.size(); ++i) {
    table.add_row({variants[i].name, mean_length[i], mean_pps[i],
                   (mean_length[i] / full_mean - 1.0) * 100.0});
  }
  bench::emit(table, config);
  return 0;
}

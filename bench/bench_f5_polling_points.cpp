// F5 — number of polling points vs N, plus the candidate-set ablation
// (reconstruction).
//
// Left half: #PPs vs N for both planners against the scattering lower
// bound. Right half: what richer candidate sets (grid, intersections) buy
// on a fixed configuration.
#include <string>

#include "bench_common.h"
#include "core/greedy_cover_planner.h"
#include "core/spanning_tour_planner.h"
#include "cover/set_cover.h"

int main(int argc, char** argv) {
  using namespace mdg;
  Flags flags(argc, argv);
  bench::BenchConfig config = bench::parse_common(flags);
  const double side = flags.get_double("side", 200.0);
  const double rs = flags.get_double("range", 30.0);
  flags.finish();

  Table by_n("F5a: polling points vs N — L=" +
                 std::to_string(static_cast<int>(side)) + " m, Rs=" +
                 std::to_string(static_cast<int>(rs)) + " m",
             1);
  by_n.set_header({"N", "spanning #PPs", "greedy #PPs", "scatter LB",
                   "max PP load (spanning)"});
  for (std::size_t n : {100u, 200u, 300u, 400u, 500u}) {
    enum Metric { kSpan, kGreedy, kLb, kLoad, kCount };
    const auto stats = bench::monte_carlo_multi(
        config, kCount, [&](Rng& rng, std::size_t, std::vector<double>& row) {
          const net::SensorNetwork network =
              net::make_uniform_network(n, side, rs, rng);
          const core::ShdgpInstance instance(network);
          const core::ShdgpSolution spanning =
              core::SpanningTourPlanner().plan(instance);
          row[kSpan] = static_cast<double>(spanning.polling_points.size());
          row[kGreedy] = static_cast<double>(
              core::GreedyCoverPlanner().plan(instance).polling_points.size());
          row[kLb] =
              static_cast<double>(cover::scattering_lower_bound(network));
          row[kLoad] = static_cast<double>(spanning.max_pp_load());
        });
    by_n.add_row({static_cast<long long>(n), stats[kSpan].mean(),
                  stats[kGreedy].mean(), stats[kLb].mean(),
                  stats[kLoad].mean()});
  }
  bench::emit(by_n, config);

  Table ablation("F5b: candidate-set ablation — N=200, greedy-cover", 1);
  ablation.set_header({"candidate policy", "#candidates", "#PPs",
                       "tour length (m)"});
  const std::vector<cover::CandidatePolicy> policies{
      cover::CandidatePolicy::kSensorSites,
      cover::CandidatePolicy::kGrid,
      cover::CandidatePolicy::kSensorSitesAndGrid,
      cover::CandidatePolicy::kSensorSitesAndIntersections,
  };
  for (const auto policy : policies) {
    enum Metric { kCands, kPps, kLen, kCount };
    const auto stats = bench::monte_carlo_multi(
        config, kCount, [&](Rng& rng, std::size_t, std::vector<double>& row) {
          const net::SensorNetwork network =
              net::make_uniform_network(200, side, rs, rng);
          cover::CandidateOptions options;
          options.policy = policy;
          options.grid_spacing = 20.0;
          const core::ShdgpInstance instance(network, options);
          row[kCands] =
              static_cast<double>(instance.coverage().candidate_count());
          const core::ShdgpSolution solution =
              core::GreedyCoverPlanner().plan(instance);
          row[kPps] = static_cast<double>(solution.polling_points.size());
          row[kLen] = solution.tour_length;
        });
    ablation.add_row({std::string(cover::to_string(policy)),
                      stats[kCands].mean(), stats[kPps].mean(),
                      stats[kLen].mean()});
  }
  bench::emit(ablation, config);
  return 0;
}

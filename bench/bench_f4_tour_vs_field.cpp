// F4 — tour length vs field side L (reconstruction).
//
// N = 400, Rs = 30 m, L in 100..500 m. All schemes grow with L, but the
// SHDG planners stay far below direct-visit and CME at every scale (the
// paper's claimed up-to-~38%/~80% improvements over grid-stop/track
// schemes live on this axis).
#include <string>

#include "baselines/cme_tracks.h"
#include "baselines/direct_visit.h"
#include "bench_common.h"
#include "core/greedy_cover_planner.h"
#include "core/spanning_tour_planner.h"

int main(int argc, char** argv) {
  using namespace mdg;
  Flags flags(argc, argv);
  bench::BenchConfig config = bench::parse_common(flags);
  const auto n = static_cast<std::size_t>(flags.get_int("sensors", 400));
  const double rs = flags.get_double("range", 30.0);
  flags.finish();

  Table table("F4: tour length (m) vs field side L — N=" + std::to_string(n) +
                  ", Rs=" + std::to_string(static_cast<int>(rs)) + " m, " +
                  std::to_string(config.trials) + " trials/point",
              1);
  table.set_header({"L (m)", "spanning-tour", "greedy-cover", "direct-visit",
                    "CME (5 tracks)", "CME coverage (%)", "span vs direct"});

  for (double side : {100.0, 200.0, 300.0, 400.0, 500.0}) {
    enum Metric { kSpan, kGreedy, kDirect, kCme, kCmeCover, kCount };
    const auto stats = bench::monte_carlo_multi(
        config, kCount, [&](Rng& rng, std::size_t, std::vector<double>& row) {
          const net::SensorNetwork network =
              net::make_uniform_network(n, side, rs, rng);
          const core::ShdgpInstance instance(network);
          row[kSpan] = core::SpanningTourPlanner().plan(instance).tour_length;
          row[kGreedy] =
              core::GreedyCoverPlanner().plan(instance).tour_length;
          row[kDirect] =
              baselines::DirectVisitPlanner().plan(instance).tour_length;
          const baselines::CmeResult cme =
              baselines::CmeScheme().run(network);
          row[kCme] = cme.tour_length;
          // SHDG and direct-visit always deliver 100%; CME strands the
          // sensors that cannot relay to a track — the hidden cost of
          // its shorter path on sparse fields.
          row[kCmeCover] = cme.coverage * 100.0;
        });
    const double ratio = stats[kSpan].mean() / stats[kDirect].mean();
    table.add_row({side, stats[kSpan].mean(), stats[kGreedy].mean(),
                   stats[kDirect].mean(), stats[kCme].mean(),
                   stats[kCmeCover].mean(), ratio});
  }
  bench::emit(table, config);
  return 0;
}

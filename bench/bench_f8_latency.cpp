// F8 — data-gathering latency (reconstruction).
//
// (a) Round duration vs collector speed (0.1–2 m/s, the practical range
//     for 2008-era mobile platforms) for SHDG and direct-visit;
// (b) round duration vs N at 1 m/s, with multihop relay latency for
//     contrast — the tradeoff the paper opens with: mobility saves
//     energy but costs orders of magnitude in latency.
#include <string>

#include "baselines/direct_visit.h"
#include "bench_common.h"
#include "core/spanning_tour_planner.h"
#include "sim/mobile_sim.h"
#include "sim/multihop_sim.h"

int main(int argc, char** argv) {
  using namespace mdg;
  Flags flags(argc, argv);
  bench::BenchConfig config = bench::parse_common(flags);
  const double side = flags.get_double("side", 200.0);
  const double rs = flags.get_double("range", 30.0);
  flags.finish();

  // --- (a) latency vs speed, N = 200 ---
  Table by_speed("F8a: gathering round duration (min) vs collector speed — "
                 "N=200, L=" + std::to_string(static_cast<int>(side)) + " m",
                 2);
  by_speed.set_header(
      {"speed (m/s)", "SHDG round", "direct-visit round", "speedup"});
  for (double speed : {0.1, 0.25, 0.5, 1.0, 1.5, 2.0}) {
    enum Metric { kShdg, kDirect, kCount };
    const auto stats = bench::monte_carlo_multi(
        config, kCount, [&](Rng& rng, std::size_t, std::vector<double>& row) {
          const net::SensorNetwork network =
              net::make_uniform_network(200, side, rs, rng);
          const core::ShdgpInstance instance(network);
          sim::MobileSimConfig sim_config;
          sim_config.speed_m_per_s = speed;

          const core::ShdgpSolution shdg =
              core::SpanningTourPlanner().plan(instance);
          sim::MobileCollectionSim shdg_sim(instance, shdg, sim_config);
          sim::EnergyLedger l1(network.size(), 0.5);
          row[kShdg] = shdg_sim.run_round(l1).duration_s / 60.0;

          const core::ShdgpSolution direct =
              baselines::DirectVisitPlanner().plan(instance);
          sim::MobileCollectionSim direct_sim(instance, direct, sim_config);
          sim::EnergyLedger l2(network.size(), 0.5);
          row[kDirect] = direct_sim.run_round(l2).duration_s / 60.0;
        });
    by_speed.add_row({speed, stats[kShdg].mean(), stats[kDirect].mean(),
                      stats[kDirect].mean() / stats[kShdg].mean()});
  }
  bench::emit(by_speed, config);

  // --- (b) latency vs N at 1 m/s, vs multihop relay latency ---
  Table by_n("F8b: latency vs N at 1 m/s (SHDG round vs multihop relay)", 3);
  by_n.set_header({"N", "SHDG round (min)", "direct-visit round (min)",
                   "multihop per-packet (s)"});
  for (std::size_t n : {100u, 200u, 300u, 400u}) {
    enum Metric { kShdg, kDirect, kHop, kCount };
    const auto stats = bench::monte_carlo_multi(
        config, kCount, [&](Rng& rng, std::size_t, std::vector<double>& row) {
          const net::SensorNetwork network =
              net::make_uniform_network(n, side, rs, rng);
          const core::ShdgpInstance instance(network);

          const core::ShdgpSolution shdg =
              core::SpanningTourPlanner().plan(instance);
          sim::MobileCollectionSim shdg_sim(instance, shdg);
          sim::EnergyLedger l1(network.size(), 0.5);
          row[kShdg] = shdg_sim.run_round(l1).duration_s / 60.0;

          const core::ShdgpSolution direct =
              baselines::DirectVisitPlanner().plan(instance);
          sim::MobileCollectionSim direct_sim(instance, direct);
          sim::EnergyLedger l2(network.size(), 0.5);
          row[kDirect] = direct_sim.run_round(l2).duration_s / 60.0;

          sim::MultihopSim hop_sim(network);
          sim::EnergyLedger l3(network.size(), 0.5);
          row[kHop] = hop_sim.run_round(l3).mean_latency_s;
        });
    by_n.add_row({static_cast<long long>(n), stats[kShdg].mean(),
                  stats[kDirect].mean(), stats[kHop].mean()});
  }
  bench::emit(by_n, config);
  return 0;
}

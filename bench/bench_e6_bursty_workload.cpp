// E6 — bursty workloads and buffer pressure (extension).
//
// Steady one-packet-per-round traffic never stresses sensor buffers;
// spatially-correlated event bursts do. This bench drives the mobile
// collection sim with the WorkloadGenerator and sweeps the per-sensor
// buffer size under a steady and a bursty workload of equal mean rate.
// Expected shape: the steady workload delivers everything with tiny
// buffers, while bursts need an order of magnitude more buffer for the
// same delivery ratio — the provisioning rule for sensor memory.
#include <algorithm>
#include <string>

#include "bench_common.h"
#include "core/greedy_cover_planner.h"
#include "net/workload.h"
#include "sim/mobile_sim.h"

namespace {

struct RunResult {
  double delivery_ratio = 0.0;
  double max_buffer = 0.0;
};

RunResult drive(const mdg::core::ShdgpInstance& instance,
                const mdg::core::ShdgpSolution& plan,
                const mdg::net::SensorNetwork& network,
                const mdg::net::WorkloadConfig& workload,
                std::size_t buffer_capacity, std::uint64_t seed,
                std::size_t rounds) {
  using namespace mdg;
  sim::MobileSimConfig config;
  config.auto_generate = false;
  config.buffer_capacity = buffer_capacity;
  config.initial_battery_j = 100.0;  // not battery-limited here
  sim::MobileCollectionSim sim(instance, plan, config);
  sim::EnergyLedger ledger(network.size(), config.initial_battery_j);

  net::WorkloadGenerator generator(network, workload, seed);

  RunResult result;
  std::size_t generated = 0;
  std::size_t delivered = 0;
  double clock = 0.0;
  for (std::size_t r = 0; r < rounds; ++r) {
    const auto packets = generator.next_round();
    for (std::size_t s = 0; s < packets.size(); ++s) {
      generated += packets[s];
      (void)sim.add_packets(s, packets[s]);
    }
    std::size_t occupancy = 0;
    for (std::size_t s = 0; s < network.size(); ++s) {
      occupancy = std::max(occupancy, sim.buffered(s));
    }
    result.max_buffer =
        std::max(result.max_buffer, static_cast<double>(occupancy));
    const sim::MobileRoundReport report = sim.run_round(ledger, clock);
    clock += report.duration_s;
    delivered += report.delivered;
  }
  result.delivery_ratio =
      generated == 0 ? 1.0
                     : static_cast<double>(delivered) /
                           static_cast<double>(generated);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mdg;
  Flags flags(argc, argv);
  bench::BenchConfig config = bench::parse_common(flags);
  const auto n = static_cast<std::size_t>(flags.get_int("sensors", 150));
  const double side = flags.get_double("side", 200.0);
  const double rs = flags.get_double("range", 30.0);
  const auto rounds = static_cast<std::size_t>(flags.get_int("rounds", 40));
  flags.finish();

  Table table("E6: bursty workload vs buffer size — N=" + std::to_string(n) +
                  ", " + std::to_string(rounds) + " rounds, " +
                  std::to_string(config.trials) + " trials",
              3);
  table.set_header({"buffer (pkts)", "delivery (steady)", "max buf (steady)",
                    "delivery (bursty)", "max buf (bursty)"});

  for (std::size_t buffer : {4u, 8u, 16u, 32u, 64u}) {
    enum Metric { kSteadyDel, kSteadyBuf, kBurstyDel, kBurstyBuf, kCount };
    const auto stats = bench::monte_carlo_multi(
        config, kCount, [&](Rng& rng, std::size_t t, std::vector<double>& row) {
          const net::SensorNetwork network =
              net::make_uniform_network(n, side, rs, rng);
          const core::ShdgpInstance instance(network);
          const core::ShdgpSolution plan =
              core::GreedyCoverPlanner().plan(instance);

          // Same mean offered load (~1.9 pkt/sensor/round with the
          // defaults below), opposite variance structure.
          net::WorkloadConfig bursty;
          bursty.base_rate = 1.0;
          bursty.events_per_round = 0.3;
          bursty.event_intensity = 15.0;
          net::WorkloadConfig steady;
          steady.base_rate = 1.9;
          steady.events_per_round = 0.0;

          const std::uint64_t workload_seed = config.seed * 1000 + t;
          const RunResult a = drive(instance, plan, network, steady, buffer,
                                    workload_seed, rounds);
          const RunResult b = drive(instance, plan, network, bursty, buffer,
                                    workload_seed, rounds);
          row[kSteadyDel] = a.delivery_ratio;
          row[kSteadyBuf] = a.max_buffer;
          row[kBurstyDel] = b.delivery_ratio;
          row[kBurstyBuf] = b.max_buffer;
        });
    table.add_row({static_cast<long long>(buffer), stats[kSteadyDel].mean(),
                   stats[kSteadyBuf].mean(), stats[kBurstyDel].mean(),
                   stats[kBurstyBuf].mean()});
  }
  bench::emit(table, config);
  return 0;
}

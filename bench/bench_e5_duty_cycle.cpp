// E5 — duty-cycled listening (extension).
//
// The deterministic collector timetable lets sensors sleep outside a
// guard window around their polling point's visit; static multihop
// relays must keep their radios in receive mode, since forwarded traffic
// can arrive at any time. With realistic radio powers, idle listening —
// not transmission — dominates the budget, which is where mobile
// collection's scheduling advantage becomes decisive.
//
// Periodic monitoring scenario: one gathering round per `--period-min`
// (default: hourly), CC2420-class radio (listen 59 mW, sleep 3 µW),
// 2xAA-class battery (10 kJ).
#include <string>

#include "baselines/multihop_routing.h"
#include "bench_common.h"
#include "core/spanning_tour_planner.h"
#include "core/visit_schedule.h"

int main(int argc, char** argv) {
  using namespace mdg;
  Flags flags(argc, argv);
  bench::BenchConfig config = bench::parse_common(flags);
  const double side = flags.get_double("side", 200.0);
  const double rs = flags.get_double("range", 30.0);
  const double period_min = flags.get_double("period-min", 60.0);
  const double listen_w = flags.get_double("listen-w", 59e-3);
  const double sleep_w = flags.get_double("sleep-w", 3e-6);
  const double battery_j = flags.get_double("battery", 10'000.0);
  flags.finish();
  const double period_s = period_min * 60.0;

  Table table("E5: duty-cycled mobile vs always-on multihop — one round per " +
                  std::to_string(static_cast<int>(period_min)) + " min, " +
                  std::to_string(config.trials) + " trials",
              3);
  table.set_header({"N", "duty cycle (%)", "mobile energy/period (J)",
                    "multihop energy/period (J)", "mobile lifetime (days)",
                    "multihop lifetime (days)", "gain"});

  for (std::size_t n : {100u, 200u, 400u}) {
    enum Metric {
      kDuty,
      kMobileEnergy,
      kHopEnergy,
      kCount,
    };
    const auto stats = bench::monte_carlo_multi(
        config, kCount, [&](Rng& rng, std::size_t, std::vector<double>& row) {
          const net::SensorNetwork network =
              net::make_uniform_network(n, side, rs, rng);
          const core::ShdgpInstance instance(network);
          const core::ShdgpSolution plan =
              core::SpanningTourPlanner().plan(instance);
          const core::VisitSchedule schedule(instance, plan);
          row[kDuty] = schedule.average_duty_cycle() *
                       schedule.round_duration_s() / period_s;

          // Mean per-sensor energy for one period under each scheme.
          // Mobile: one upload + listen during the visit window + sleep
          // for the rest of the period.
          double mobile_total = 0.0;
          for (std::size_t s = 0; s < n; ++s) {
            const double awake =
                schedule.sleep_time(s) - schedule.wake_time(s);
            const double hop = geom::distance(
                network.position(s),
                plan.polling_points[plan.assignment[s]]);
            mobile_total += network.radio().tx_packet(hop) +
                            listen_w * awake +
                            sleep_w * (period_s - awake);
          }
          row[kMobileEnergy] = mobile_total / static_cast<double>(n);

          // Multihop: routing energy for one round + always-on receive
          // the whole period (relays cannot predict forwarding times).
          const baselines::MultihopResult hop =
              baselines::MultihopRouting(network).analyze();
          double hop_total = 0.0;
          for (std::size_t s = 0; s < n; ++s) {
            hop_total += hop.round_energy[s] + listen_w * period_s;
          }
          row[kHopEnergy] = hop_total / static_cast<double>(n);
        });

    const double mobile_days =
        battery_j / stats[kMobileEnergy].mean() * period_s / 86'400.0;
    const double hop_days =
        battery_j / stats[kHopEnergy].mean() * period_s / 86'400.0;
    table.add_row({static_cast<long long>(n), stats[kDuty].mean() * 100.0,
                   stats[kMobileEnergy].mean(), stats[kHopEnergy].mean(),
                   mobile_days, hop_days, mobile_days / hop_days});
  }
  bench::emit(table, config);
  return 0;
}

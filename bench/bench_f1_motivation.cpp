// F1 — the motivating example (reconstruction).
//
// One 300-sensor network over a 300 m x 300 m field, sink at the centre:
//   * static multihop relay: ~5.3 hops per packet on average;
//   * direct-visit mobile collection: a ~4000 m tour (~67 min at 1 m/s);
//   * SHDG polling tours: the middle ground this paper proposes.
#include <iostream>

#include "baselines/direct_visit.h"
#include "baselines/multihop_routing.h"
#include "bench_common.h"
#include "core/greedy_cover_planner.h"
#include "core/spanning_tour_planner.h"

int main(int argc, char** argv) {
  using namespace mdg;
  Flags flags(argc, argv);
  bench::BenchConfig config = bench::parse_common(flags);
  const auto n = static_cast<std::size_t>(flags.get_int("sensors", 300));
  const double side = flags.get_double("side", 300.0);
  const double rs = flags.get_double("range", 30.0);
  const double speed = flags.get_double("speed", 1.0);
  flags.finish();

  enum Metric {
    kAvgHops,
    kMultihopCoverage,
    kDirectTour,
    kSpanningTour,
    kGreedyTour,
    kSpanningPps,
    kMetricCount,
  };
  const auto stats = bench::monte_carlo_multi(
      config, kMetricCount,
      [&](Rng& rng, std::size_t, std::vector<double>& row) {
        const net::SensorNetwork network =
            net::make_uniform_network(n, side, rs, rng);
        const baselines::MultihopResult multihop =
            baselines::MultihopRouting(network).analyze();
        row[kAvgHops] = multihop.average_hops;
        row[kMultihopCoverage] = multihop.coverage;

        const core::ShdgpInstance instance(network);
        row[kDirectTour] =
            baselines::DirectVisitPlanner().plan(instance).tour_length;
        const core::ShdgpSolution spanning =
            core::SpanningTourPlanner().plan(instance);
        row[kSpanningTour] = spanning.tour_length;
        row[kSpanningPps] =
            static_cast<double>(spanning.polling_points.size());
        row[kGreedyTour] =
            core::GreedyCoverPlanner().plan(instance).tour_length;
      });

  Table table("F1: motivating example — N=" + std::to_string(n) + ", L=" +
                  std::to_string(static_cast<int>(side)) + " m, Rs=" +
                  std::to_string(static_cast<int>(rs)) + " m (mean over " +
                  std::to_string(config.trials) + " topologies)",
              2);
  table.set_header({"scheme", "tour length (m)", "round trip (min @1 m/s)",
                    "avg hops", "polling points"});
  table.add_row({std::string("multihop relay (static sink)"), 0.0, 0.0,
                 stats[kAvgHops].mean(), 0LL});
  table.add_row({std::string("direct-visit mobile collector"),
                 stats[kDirectTour].mean(),
                 stats[kDirectTour].mean() / speed / 60.0, 1.0,
                 static_cast<long long>(n)});
  table.add_row({std::string("SHDG spanning-tour"),
                 stats[kSpanningTour].mean(),
                 stats[kSpanningTour].mean() / speed / 60.0, 1.0,
                 static_cast<long long>(stats[kSpanningPps].mean() + 0.5)});
  table.add_row({std::string("SHDG greedy-cover"),
                 stats[kGreedyTour].mean(),
                 stats[kGreedyTour].mean() / speed / 60.0, 1.0, 0LL});
  bench::emit(table, config);

  std::cout << "Paper-shape checks: avg multihop hops ≈ 5.3 (got "
            << stats[kAvgHops].mean() << "), direct-visit tour ≈ 4000 m (got "
            << stats[kDirectTour].mean()
            << " m), SHDG tour should be well under half of direct-visit.\n";
  return 0;
}

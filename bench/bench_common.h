// Shared Monte-Carlo harness for the reproduction benches.
//
// Each bench binary regenerates one table/figure of the paper (see
// DESIGN.md §4): it sweeps the paper's parameter axis, averages each data
// point over `--trials` independent topologies (paper: 500; default here
// is smaller so the whole suite runs in minutes on a laptop), and prints
// the series as a table. Pass --trials and --csv to any bench.
#pragma once

#include <cstdint>
#include <functional>
#include <iostream>
#include <mutex>
#include <string>
#include <vector>

#include "net/sensor_network.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace mdg::bench {

struct BenchConfig {
  std::size_t trials = 30;
  std::uint64_t seed = 2008;  ///< base seed (IPDPS 2008 vintage)
  bool csv = false;           ///< also dump CSV after the table
  std::size_t threads = 0;    ///< planning workers (0 = auto)
};

/// Parses the common bench flags (--trials, --seed, --csv, --threads);
/// callers may read more flags from the returned Flags before calling
/// flags.finish(). --threads caps the planning pool for the whole run
/// (results are byte-identical at any value; only wall time changes).
inline BenchConfig parse_common(Flags& flags) {
  BenchConfig config;
  config.trials =
      static_cast<std::size_t>(flags.get_int("trials", 30));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 2008));
  config.csv = flags.get_bool("csv", false);
  config.threads = static_cast<std::size_t>(flags.get_int("threads", 0));
  set_planning_threads(config.threads);
  return config;
}

/// Runs `trials` independent evaluations in parallel; fn receives a
/// deterministic per-trial Rng and returns one sample. Aggregation is
/// schedule-independent.
inline RunningStats monte_carlo(
    const BenchConfig& config,
    const std::function<double(Rng&, std::size_t)>& fn) {
  const Rng base(config.seed);
  std::vector<double> samples(config.trials, 0.0);
  parallel_for(config.trials, [&](std::size_t t) {
    Rng trial_rng = base.fork(t);
    samples[t] = fn(trial_rng, t);
  });
  RunningStats stats;
  for (double s : samples) {
    stats.add(s);
  }
  return stats;
}

/// Multi-metric variant: fn fills a fixed-width sample row per trial.
inline std::vector<RunningStats> monte_carlo_multi(
    const BenchConfig& config, std::size_t metrics,
    const std::function<void(Rng&, std::size_t, std::vector<double>&)>& fn) {
  const Rng base(config.seed);
  std::vector<std::vector<double>> rows(config.trials,
                                        std::vector<double>(metrics, 0.0));
  parallel_for(config.trials, [&](std::size_t t) {
    Rng trial_rng = base.fork(t);
    fn(trial_rng, t, rows[t]);
  });
  std::vector<RunningStats> stats(metrics);
  for (const auto& row : rows) {
    for (std::size_t m = 0; m < metrics; ++m) {
      stats[m].add(row[m]);
    }
  }
  return stats;
}

/// Prints the table and, when requested, its CSV form.
inline void emit(const Table& table, const BenchConfig& config) {
  table.print(std::cout);
  if (config.csv) {
    std::cout << "\n";
    table.write_csv(std::cout);
  }
  std::cout << std::endl;
}

}  // namespace mdg::bench

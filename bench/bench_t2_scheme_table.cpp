// T2 — the scheme-comparison table, quantified (reconstruction).
//
// The papers of this line tabulate the qualitative differences between
// mobile-collection schemes; this bench fills the same table with
// measured numbers on one standard configuration (N = 300, 300 m field).
#include <algorithm>
#include <string>

#include "baselines/cme_tracks.h"
#include "baselines/direct_visit.h"
#include "baselines/multihop_routing.h"
#include "bench_common.h"
#include "core/spanning_tour_planner.h"
#include "sim/mobile_sim.h"

int main(int argc, char** argv) {
  using namespace mdg;
  Flags flags(argc, argv);
  bench::BenchConfig config = bench::parse_common(flags);
  const auto n = static_cast<std::size_t>(flags.get_int("sensors", 300));
  const double side = flags.get_double("side", 300.0);
  const double rs = flags.get_double("range", 30.0);
  flags.finish();

  enum Metric {
    kShdgTour,
    kShdgEnergy,
    kShdgMaxHops,
    kDirectTour,
    kDirectEnergy,
    kCmeTour,
    kCmeHops,
    kCmeCoverage,
    kHopEnergy,
    kHopHops,
    kHopCoverage,
    kCount,
  };
  const auto stats = bench::monte_carlo_multi(
      config, kCount, [&](Rng& rng, std::size_t, std::vector<double>& row) {
        const net::SensorNetwork network =
            net::make_uniform_network(n, side, rs, rng);
        const core::ShdgpInstance instance(network);
        const auto& radio = network.radio();

        const core::ShdgpSolution shdg =
            core::SpanningTourPlanner().plan(instance);
        row[kShdgTour] = shdg.tour_length;
        row[kShdgMaxHops] = 1.0;
        {
          sim::MobileCollectionSim sim(instance, shdg);
          sim::EnergyLedger ledger(n, 0.5);
          const auto round = sim.run_round(ledger);
          row[kShdgEnergy] = mean_of(round.round_energy) * 1e3;
        }

        const core::ShdgpSolution direct =
            baselines::DirectVisitPlanner().plan(instance);
        row[kDirectTour] = direct.tour_length;
        row[kDirectEnergy] = radio.tx_packet(0.0) * 1e3;

        const baselines::CmeResult cme = baselines::CmeScheme().run(network);
        row[kCmeTour] = cme.tour_length;
        row[kCmeHops] = cme.average_hops;
        row[kCmeCoverage] = cme.coverage * 100.0;

        const baselines::MultihopResult hop =
            baselines::MultihopRouting(network).analyze();
        row[kHopEnergy] = mean_of(hop.round_energy) * 1e3;
        row[kHopHops] = hop.average_hops;
        row[kHopCoverage] = hop.coverage * 100.0;
      });

  Table table("T2: scheme comparison — N=" + std::to_string(n) + ", L=" +
                  std::to_string(static_cast<int>(side)) + " m, Rs=" +
                  std::to_string(static_cast<int>(rs)) + " m",
              2);
  table.set_header({"scheme", "tour length (m)", "avg energy/round (mJ)",
                    "avg upload hops", "coverage (%)"});
  table.add_row({std::string("SHDG polling (this paper)"),
                 stats[kShdgTour].mean(), stats[kShdgEnergy].mean(), 1.0,
                 100.0});
  table.add_row({std::string("direct-visit (1 stop/sensor)"),
                 stats[kDirectTour].mean(), stats[kDirectEnergy].mean(), 1.0,
                 100.0});
  table.add_row({std::string("CME fixed tracks"), stats[kCmeTour].mean(),
                 0.0, stats[kCmeHops].mean(), stats[kCmeCoverage].mean()});
  table.add_row({std::string("multihop relay (no collector)"), 0.0,
                 stats[kHopEnergy].mean(), stats[kHopHops].mean(),
                 stats[kHopCoverage].mean()});
  bench::emit(table, config);
  return 0;
}
